//! Quickstart: run one price feed under three replication strategies and
//! compare the Gas bills.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use grub::core::policy::PolicyKind;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::workload::ratio::RatioWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A feed whose record is read four times per update, on average — the
    // regime where neither static placement is obviously right.
    let trace = RatioWorkload::new("ETH-USD", 4.0).generate(64);
    println!(
        "workload: {} writes, {} reads (ratio 4)\n",
        trace.write_count(),
        trace.read_count()
    );

    println!("{:<34}{:>16}{:>16}", "policy", "feed gas total", "gas/op");
    for policy in [
        PolicyKind::Bl1,
        PolicyKind::Bl2,
        PolicyKind::Memoryless { k: 2 },
        PolicyKind::Memorizing {
            k_prime: 2.0,
            d: 4.0,
        },
    ] {
        let report = GrubSystem::run_trace(&trace, &SystemConfig::new(policy))?;
        println!(
            "{:<34}{:>16}{:>16.1}",
            report.policy,
            report.feed_gas_total(),
            report.feed_gas_per_op()
        );
    }
    println!("\nGRuB's adaptive policies should land at or below the better baseline.");
    Ok(())
}
