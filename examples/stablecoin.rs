//! The paper's §4.1 case study end-to-end: an SCoin stablecoin buying and
//! redeeming against a GRuB Ether-price feed.
//!
//! ```sh
//! cargo run --example stablecoin
//! ```

use std::rc::Rc;

use grub::apps::erc20::Erc20;
use grub::apps::scoin::{encode_issue, SCoinIssuer, ETH_PRICE_KEY};
use grub::chain::codec::{Decoder, Encoder};
use grub::chain::{Address, Blockchain, Transaction};
use grub::core::contract::{encode_update, OnChainTrace, StorageManager};
use grub::gas::Layer;
use grub::merkle::{record_value_hash, MerkleKv, ProofKey, ReplState};
use grub::workload::oracle::OracleTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut chain = Blockchain::new();
    let do_addr = Address::derive("price-feed-operator");
    let mgr = Address::derive("storage-manager");
    let issuer = Address::derive("scoin-issuer");
    let token = Address::derive("scoin-token");
    let buyer = Address::derive("alice");

    chain.deploy(
        mgr,
        Rc::new(StorageManager::new(do_addr, OnChainTrace::None)),
        Layer::Feed,
    );
    chain.deploy(
        issuer,
        Rc::new(SCoinIssuer::new(mgr, token)),
        Layer::Application,
    );
    chain.deploy(token, Rc::new(Erc20::new(issuer)), Layer::Application);

    // Drive a few days of simulated Ether prices through the feed and buy
    // SCoins at each new price.
    let prices = OracleTrace::new().writes(5).price_series();
    let mut tree = MerkleKv::new();
    for (day, price) in prices.iter().enumerate() {
        let price_milli = (price * 1000.0) as u64;
        let mut record = vec![0u8; 32];
        record[..8].copy_from_slice(&price_milli.to_le_bytes());
        let pkey = ProofKey::new(ReplState::Replicated, ETH_PRICE_KEY.to_vec());
        tree.insert(pkey, record_value_hash(&record));
        let to_r = vec![(ETH_PRICE_KEY.to_vec(), record)];
        let input = encode_update(&tree.root(), &[], &to_r, &[]);
        chain.submit(Transaction::new(do_addr, mgr, "update", input, Layer::Feed));
        chain.produce_block();

        // Alice locks 1 ETH at today's price.
        chain.submit(Transaction::new(
            buyer,
            issuer,
            "issue",
            encode_issue(buyer, 1_000),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);

        let mut q = Encoder::new();
        q.address(&buyer);
        let out = chain.static_call(buyer, token, "balanceOf", &q.finish())?;
        let balance = Decoder::new(&out).u64()?;
        println!(
            "day {day}: ETH at ${price:>7.2} -> alice holds {:.3} SCoin",
            balance as f64 / 1000.0
        );
    }

    let feed_gas = chain.meter().layer_total(Layer::Feed);
    let app_gas = chain.meter().layer_total(Layer::Application);
    println!("\nfeed-layer gas: {feed_gas}\napplication-layer gas: {app_gas}");
    Ok(())
}
