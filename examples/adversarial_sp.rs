//! Demonstrate the ADS security layer: a hostile storage provider tries to
//! forge, omit, hide and replay records — and every attack is rejected by
//! the storage-manager contract's proof verification.
//!
//! ```sh
//! cargo run --example adversarial_sp
//! ```

use grub::core::policy::PolicyKind;
use grub::core::provider::AdversaryMode;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::workload::{Op, Trace, ValueSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (mode, label) in [
        (AdversaryMode::ForgeValue, "forge record values"),
        (AdversaryMode::OmitRecord, "omit a requested record"),
        (
            AdversaryMode::HideLeaf,
            "hide a leaf behind an opaque digest",
        ),
        (AdversaryMode::ReplayStale, "replay a stale snapshot"),
    ] {
        let config = SystemConfig::new(PolicyKind::Bl1);
        let mut system = GrubSystem::new(&config)?;
        // Feed one record and let the first epoch settle honestly.
        let mut warmup = Trace::new();
        warmup.ops.push(Op::Write {
            key: "price".into(),
            value: ValueSpec::new(32, 7),
        });
        for _ in 0..31 {
            warmup.ops.push(Op::Read {
                key: "price".into(),
            });
        }
        system.drive(&warmup)?;
        let honest_failures: usize = system.reports().iter().map(|e| e.failed_delivers).sum();

        // Turn the SP hostile; update the record so ReplayStale has
        // something stale to serve; then read again.
        system.set_adversary(mode);
        let mut attack = Trace::new();
        attack.ops.push(Op::Write {
            key: "price".into(),
            value: ValueSpec::new(32, 8),
        });
        for _ in 0..31 {
            attack.ops.push(Op::Read {
                key: "price".into(),
            });
        }
        system.drive(&attack)?;
        let total_failures: usize = system.reports().iter().map(|e| e.failed_delivers).sum();

        println!(
            "{label:<42} honest deliveries rejected: {honest_failures}, \
             attack deliveries rejected: {}",
            total_failures - honest_failures
        );
        assert_eq!(honest_failures, 0);
        assert!(total_failures > 0, "attack must be caught");
    }
    println!("\nall four attack classes were rejected by on-chain proof verification");
    Ok(())
}
