//! Multifeed: run many tenants' feeds through the sharded multi-tenant
//! engine and measure what cross-feed epoch batching saves.
//!
//! Eight tenants with Zipfian activity skew (tenant-00 is the hot feed, the
//! tail idles) and a rotating mix of read/write ratios and replication
//! policies share one chain across two shards. The same specs run twice —
//! batching off (the sum-of-singles baseline) and on — and the per-tenant
//! tables plus the aggregate saving are printed.
//!
//! ```sh
//! cargo run --release --example multifeed
//! # CI smoke run (scaled-down traces):
//! GRUB_SMOKE=1 cargo run --release --example multifeed
//! ```

use grub::engine::specs::{demo_policies, zipfian_ratio_specs};
use grub::engine::{EngineConfig, FeedEngine, FeedSpec};

fn build_specs(total_ops: usize) -> Vec<FeedSpec> {
    // A wider ratio rotation than the default demo fleet: includes a
    // read-dominated (16), a write-only (0.0), and a bursty (8.0) tenant.
    let ratios = [0.5, 4.0, 0.125, 2.0, 16.0, 1.0, 0.0, 8.0];
    zipfian_ratio_specs(8, total_ops, &ratios, &demo_policies())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var("GRUB_SMOKE").is_ok();
    let total_ops = if smoke { 320 } else { 2048 };
    let shards = 2;

    println!(
        "8 tenants, zipfian activity skew, {total_ops} total ops, {shards} shards{}",
        if smoke { " (smoke)" } else { "" }
    );

    let unbatched = FeedEngine::run_specs(
        &EngineConfig::new(shards).unbatched(),
        build_specs(total_ops),
    )?;
    println!("\n== batching OFF (sum-of-singles baseline) ==");
    print!("{}", unbatched.render_table());

    let batched = FeedEngine::run_specs(&EngineConfig::new(shards), build_specs(total_ops))?;
    println!("\n== batching ON (one update tx per shard per block) ==");
    print!("{}", batched.render_table());

    let (u, b) = (unbatched.feed_gas_total(), batched.feed_gas_total());
    println!(
        "\ncross-feed batching: {u} -> {b} feed gas ({:.1}% saved)",
        100.0 * (u.saturating_sub(b)) as f64 / u.max(1) as f64
    );
    assert!(b < u, "batching must reduce total feed gas");
    assert_eq!(batched.failed_delivers(), 0);
    Ok(())
}
