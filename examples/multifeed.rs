//! Multifeed: run many tenants' feeds through the sharded multi-tenant
//! engine and measure what cross-feed batching saves, write path and read
//! path separately.
//!
//! Eight tenants with Zipfian activity skew (tenant-00 is the hot feed, the
//! tail idles) and a rotating mix of read/write ratios and replication
//! policies share one chain across two shards. Every feed *streams* its
//! workload from a lazy `OpSource` — the engine pulls one epoch per round,
//! no trace is materialized. The same specs run three times — batching off
//! (the sum-of-singles baseline), update batching only (one `batchUpdate`
//! per shard per block), and full batching (delivers coalesced into
//! `batchDeliver` too) — and the per-tenant tables plus the aggregate
//! savings are printed. The run asserts the savings ladder (read batching
//! strictly undercuts write-only batching, which strictly undercuts no
//! batching) and that a trace-driven replay of the same streams mines the
//! byte-identical chain.
//!
//! With `GRUB_PARALLEL=1` every run stages its shards on worker threads
//! (the parallel executor with deterministic merge) instead of the
//! sequential pipeline; all tables, Gas totals, and assertions are
//! contractually identical either way — the full-batching run double-checks
//! that by comparing its chain digest against a sequential rerun.
//!
//! The chain-realism knobs ride along: `GRUB_REORG=seed:period:depth` mines
//! seeded forks (rolled back and canonically re-committed — the run then
//! re-executes on a never-forking chain and asserts the digests agree),
//! `GRUB_FEE_SCHEDULE=step|spike|mean-reverting[:seed]` prices blocks with
//! the volatile gas-price process, and `GRUB_MEMPOOL=n` caps transactions
//! per block so batches split under congestion. The confirmation knobs
//! compose with all of them: `GRUB_CONFIRM_DEPTH=n` acknowledges writes
//! only n blocks deep, and `GRUB_INCLUSION_LATENCY=max[:seed]` gates each
//! transaction's mining behind a seeded, congestion-dependent block delay.
//!
//! ```sh
//! cargo run --release --example multifeed
//! # CI smoke run (scaled-down traces):
//! GRUB_SMOKE=1 cargo run --release --example multifeed
//! # Parallel shard staging (same output, multi-threaded staging):
//! GRUB_PARALLEL=1 cargo run --release --example multifeed
//! # Chain realism: seeded reorgs plus a spiking gas price:
//! GRUB_REORG=7:5:2 GRUB_FEE_SCHEDULE=spike:11 cargo run --release --example multifeed
//! # Confirmation semantics: depth-3 acknowledgment, inclusion latency, reorgs:
//! GRUB_CONFIRM_DEPTH=3 GRUB_INCLUSION_LATENCY=1 GRUB_REORG=7:5:2 cargo run --release --example multifeed
//! ```

use grub::chain::ChainConfig;
use grub::engine::specs::{demo_policies, zipfian_ratio_specs};
use grub::engine::{EngineConfig, FeedEngine, FeedSpec, ScrubMode};

fn build_specs(total_ops: usize) -> Vec<FeedSpec> {
    // A wider ratio rotation than the default demo fleet: includes a
    // read-dominated (16), a write-only (0.0), and a bursty (8.0) tenant.
    let ratios = [0.5, 4.0, 0.125, 2.0, 16.0, 1.0, 0.0, 8.0];
    zipfian_ratio_specs(8, total_ops, &ratios, &demo_policies())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var("GRUB_SMOKE").is_ok();
    let parallel = std::env::var("GRUB_PARALLEL").is_ok();
    let scrub = ScrubMode::from_env();
    let total_ops = if smoke { 256 } else { 2048 };
    let shards = 2;
    // Chain realism from the environment: GRUB_REORG / GRUB_FEE_SCHEDULE /
    // GRUB_MEMPOOL (all default off).
    let realism = ChainConfig::default().with_env_realism();
    let config = move |base: EngineConfig| {
        let mut base = base.with_scrub(scrub);
        base.chain = realism;
        if parallel {
            base.parallel()
        } else {
            base
        }
    };

    // Crash-testing harness: with GRUB_FAULT_POINT=<point>[:<n>] set, the
    // named pipeline crash point trips on its n-th crossing and the run
    // dies there — exactly what tests/fault_recovery.rs automates.
    if let Some(plan) = grub::fault::plan_from_env() {
        println!("fault injection armed from GRUB_FAULT_POINT: {plan:?}");
        grub::fault::arm(plan);
    }
    if scrub != ScrubMode::Off {
        println!("epoch-boundary Merkle scrubbing on (GRUB_SCRUB): {scrub:?}");
    }
    if realism.reorg.is_some()
        || realism.fee.is_some()
        || realism.mempool.is_some()
        || realism.confirm_depth > 0
        || realism.latency.is_some()
    {
        println!(
            "chain realism on: reorg={:?} fee={:?} mempool={:?} confirm_depth={} latency={:?}",
            realism.reorg, realism.fee, realism.mempool, realism.confirm_depth, realism.latency
        );
    }

    println!(
        "8 tenants, zipfian activity skew, {total_ops} total ops, {shards} shards{}{}",
        if smoke { " (smoke)" } else { "" },
        if parallel { " (parallel staging)" } else { "" },
    );

    let unbatched = FeedEngine::run_specs(
        &config(EngineConfig::new(shards).unbatched()),
        build_specs(total_ops),
    )?;
    println!("\n== batching OFF (sum-of-singles baseline) ==");
    print!("{}", unbatched.render_table());

    let write_only = FeedEngine::run_specs(
        &config(EngineConfig::new(shards).without_read_batching()),
        build_specs(total_ops),
    )?;
    println!("\n== update batching ON, read batching OFF ==");
    print!("{}", write_only.render_table());

    let (full, full_chain) =
        FeedEngine::new(&config(EngineConfig::new(shards)), build_specs(total_ops))?
            .run_with_chain()?;
    println!("\n== full batching (updates + delivers per shard) ==");
    print!("{}", full.render_table());

    if parallel {
        // The determinism contract, end to end: the parallel merge's chain
        // is byte-for-byte the sequential pipeline's — including under the
        // chain-realism knobs, which both runs must share.
        let mut seq = EngineConfig::new(shards).with_scrub(scrub);
        seq.chain = realism;
        let (_, seq_chain) = FeedEngine::new(&seq, build_specs(total_ops))?.run_with_chain()?;
        assert_eq!(
            full_chain.chain_digest(),
            seq_chain.chain_digest(),
            "parallel staging must reproduce the sequential chain exactly"
        );
        println!(
            "\nparallel == sequential chain digest: {}",
            full_chain.chain_digest().to_hex()
        );
    }

    if realism.reorg.is_some() {
        // The reorg contract, end to end: re-execute the full-batching run
        // on the canonical branch only (same fees, same congestion, no
        // forks) — the forked run's rollback-and-replay must have converged
        // to that exact chain.
        let mut canonical = realism;
        canonical.reorg = None;
        let mut straight = config(EngineConfig::new(shards));
        straight.chain = canonical;
        let (_, straight_chain) =
            FeedEngine::new(&straight, build_specs(total_ops))?.run_with_chain()?;
        assert_eq!(
            full_chain.chain_digest(),
            straight_chain.chain_digest(),
            "reorg-and-replay must converge to the canonical-branch digest"
        );
        println!(
            "reorged == canonical-branch chain digest over {} reorgs: {}",
            full_chain.reorg_events().len(),
            full_chain.chain_digest().to_hex()
        );
    }

    // The ingestion-layer contract, end to end: feeds pull their ops from
    // lazy sources; materializing those same streams into traces up front
    // and replaying them must mine the byte-identical chain.
    let trace_specs: Vec<FeedSpec> = build_specs(total_ops)
        .into_iter()
        .map(|spec| {
            let trace = spec.materialized();
            FeedSpec::new(spec.tenant, spec.config, trace)
        })
        .collect();
    let (_, trace_chain) =
        FeedEngine::new(&config(EngineConfig::new(shards)), trace_specs)?.run_with_chain()?;
    assert_eq!(
        full_chain.chain_digest(),
        trace_chain.chain_digest(),
        "source-driven run must mine the same chain as the trace-driven run"
    );
    println!(
        "source-driven == trace-driven chain digest: {}",
        trace_chain.chain_digest().to_hex()
    );

    // Hot-path observability: the store fast-path and batched-Merkle
    // counters, summed over the full-batching run's rounds.
    let sum = |field: fn(&grub::engine::EpochMetrics) -> u64| -> u64 {
        full.metrics.iter().map(field).sum()
    };
    println!(
        "\nstore fast path: {} cache hits / {} misses, {} bloom skips, {} merkle nodes rehashed",
        sum(|m| m.cache_hits),
        sum(|m| m.cache_misses),
        sum(|m| m.bloom_skips),
        sum(|m| m.merkle_nodes_rehashed),
    );

    let (u, w, f) = (
        unbatched.feed_gas_total(),
        write_only.feed_gas_total(),
        full.feed_gas_total(),
    );
    let saved = |from: u64, to: u64| 100.0 * from.saturating_sub(to) as f64 / from.max(1) as f64;
    println!(
        "\nupdate batching:        {u} -> {w} feed gas ({:.1}% saved)",
        saved(u, w)
    );
    println!(
        "read batching on top:   {w} -> {f} feed gas ({:.1}% more saved)",
        saved(w, f)
    );
    println!(
        "total batching savings: {u} -> {f} feed gas ({:.1}% saved)",
        saved(u, f)
    );
    if realism.fee.is_none() {
        assert!(w < u, "update batching must reduce total feed gas");
        assert!(f < w, "read batching must save on top of update batching");
    } else {
        // The savings ladder is a base-price claim: a volatile fee schedule
        // prices each run by the heights its blocks happen to land on, so
        // cross-run totals are no longer comparable.
        println!("fee schedule active: batching-ladder assertions skipped (height-priced totals)");
    }
    assert_eq!(full.failed_delivers(), 0);
    Ok(())
}
