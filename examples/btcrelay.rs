//! The paper's §4.2 case study end-to-end: a Bitcoin-pegged token minting
//! against a BtcRelay-style header feed with SPV proofs.
//!
//! ```sh
//! cargo run --example btcrelay
//! ```

use std::rc::Rc;

use grub::apps::bitcoin::BitcoinSim;
use grub::apps::erc20::Erc20;
use grub::apps::pegged::{block_key, encode_mint, PeggedToken};
use grub::chain::codec::{Decoder, Encoder};
use grub::chain::{Address, Blockchain, Transaction};
use grub::core::contract::{encode_update, OnChainTrace, StorageManager};
use grub::gas::Layer;
use grub::merkle::{record_value_hash, MerkleKv, ProofKey, ReplState};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut chain = Blockchain::new();
    let relayer = Address::derive("btc-relayer");
    let mgr = Address::derive("storage-manager");
    let pegged = Address::derive("pegged-token-logic");
    let token = Address::derive("wbtc");
    let user = Address::derive("bob");

    chain.deploy(
        mgr,
        Rc::new(StorageManager::new(relayer, OnChainTrace::None)),
        Layer::Feed,
    );
    chain.deploy(
        pegged,
        Rc::new(PeggedToken::new(mgr, token)),
        Layer::Application,
    );
    chain.deploy(token, Rc::new(Erc20::new(pegged)), Layer::Application);

    // Mine 10 Bitcoin blocks and relay every header into the feed
    // (replicated, as a busy relay would converge to under GRuB).
    let mut btc = BitcoinSim::new(2026);
    let mut tree = MerkleKv::new();
    let mut to_r = Vec::new();
    for h in 0..10u64 {
        btc.mine_block(4);
        let header = btc
            .header(h as usize)
            .expect("just mined")
            .to_bytes()
            .to_vec();
        tree.insert(
            ProofKey::new(ReplState::Replicated, block_key(h)),
            record_value_hash(&header),
        );
        to_r.push((block_key(h), header));
    }
    let input = encode_update(&tree.root(), &[], &to_r, &[]);
    chain.submit(Transaction::new(relayer, mgr, "update", input, Layer::Feed));
    chain.produce_block();
    println!("relayed 10 Bitcoin headers onto the chain");

    // Bob deposited BTC in block 3 (transaction #2) and now mints 0.5 wBTC
    // (50_000_000 satoshi-scale units).
    let (txid, proof) = btc.spv_proof(3, 2).expect("tx exists");
    chain.submit(Transaction::new(
        user,
        pegged,
        "mint",
        encode_mint(user, 50_000_000, 3, &txid, &proof),
        Layer::User,
    ));
    let block = chain.produce_block();
    assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);

    let mut q = Encoder::new();
    q.address(&user);
    let out = chain.static_call(user, token, "balanceOf", &q.finish())?;
    println!(
        "SPV proof verified against 6 confirmed headers; bob holds {} units",
        Decoder::new(&out).u64()?
    );
    println!(
        "feed-layer gas: {} | application-layer gas: {}",
        chain.meter().layer_total(Layer::Feed),
        chain.meter().layer_total(Layer::Application)
    );
    Ok(())
}
