//! Serve a mixed YCSB workload (the paper's §5.2 macro-benchmark shape)
//! through GRuB and print the per-epoch Gas series.
//!
//! ```sh
//! cargo run --example ycsb_feed
//! ```

use grub::core::policy::PolicyKind;
use grub::core::system::{GrubSystem, SystemConfig};
use grub::workload::ycsb::{mixed_trace, preload, YcsbKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small-scale rendition of the paper's "Workload A, B" mix: two
    // phases of update-heavy A and two of read-mostly B.
    let records = 1u64 << 10;
    let record_len = 256usize;
    let dataset: Vec<(String, Vec<u8>)> = preload(records, record_len, 99)
        .into_iter()
        .map(|(k, v)| (k, v.materialize()))
        .collect();
    let trace = mixed_trace(
        records,
        record_len,
        99,
        &[
            (YcsbKind::A, 512),
            (YcsbKind::B, 512),
            (YcsbKind::A, 512),
            (YcsbKind::B, 512),
        ],
    );

    let config = SystemConfig::new(PolicyKind::Memoryless { k: 2 }).preload(dataset);
    let report = GrubSystem::run_trace(&trace, &config)?;

    println!("phase boundaries every 16 epochs (P1=A, P2=B, P3=A, P4=B)\n");
    println!("{:<8}{:>16}", "epoch", "feed gas/op");
    for (i, value) in report.feed_series().iter().enumerate() {
        if i % 4 == 0 {
            println!("{:<8}{:>16.1}", i, value);
        }
    }
    println!(
        "\ntotal: {} ops, {:.1} feed gas/op, {} replications, {} evictions",
        report.total_ops(),
        report.feed_gas_per_op(),
        report.transitions().0,
        report.transitions().1,
    );
    Ok(())
}
