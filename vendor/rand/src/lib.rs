//! Offline stand-in for `rand` 0.8, exposing exactly the API surface the
//! GRuB workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, the
//! `Rng` extension trait (`gen`, `gen_range`, `gen_bool`, `sample`), the
//! `distributions::{Distribution, WeightedIndex, Standard}` family, and the
//! free function `random()`.
//!
//! `StdRng` is a splitmix64-fed xoshiro256++ — deterministic for a given
//! seed, statistically solid for workload generation, and *not* intended to
//! be cryptographically secure (the real `rand::rngs::StdRng` is ChaCha12;
//! nothing in this workspace relies on RNG secrecy).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (object-safe core trait).
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! The distribution traits and the weighted-index distribution.

    use super::Rng;

    /// Types that can produce samples of `T` given an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for primitives: uniform over the full
    /// domain for integers, uniform in `[0, 1)` for floats, fair for bools.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    /// Error from building a [`WeightedIndex`] with invalid weights.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError;

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Item types accepted by [`WeightedIndex::new`] (weights by value or
    /// by reference, so both `vec.iter()` and `&vec` work).
    pub trait IntoWeight {
        /// The weight as an `f64` for cumulative-sum sampling.
        fn into_weight(self) -> f64;
    }

    macro_rules! impl_into_weight {
        ($($t:ty),*) => {$(
            impl IntoWeight for $t {
                fn into_weight(self) -> f64 {
                    self as f64
                }
            }
            impl IntoWeight for &$t {
                fn into_weight(self) -> f64 {
                    *self as f64
                }
            }
        )*};
    }

    impl_into_weight!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

    /// Samples indices `0..n` proportionally to the supplied weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the distribution; errors on empty, negative, or all-zero
        /// weights (mirroring `rand::distributions::WeightedIndex`).
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: IntoWeight,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0_f64;
            for w in weights {
                let w = w.into_weight();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let needle = unit * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&needle).expect("finite"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

/// One sample of `T` from process-local (non-deterministic) entropy.
pub fn random<T>() -> T
where
    distributions::Standard: distributions::Distribution<T>,
{
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    // RandomState draws per-process OS entropy; the counter decorrelates
    // successive calls within the process.
    let mut hasher = RandomState::new().build_hasher();
    hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    let mut rng = <rngs::StdRng as SeedableRng>::seed_from_u64(hasher.finish());
    Rng::gen(&mut rng)
}
