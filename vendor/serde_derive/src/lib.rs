//! Offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stub gives `Serialize` / `Deserialize` blanket
//! impls, so the derives only need to exist and accept `#[serde(...)]`
//! attributes — they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]` (the `serde` stub blanket-implements the trait).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]` (the `serde` stub blanket-implements the trait).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
