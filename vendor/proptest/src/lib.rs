//! Offline stand-in for `proptest`, covering the subset the GRuB test
//! suite uses: the [`strategy::Strategy`] trait with `prop_map`/`boxed`,
//! range and tuple strategies, [`arbitrary::any`], `prop::collection::vec`,
//! `prop::sample::select`, [`prop_oneof!`], the `prop_assert*` macros, and
//! the [`proptest!`] test-runner macro with `#![proptest_config(..)]`.
//!
//! Differences from the real crate: generation is driven by a per-test
//! deterministic RNG (seeded from the test name, so runs are reproducible),
//! and failing cases are reported without shrinking.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }

    arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    impl Arbitrary for String {
        fn arbitrary(rng: &mut StdRng) -> String {
            let len = rng.gen_range(0..16usize);
            (0..len)
                .map(|_| char::from(rng.gen_range(b'a'..=b'z')))
                .collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut StdRng) -> Vec<T> {
            let len = rng.gen_range(0..16usize);
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut StdRng) -> Option<T> {
            if rng.gen() {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }

    /// Uniform choice from `items`; panics if empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Controls how many cases each `proptest!` test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test seed derived from the test's name.
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms, unlike DefaultHasher's
        // unspecified algorithm.
        let mut h = 0xcbf2_9ce4_8422_2325_u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::collection::vec(..)` / `prop::sample::select(..)` paths.
    pub use crate as prop;
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(stringify!($name)),
            );
            for __case in 0..config.cases {
                // Strategy expressions are re-evaluated per case; they are
                // cheap recipe objects, and this keeps the macro hygienic.
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                $body
            }
        }
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
