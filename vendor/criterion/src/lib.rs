//! Offline stand-in for `criterion`, covering the API the GRuB bench
//! harness uses. Rather than statistics-grade sampling, each benchmark is
//! timed over a small fixed number of iterations and the mean is printed —
//! enough for `cargo bench` to compile, run, and give a rough signal
//! offline.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (real criterion has its own).
pub use std::hint::black_box;

const ITERS: u32 = 10;

/// How batches are sized in `iter_batched` (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Entry point handed to `bench_function` closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-batch `setup` excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like `iter_batched` but passes the input by mutable reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the (ignored) sample size, mirroring the real builder API.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: ITERS,
        };
        f(&mut b);
        let per_iter = b.elapsed.checked_div(b.iters).unwrap_or_default();
        println!("{name:<40} {per_iter:>12.2?}/iter  (stub criterion, {ITERS} iters)");
        self
    }
}

/// Declares a benchmark group; both the `name = ..; config = ..; targets = ..`
/// and positional forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
