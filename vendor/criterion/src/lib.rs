//! Offline stand-in for `criterion`, covering the API the GRuB bench
//! harness uses.
//!
//! Unlike the original fixed-10-iteration stub, measurement now follows the
//! real criterion's shape closely enough for perf PRs to trust the numbers:
//!
//! 1. **warmup** — the routine runs untimed for a short budget
//!    ([`WARMUP_MS`]) so caches, allocators, and branch predictors settle,
//!    and the warmup pace calibrates the per-sample iteration count;
//! 2. **adaptive sampling** — the target sample count (default
//!    [`DEFAULT_SAMPLES`], configurable via [`Criterion::sample_size`]) is
//!    spread over a measurement budget ([`MEASURE_MS`]); each sample times
//!    `max(1, budget / (samples · t_iter))` iterations, so fast routines
//!    amortize timer overhead while slow ones still produce every sample;
//! 3. **outlier rejection** — samples outside the Tukey fences
//!    (`median ± 1.5·IQR`) are discarded, and the mean ± standard deviation
//!    of the surviving samples is reported along with how many were
//!    rejected.
//!
//! Environment knobs (both in milliseconds): `GRUB_BENCH_WARMUP_MS`,
//! `GRUB_BENCH_MEASURE_MS` — lower them for smoke runs, raise them for
//! low-noise measurements.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (real criterion has its own).
pub use std::hint::black_box;

/// Default untimed warmup budget per benchmark, milliseconds.
pub const WARMUP_MS: u64 = 50;

/// Default measurement budget per benchmark, milliseconds.
pub const MEASURE_MS: u64 = 250;

/// Default number of samples the measurement budget is spread over.
pub const DEFAULT_SAMPLES: usize = 20;

fn env_ms(var: &str, default: u64) -> Duration {
    let ms = std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default);
    Duration::from_millis(ms.max(1))
}

/// How batches are sized in `iter_batched` (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Summary statistics of one benchmark after outlier rejection.
#[derive(Clone, Copy, Debug, Default)]
struct Stats {
    mean: Duration,
    stddev: Duration,
    samples: usize,
    rejected: usize,
}

/// Rejects samples outside the Tukey fences (median ± 1.5·IQR) and returns
/// mean/stddev of the rest. Per-iteration durations are in nanoseconds.
fn tukey_stats(mut per_iter_ns: Vec<f64>) -> Stats {
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = per_iter_ns.len();
    let quartile = |q: f64| -> f64 {
        // Nearest-rank on the sorted samples; n ≥ 1.
        let idx = ((q * (n - 1) as f64).round() as usize).min(n - 1);
        per_iter_ns[idx]
    };
    let (q1, q3) = (quartile(0.25), quartile(0.75));
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let kept: Vec<f64> = per_iter_ns
        .iter()
        .copied()
        .filter(|&x| x >= lo && x <= hi)
        .collect();
    let rejected = n - kept.len();
    let mean = kept.iter().sum::<f64>() / kept.len() as f64;
    let var = kept.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / kept.len() as f64;
    Stats {
        mean: Duration::from_nanos(mean as u64),
        stddev: Duration::from_nanos(var.sqrt() as u64),
        samples: kept.len(),
        rejected,
    }
}

/// Entry point handed to `bench_function` closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    target_samples: usize,
    stats: Stats,
}

impl Bencher {
    /// Warmup pass: run untimed until the warmup budget elapses, returning
    /// the observed per-iteration pace.
    fn warm<F: FnMut() -> Duration>(&mut self, mut timed_iter: F) -> Duration {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.warmup || iters == 0 {
            black_box(timed_iter());
            iters += 1;
        }
        start.elapsed() / (iters as u32).max(1)
    }

    /// Measurement pass shared by all `iter*` flavors: `timed_iter` runs the
    /// routine once and returns the time attributable to it (setup
    /// excluded).
    fn measure_with<F: FnMut() -> Duration>(&mut self, mut timed_iter: F) {
        let pace = self.warm(&mut timed_iter);
        // Size each sample so the whole run fits the measurement budget.
        let per_sample = self.measure / self.target_samples as u32;
        let iters_per_sample = if pace.is_zero() {
            1
        } else {
            (per_sample.as_nanos() / pace.as_nanos().max(1)).clamp(1, u128::from(u32::MAX)) as u32
        };
        let mut samples = Vec::with_capacity(self.target_samples);
        let run_start = Instant::now();
        for _ in 0..self.target_samples {
            let mut total = Duration::ZERO;
            for _ in 0..iters_per_sample {
                total += timed_iter();
            }
            samples.push(total.as_nanos() as f64 / f64::from(iters_per_sample));
            // A slow routine can blow the budget; keep at least 5 samples
            // so the outlier pass has something to chew on.
            if run_start.elapsed() > self.measure * 2 && samples.len() >= 5 {
                break;
            }
        }
        self.stats = tukey_stats(samples);
    }

    /// Times `routine` with warmup, adaptive iteration count, and outlier
    /// rejection.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure_with(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    /// Times `routine` with per-batch `setup` excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.measure_with(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    /// Like `iter_batched` but passes the input by mutable reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.measure_with(|| {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            start.elapsed()
        });
    }
}

/// Benchmark registry/driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Sets the target sample count, mirroring the real builder API.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: env_ms("GRUB_BENCH_WARMUP_MS", WARMUP_MS),
            measure: env_ms("GRUB_BENCH_MEASURE_MS", MEASURE_MS),
            target_samples: self.sample_size,
            stats: Stats::default(),
        };
        f(&mut b);
        let s = b.stats;
        println!(
            "{name:<40} {:>12.2?}/iter ± {:<10.2?} ({} samples, {} outliers)",
            s.mean, s.stddev, s.samples, s.rejected
        );
        self
    }
}

/// Declares a benchmark group; both the `name = ..; config = ..; targets = ..`
/// and positional forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tukey_rejects_spikes_and_keeps_bulk() {
        let mut samples: Vec<f64> = (0..20).map(|i| 100.0 + (i % 3) as f64).collect();
        samples.push(10_000.0); // one wild outlier
        let stats = tukey_stats(samples);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.samples, 20);
        assert!(stats.mean.as_nanos() < 110, "mean {:?}", stats.mean);
    }

    #[test]
    fn tukey_handles_tiny_and_constant_inputs() {
        let s = tukey_stats(vec![42.0]);
        assert_eq!(s.samples, 1);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.mean, Duration::from_nanos(42));
        let s = tukey_stats(vec![7.0; 8]);
        assert_eq!(s.samples, 8);
        assert_eq!(s.stddev, Duration::ZERO);
    }

    #[test]
    fn bench_function_produces_samples() {
        std::env::set_var("GRUB_BENCH_WARMUP_MS", "1");
        std::env::set_var("GRUB_BENCH_MEASURE_MS", "5");
        let mut seen = 0usize;
        Criterion::default()
            .sample_size(10)
            .bench_function("noop", |b| {
                b.iter(|| black_box(1 + 1));
                seen = b.stats.samples + b.stats.rejected;
            });
        std::env::remove_var("GRUB_BENCH_WARMUP_MS");
        std::env::remove_var("GRUB_BENCH_MEASURE_MS");
        assert_eq!(seen, 10, "all requested samples are collected");
    }
}
