//! Offline stand-in for `serde`.
//!
//! The GRuB workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! markers (no actual serialization happens in-process), so this stub keeps
//! the builds hermetic: the traits exist, are blanket-implemented for every
//! type, and the derives expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    //! Stand-ins for the `serde::de` entry points the workspace may name.

    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
