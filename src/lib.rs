//! GRuB — cost-effective blockchain data feeds via workload-adaptive data
//! replication (Middleware 2020) — umbrella crate.
//!
//! This crate re-exports the whole workspace under one name, so examples
//! and downstream users can write `use grub::core::system::GrubSystem`.
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`core`] | `grub-core` | the GRuB system: policies, contracts, DO/SP, harness |
//! | [`engine`] | `grub-engine` | sharded multi-tenant feed engine, cross-feed batching |
//! | [`chain`] | `grub-chain` | Ethereum-like Gas-metered chain simulator |
//! | [`store`] | `grub-store` | LevelDB-style LSM storage engine (the SP's store) |
//! | [`merkle`] | `grub-merkle` | the authenticated data structure (Merkle ADS) |
//! | [`workload`] | `grub-workload` | ratio/oracle/BtcRelay/YCSB workloads |
//! | [`apps`] | `grub-apps` | SCoin stablecoin + Bitcoin-pegged token case studies |
//! | [`gas`] | `grub-gas` | the paper's Table 2 Gas schedule and metering |
//! | [`fault`] | `grub-fault` | named crash-point injection for recovery tests |
//! | [`crypto`] | `grub-crypto` | SHA-256 / HMAC / Lamport, from scratch |
//!
//! # Quickstart
//!
//! ```
//! use grub::core::policy::PolicyKind;
//! use grub::core::system::{GrubSystem, SystemConfig};
//! use grub::workload::ratio::RatioWorkload;
//!
//! // A read-heavy price feed served with the 2-competitive memoryless policy.
//! let trace = RatioWorkload::new("ETH-USD", 8.0).generate(32);
//! let report = GrubSystem::run_trace(
//!     &trace,
//!     &SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
//! ).expect("simulation runs");
//! println!("feed gas/op: {:.0}", report.feed_gas_per_op());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use grub_apps as apps;
pub use grub_chain as chain;
pub use grub_core as core;
pub use grub_crypto as crypto;
pub use grub_engine as engine;
pub use grub_fault as fault;
pub use grub_gas as gas;
pub use grub_merkle as merkle;
pub use grub_store as store;
pub use grub_workload as workload;
