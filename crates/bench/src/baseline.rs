//! The persisted bench trajectory: a smoke-scaled multi-tenant run whose
//! headline numbers are checked in as `BENCH_multifeed.json` and re-measured
//! on every CI run.
//!
//! Two kinds of numbers live in the baseline, with different gates:
//!
//! * **Deterministic** — total ops, scheduler rounds, the gas-savings
//!   ladder (unbatched → write-only batching → full batching), and the
//!   batch-section/transaction counts. These are pure functions of the
//!   specs; a fresh run must reproduce them *exactly*, or the engine's
//!   cost model silently moved.
//! * **Measured** — end-to-end throughput (`ops_per_sec`) and the
//!   sequential→parallel staging speedup. Wall clock varies across
//!   machines, so throughput is gated loosely ([`THROUGHPUT_FLOOR`]) and
//!   the speedup is recorded but not gated.
//!
//! Re-baseline after an intentional change with:
//!
//! ```sh
//! GRUB_WRITE_BASELINE=1 cargo run --release -p grub-bench --bin baseline
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use grub_chain::ChainConfig;
use grub_core::policy::PolicyKind;
use grub_core::system::SystemConfig;
use grub_engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
use grub_engine::{EngineConfig, FeedEngine, FeedSpec};
use grub_gas::FeeProcess;
use grub_workload::ratio::MultiKeyRatio;
use grub_workload::source::OpSource;

/// Fleet shape: the multifeed example's 8-feed mixed-skew fleet at smoke
/// scale, sharded two ways.
const TENANTS: usize = 8;
const SHARDS: usize = 2;
const TOTAL_OPS: usize = 512;

/// A fresh run must achieve at least this fraction of the baseline's
/// recorded `ops_per_sec` — loose on purpose: CI machines are slower and
/// noisier than the machine that wrote the baseline, and real throughput
/// regressions (an accidentally quadratic scheduler) blow through 4× .
pub const THROUGHPUT_FLOOR: f64 = 0.25;

/// Baseline keys that must reproduce exactly (deterministic functions of
/// the specs).
pub const DETERMINISTIC_KEYS: &[&str] = &[
    "total_ops",
    "rounds",
    "unbatched_gas",
    "write_only_gas",
    "full_batch_gas",
    "fee_spike_gas",
    "confirm_depth_gas",
    "update_sections",
    "deliver_sections",
    "update_txs",
    "deliver_txs",
];

/// Throughput keys gated at [`THROUGHPUT_FLOOR`] × their baseline value.
pub const THROUGHPUT_KEYS: &[&str] = &["ops_per_sec", "fee_ops_per_sec", "stream_ops_per_sec"];

/// Per-feed length of the stream leg: a scaled-down `stream_scale` shape
/// (two streaming feeds over a multi-key ratio mix).
const STREAM_OPS_PER_FEED: usize = 20_000;

fn fleet() -> Vec<FeedSpec> {
    zipfian_ratio_specs(TENANTS, TOTAL_OPS, DEMO_RATIOS, &demo_policies())
}

/// The stream-experiment fleet at baseline scale: two lazy-source feeds
/// over the same three-lane ratio mix `stream_scale` drives, with a small
/// memtable so SSTable flushes — the reads the block cache and bloom
/// guards sit on — occur within 20k ops instead of only at the 1M scale.
fn stream_fleet(per_feed: usize) -> Vec<FeedSpec> {
    let store = grub_store::Options {
        memtable_bytes: 1 << 10,
        l0_compaction_trigger: 2,
        ..grub_store::Options::default()
    };
    let mk_source = |seed: u64| -> Box<dyn OpSource> {
        let mix = MultiKeyRatio::new(vec![
            ("stream-hot".into(), 4.0),
            ("stream-cold".into(), 0.125),
            ("stream-warm".into(), 1.0),
        ])
        .seed(seed);
        // ops per rotation of the three lanes: (1+4) + (8+1) + (1+1) = 16.
        Box::new(mix.source(per_feed / 16))
    };
    vec![
        FeedSpec::from_source(
            "stream-a",
            SystemConfig::new(PolicyKind::Memoryless { k: 2 })
                .epoch_ops(32)
                .store_options(store),
            mk_source(1),
        ),
        FeedSpec::from_source(
            "stream-b",
            SystemConfig::new(PolicyKind::SelfTuning { window: 16 })
                .epoch_ops(32)
                .store_options(store),
            mk_source(2),
        ),
    ]
}

/// Runs the smoke fleet through the three batching modes (and both
/// scheduler modes for the full-batch configuration) and returns the
/// baseline metrics, keyed as in `BENCH_multifeed.json`.
pub fn measure() -> BTreeMap<String, f64> {
    let unbatched = FeedEngine::run_specs(&EngineConfig::new(SHARDS).unbatched(), fleet())
        .expect("unbatched run");
    let write_only =
        FeedEngine::run_specs(&EngineConfig::new(SHARDS).without_read_batching(), fleet())
            .expect("write-only run");
    let seq_start = Instant::now();
    let (full, seq_chain) = FeedEngine::new(&EngineConfig::new(SHARDS), fleet())
        .expect("engine builds")
        .run_with_chain()
        .expect("full-batch run");
    let seq_elapsed = seq_start.elapsed();
    let par_start = Instant::now();
    let (_par, par_chain) = FeedEngine::new(&EngineConfig::new(SHARDS).parallel(), fleet())
        .expect("engine builds")
        .run_with_chain()
        .expect("parallel run");
    let par_elapsed = par_start.elapsed();
    // The chain-realism row: the same fleet under the seeded spiking
    // gas-price process. Block heights, and therefore every priced charge,
    // are pure functions of the specs and the seed — the total is exact.
    let mut fee_config = EngineConfig::new(SHARDS);
    fee_config.chain = ChainConfig::default().fee(FeeProcess::spike(11));
    let fee_start = Instant::now();
    let fee_run = FeedEngine::run_specs(&fee_config, fleet()).expect("fee-schedule run");
    let fee_elapsed = fee_start.elapsed();
    // The confirmation-semantics row: the same fleet acknowledged only
    // three blocks deep, with the seeded inclusion-latency process gating
    // mining. Confirmation delays acknowledgment, never repricing, so the
    // total is exact — and must equal the plain full-batch total.
    let mut confirm_config = EngineConfig::new(SHARDS);
    confirm_config.chain = ChainConfig::default().confirm_depth(3).latency(5, 1);
    let confirm_run = FeedEngine::run_specs(&confirm_config, fleet()).expect("confirmation run");
    assert_eq!(
        confirm_run.feed_gas_total(),
        full.feed_gas_total(),
        "confirmation depth and inclusion latency must never move a unit of Gas"
    );
    assert_eq!(
        seq_chain.chain_digest(),
        par_chain.chain_digest(),
        "parallel staging must reproduce the sequential chain byte for byte"
    );
    // The hot-path row: the streamed-ingestion fleet (the `stream`
    // experiment's shape at baseline scale) with a bounded block-retention
    // window — the configuration the block cache and bloom guards serve.
    let mut stream_config = EngineConfig::new(SHARDS);
    stream_config.chain.retain_blocks = Some(256);
    let stream_start = Instant::now();
    let stream_run = FeedEngine::run_specs(&stream_config, stream_fleet(STREAM_OPS_PER_FEED))
        .expect("stream run");
    let stream_elapsed = stream_start.elapsed();
    assert_eq!(stream_run.failed_delivers(), 0);
    assert!(
        full.feed_gas_total() < write_only.feed_gas_total()
            && write_only.feed_gas_total() < unbatched.feed_gas_total(),
        "the gas-savings ladder must be strictly monotone"
    );

    let mut out = BTreeMap::new();
    out.insert("total_ops".into(), full.total_ops() as f64);
    out.insert("rounds".into(), full.rounds as f64);
    out.insert("unbatched_gas".into(), unbatched.feed_gas_total() as f64);
    out.insert("write_only_gas".into(), write_only.feed_gas_total() as f64);
    out.insert("full_batch_gas".into(), full.feed_gas_total() as f64);
    out.insert("fee_spike_gas".into(), fee_run.feed_gas_total() as f64);
    out.insert(
        "confirm_depth_gas".into(),
        confirm_run.feed_gas_total() as f64,
    );
    out.insert(
        "update_sections".into(),
        full.metrics
            .iter()
            .map(|m| m.update_sections)
            .sum::<usize>() as f64,
    );
    out.insert(
        "deliver_sections".into(),
        full.metrics
            .iter()
            .map(|m| m.deliver_sections)
            .sum::<usize>() as f64,
    );
    out.insert(
        "update_txs".into(),
        full.shard_update_txs.iter().sum::<usize>() as f64,
    );
    out.insert(
        "deliver_txs".into(),
        full.shard_deliver_txs.iter().sum::<usize>() as f64,
    );
    out.insert(
        "ops_per_sec".into(),
        full.total_ops() as f64 / seq_elapsed.as_secs_f64().max(1e-9),
    );
    out.insert(
        "fee_ops_per_sec".into(),
        fee_run.total_ops() as f64 / fee_elapsed.as_secs_f64().max(1e-9),
    );
    out.insert(
        "seq_par_speedup".into(),
        seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64().max(1e-9),
    );
    out.insert(
        "stream_ops_per_sec".into(),
        stream_run.total_ops() as f64 / stream_elapsed.as_secs_f64().max(1e-9),
    );
    // Hot-path counters, informational (capacity knobs move them, results
    // never): recorded so cache behaviour is visible in the artifact's
    // history, gated by neither list.
    let counter = |field: fn(&grub_engine::EpochMetrics) -> u64| -> f64 {
        stream_run.metrics.iter().map(field).sum::<u64>() as f64
    };
    out.insert("stream_cache_hits".into(), counter(|m| m.cache_hits));
    out.insert("stream_cache_misses".into(), counter(|m| m.cache_misses));
    out.insert("stream_bloom_skips".into(), counter(|m| m.bloom_skips));
    out
}

/// Renders the metrics as the checked-in JSON artifact (sorted keys, one
/// per line — diff-friendly; integers render without a fraction).
pub fn render_json(metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    let last = metrics.len().saturating_sub(1);
    for (i, (key, value)) in metrics.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        if value.fract() == 0.0 && value.abs() < 9e15 {
            let _ = writeln!(out, "  \"{key}\": {}{comma}", *value as i64);
        } else {
            let _ = writeln!(out, "  \"{key}\": {value:.3}{comma}");
        }
    }
    out.push_str("}\n");
    out
}

/// Parses the flat one-level JSON the renderer writes (the workspace is
/// offline and its vendored `serde` is a no-op stub, so the artifact format
/// is deliberately trivial). Unknown lines are ignored.
pub fn parse_json(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim().trim_end_matches(',');
        if let Ok(v) = value.parse::<f64>() {
            out.insert(key.to_owned(), v);
        }
    }
    out
}

/// Diffs a fresh measurement against the checked-in baseline on this
/// machine. Deterministic keys must match exactly, throughput must clear
/// [`THROUGHPUT_FLOOR`] × baseline, and the sequential→parallel speedup is
/// gated at ≥ 1.0 when the machine has ≥ 2 cores (informational on 1 core,
/// where parallel staging degenerates to the pipeline's schedule plus
/// thread overhead). Delegates to [`compare_with_cores`] with the detected
/// core count.
pub fn compare(baseline: &BTreeMap<String, f64>, fresh: &BTreeMap<String, f64>) -> Vec<String> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    compare_with_cores(baseline, fresh, cores)
}

/// [`compare`] with an explicit core count (testable without pinning the
/// harness to a machine shape). Returns the list of regressions (empty =
/// pass).
pub fn compare_with_cores(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    cores: usize,
) -> Vec<String> {
    let mut failures = Vec::new();
    for key in DETERMINISTIC_KEYS {
        match (baseline.get(*key), fresh.get(*key)) {
            (Some(b), Some(f)) if b == f => {}
            (Some(b), Some(f)) => failures.push(format!(
                "{key}: baseline {b} vs fresh {f} (deterministic metric must match exactly; \
                 re-baseline with GRUB_WRITE_BASELINE=1 if the change is intentional)"
            )),
            (None, _) => failures.push(format!("{key}: missing from baseline file")),
            (_, None) => failures.push(format!("{key}: missing from fresh run")),
        }
    }
    for key in THROUGHPUT_KEYS {
        if let (Some(b), Some(f)) = (baseline.get(*key), fresh.get(*key)) {
            let floor = b * THROUGHPUT_FLOOR;
            if *f < floor {
                failures.push(format!(
                    "{key}: fresh {f:.0} below floor {floor:.0} \
                     ({THROUGHPUT_FLOOR}× baseline {b:.0})"
                ));
            }
        }
    }
    // With ≥ 2 cores the persistent staging pool must make parallel mode
    // at least break even with the sequential pipeline; on 1 core there is
    // nothing to overlap and the ratio is noise.
    if cores >= 2 {
        if let Some(speedup) = fresh.get("seq_par_speedup") {
            if *speedup < 1.0 {
                failures.push(format!(
                    "seq_par_speedup: fresh {speedup:.3} below 1.0 on a {cores}-core machine \
                     (parallel staging must not lose to the sequential pipeline)"
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let mut metrics = BTreeMap::new();
        metrics.insert("total_ops".to_owned(), 512.0);
        metrics.insert("ops_per_sec".to_owned(), 1234.567);
        let parsed = parse_json(&render_json(&metrics));
        assert_eq!(parsed.get("total_ops"), Some(&512.0));
        assert_eq!(parsed.get("ops_per_sec"), Some(&1234.567));
    }

    #[test]
    fn compare_flags_deterministic_drift_and_slow_runs() {
        let mut base = BTreeMap::new();
        for key in DETERMINISTIC_KEYS {
            base.insert((*key).to_owned(), 100.0);
        }
        base.insert("ops_per_sec".to_owned(), 1000.0);
        assert!(compare(&base, &base).is_empty(), "identical runs pass");
        let mut drifted = base.clone();
        drifted.insert("full_batch_gas".to_owned(), 101.0);
        assert_eq!(compare(&base, &drifted).len(), 1);
        let mut slow = base.clone();
        slow.insert("ops_per_sec".to_owned(), 1000.0 * THROUGHPUT_FLOOR / 2.0);
        assert_eq!(compare(&base, &slow).len(), 1);
        let mut fast = base.clone();
        fast.insert("ops_per_sec".to_owned(), 5000.0);
        assert!(
            compare(&base, &fast).is_empty(),
            "faster is never a regression"
        );
    }

    #[test]
    fn speedup_gate_depends_on_core_count() {
        let mut base = BTreeMap::new();
        for key in DETERMINISTIC_KEYS {
            base.insert((*key).to_owned(), 100.0);
        }
        let mut slow_parallel = base.clone();
        slow_parallel.insert("seq_par_speedup".to_owned(), 0.8);
        assert!(
            compare_with_cores(&base, &slow_parallel, 1).is_empty(),
            "one core: speedup is informational"
        );
        assert_eq!(
            compare_with_cores(&base, &slow_parallel, 4).len(),
            1,
            "four cores: sub-1.0 speedup is a regression"
        );
        let mut even = base.clone();
        even.insert("seq_par_speedup".to_owned(), 1.3);
        assert!(compare_with_cores(&base, &even, 4).is_empty());
    }
}
