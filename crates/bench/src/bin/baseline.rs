//! Measure the multifeed smoke fleet and gate it against the checked-in
//! `BENCH_multifeed.json` baseline (CI's bench-baseline job), or rewrite
//! the baseline after an intentional change:
//!
//! ```sh
//! cargo run --release -p grub-bench --bin baseline            # compare
//! GRUB_WRITE_BASELINE=1 \
//!   cargo run --release -p grub-bench --bin baseline          # re-baseline
//! ```

use std::path::PathBuf;

use grub_bench::baseline;

fn baseline_path() -> PathBuf {
    if let Ok(path) = std::env::var("GRUB_BASELINE_PATH") {
        return PathBuf::from(path);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_multifeed.json")
}

fn main() {
    let path = baseline_path();
    println!("measuring multifeed baseline fleet...");
    let fresh = baseline::measure();
    print!("{}", baseline::render_json(&fresh));

    if std::env::var("GRUB_WRITE_BASELINE").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, baseline::render_json(&fresh)).expect("write baseline");
        println!("baseline written to {}", path.display());
        return;
    }

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!(
            "no baseline at {} ({e}); write one with GRUB_WRITE_BASELINE=1",
            path.display()
        );
        std::process::exit(1);
    });
    let recorded = baseline::parse_json(&text);
    let failures = baseline::compare(&recorded, &fresh);
    if failures.is_empty() {
        println!("baseline check passed against {}", path.display());
    } else {
        eprintln!("baseline regressions against {}:", path.display());
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        std::process::exit(1);
    }
}
