//! Run a single named experiment:
//!
//! ```sh
//! cargo run --release -p grub-bench --bin experiment -- fig3
//! cargo run --release -p grub-bench --bin experiment -- list
//! ```

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "list".to_owned());
    let registry = grub_bench::registry();
    if arg == "list" {
        println!("available experiments:");
        for (name, title, _) in &registry {
            println!("  {name:<12} {title}");
        }
        return;
    }
    match registry.iter().find(|(name, _, _)| *name == arg) {
        Some((name, title, f)) => {
            println!("==== {name}: {title} ====\n");
            println!("{}", f());
        }
        None => {
            eprintln!("unknown experiment {arg:?}; try `list`");
            std::process::exit(1);
        }
    }
}
