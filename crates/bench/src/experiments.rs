//! Implementations of the per-figure/table regenerators.
//!
//! Scale notes: time-bounded CI runs use moderately scaled-down op counts
//! relative to the paper (recorded inline per experiment); shapes —
//! crossovers, winners, convergence — are the reproduction target, per the
//! calibration bands in `DESIGN.md`.

use std::fmt::Write as _;
use std::rc::Rc;

use grub_apps::erc20::Erc20;
use grub_apps::scoin::{encode_issue, SCoinIssuer};
use grub_chain::{Address, Transaction};
use grub_core::contract::OnChainTrace;
use grub_core::metrics::RunReport;
use grub_core::policy::{OfflineOptimal, PolicyKind};
use grub_core::system::{GrubSystem, SystemConfig};
use grub_gas::{GasSchedule, Layer};
use grub_workload::btcrelay::BtcRelayTrace;
use grub_workload::oracle::OracleTrace;
use grub_workload::ratio::RatioWorkload;
use grub_workload::stats;
use grub_workload::ycsb::{self, YcsbKind};
use grub_workload::Trace;

const RATIOS: &[f64] = &[0.0, 0.125, 0.5, 1.0, 4.0, 16.0, 64.0, 256.0];

fn run(trace: &Trace, config: &SystemConfig) -> RunReport {
    GrubSystem::run_trace(trace, config).expect("experiment run")
}

fn ratio_trace(ratio: f64, value_len: usize) -> Trace {
    let per_cycle = if ratio == 0.0 {
        1.0
    } else if ratio >= 1.0 {
        1.0 + ratio
    } else {
        1.0 / ratio + 1.0
    };
    let cycles = ((2048.0 / per_cycle).ceil() as usize).max(8);
    RatioWorkload::new("feed", ratio)
        .value_len(value_len)
        .generate(cycles)
}

/// Table 2: the Gas schedule (constants are also unit-tested in `grub-gas`).
pub fn table2() -> String {
    let s = GasSchedule::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table 2 — Ethereum Gas cost per operation (X = 32-byte words)"
    );
    let _ = writeln!(
        out,
        "Transaction            Ctx(X)    = {} + {}X",
        s.tx_base, s.tx_per_word
    );
    let _ = writeln!(
        out,
        "Storage write (insert) Cinsert(X) = {}X",
        s.storage_insert_per_word
    );
    let _ = writeln!(
        out,
        "Storage write (update) Cupdate(X) = {}X",
        s.storage_update_per_word
    );
    let _ = writeln!(
        out,
        "Storage read           Cread(X)  = {}X",
        s.storage_read_per_word
    );
    let _ = writeln!(
        out,
        "Hash computation       Chash(X)  = {} + {}X",
        s.hash_base, s.hash_per_word
    );
    let _ = writeln!(
        out,
        "Equation 1 threshold   K = Cupdate/Cread_off = {:.2}",
        s.two_competitive_k()
    );
    out
}

/// Table 1 + Figure 2: the synthesized ethPriceOracle workload.
pub fn table1_fig2() -> String {
    let trace = OracleTrace::new().generate();
    let dist = stats::reads_after_write_distribution(&trace);
    let series = stats::reads_after_write_series(&trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table 1 — distribution of writes by #reads following ({} writes)",
        trace.write_count()
    );
    let _ = writeln!(out, "{:>4} {:>10}", "#r", "percent");
    for (reads, pct) in stats::distribution_rows(&dist) {
        let _ = writeln!(out, "{reads:>4} {pct:>9.2}%");
    }
    let max_burst = series.iter().max().copied().unwrap_or(0);
    let zeros = series.iter().filter(|&&r| r == 0).count();
    let _ = writeln!(
        out,
        "\n## Figure 2 — series summary: {} writes, max burst {} reads, {:.1}% zero-read writes",
        series.len(),
        max_burst,
        100.0 * zeros as f64 / series.len() as f64
    );
    out
}

/// Figure 3: the static baselines BL1/BL2 across read-to-write ratios
/// (the §2.3 motivating measurement).
pub fn fig3() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 3 — per-op Gas of static baselines vs read-to-write ratio"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>14} {:>10}",
        "ratio", "BL1 gas/op", "BL2 gas/op", "winner"
    );
    for &ratio in RATIOS {
        let trace = ratio_trace(ratio, 32);
        let bl1 = run(&trace, &SystemConfig::new(PolicyKind::Bl1));
        let bl2 = run(&trace, &SystemConfig::new(PolicyKind::Bl2));
        let winner = if bl1.feed_gas_per_op() <= bl2.feed_gas_per_op() {
            "BL1"
        } else {
            "BL2"
        };
        let _ = writeln!(
            out,
            "{ratio:>8} {:>14.0} {:>14.0} {winner:>10}",
            bl1.feed_gas_per_op(),
            bl2.feed_gas_per_op()
        );
    }
    out
}

/// Drives the oracle trace through a feed consumed by the SCoin issuer,
/// returning (feed-layer gas, feed+app gas, per-epoch feed series).
fn run_scoin(policy: PolicyKind) -> RunReport {
    // §4.1 setup: 4096-asset price feed, gPuts batching 10 assets per poke,
    // reads mapped to SCoinIssuer issue()/redeem() at equal chance.
    // Scale: 200 pokes (the 5-day trace has 790; runtime-scaled).
    let record_len = 32usize;
    let preload: Vec<(String, Vec<u8>)> = (0..4096)
        .map(|i| {
            (
                OracleTrace::asset_key(i),
                grub_workload::ValueSpec::new(record_len, 7000 + i as u64).materialize(),
            )
        })
        .collect();
    let trace = OracleTrace::new()
        .writes(200)
        .assets(10)
        .record_len(record_len)
        .generate();
    let config = SystemConfig::new(policy).preload(preload).live_reads();
    let mut system = GrubSystem::new(&config).expect("system");
    // Wire the SCoin application in as the read driver.
    let issuer = Address::derive("bench-scoin-issuer");
    let token = Address::derive("bench-scoin-token");
    system.deploy_contract(
        issuer,
        Rc::new(SCoinIssuer::new(system.manager(), token)),
        Layer::Application,
    );
    system.deploy_contract(token, Rc::new(Erc20::new(issuer)), Layer::Application);
    let user = Address::derive("bench-scoin-user");
    system.set_read_tx_builder(Box::new(move |keys| {
        keys.iter()
            .enumerate()
            .map(|(i, _)| {
                // Equal chance issue/redeem; redemptions are small so the
                // balance accumulated by issues always covers them.
                let (func, amount) = if i % 2 == 0 {
                    ("issue", 1_000)
                } else {
                    ("redeem", 1)
                };
                Transaction::new(user, issuer, func, encode_issue(user, amount), Layer::User)
            })
            .collect()
    }));
    system.drive(&trace).expect("drive");
    system.into_report()
}

/// Figure 5 + Table 3: the oracle trace under BL1/BL2/GRuB with the SCoin
/// application on top.
pub fn fig5_table3() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table 3 — aggregated Gas: feed layer and SCoinIssuer (M = million)"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>16} {:>18}",
        "policy", "price feed", "SCoinIssuer"
    );
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut grub_feed = 0u64;
    let mut rows: Vec<(String, u64, u64)> = Vec::new();
    for policy in [
        PolicyKind::Bl1,
        PolicyKind::Bl2,
        PolicyKind::Memoryless { k: 1 },
    ] {
        let report = run_scoin(policy);
        let feed = report.feed_gas_total();
        let total = feed + report.app_gas_total();
        if report.policy.contains("memoryless") {
            grub_feed = feed;
        }
        rows.push((report.policy.clone(), feed, total));
        series.push((report.policy.clone(), report.feed_series()));
    }
    for (name, feed, total) in &rows {
        let vs = if grub_feed > 0 && *feed != grub_feed {
            format!(
                " (+{:.0}%)",
                100.0 * (*feed as f64 - grub_feed as f64) / grub_feed as f64
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{name:<28} {:>10.1}M{vs:<6} {:>12.1}M",
            *feed as f64 / 1e6,
            *total as f64 / 1e6
        );
    }
    let _ = writeln!(
        out,
        "\n## Figure 5 — feed gas/op per epoch (every 4th epoch)"
    );
    let _ = write!(out, "{:<10}", "epoch");
    for (name, _) in &series {
        let _ = write!(out, "{:>28}", truncate(name, 26));
    }
    let _ = writeln!(out);
    let epochs = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for e in (0..epochs).step_by(4) {
        let _ = write!(out, "{e:<10}");
        for (_, s) in &series {
            let v = s.get(e).copied().unwrap_or(f64::NAN);
            let _ = write!(out, "{v:>28.0}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 6: the BtcRelay trace (write-intensive first half, read-intensive
/// second half), epoch of 4 transactions, GRuB with K=2.
pub fn fig6() -> String {
    // 200 relayed blocks; the second half carries a 10x read boost, giving
    // the paper's phase flip around the middle epoch.
    let trace = BtcRelayTrace::new()
        .blocks(200)
        .read_delay_blocks(6)
        .boost_reads(100..200, 10.0)
        .generate();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 6 — BtcRelay trace, gas/op per epoch (each of 4 txs)"
    );
    let mut series = Vec::new();
    let mut totals = Vec::new();
    for policy in [
        PolicyKind::Bl1,
        PolicyKind::Bl2,
        PolicyKind::Memoryless { k: 2 },
    ] {
        let config = SystemConfig::new(policy).epoch_ops(4).live_reads();
        let report = run(&trace, &config);
        totals.push((report.policy.clone(), report.feed_gas_per_op()));
        series.push((report.policy.clone(), report.feed_series()));
    }
    let _ = write!(out, "{:<8}", "epoch");
    for (name, _) in &series {
        let _ = write!(out, "{:>28}", truncate(name, 26));
    }
    let _ = writeln!(out);
    let epochs = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for e in (0..epochs).step_by(4) {
        let _ = write!(out, "{e:<8}");
        for (_, s) in &series {
            let v = s.get(e).copied().unwrap_or(f64::NAN);
            let _ = write!(out, "{v:>28.0}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "\naggregate gas/op:");
    let grub = totals.last().expect("grub row").1;
    for (name, value) in &totals {
        let saving = if *value > grub {
            format!(" (GRuB saves {:.1}%)", 100.0 * (value - grub) / value)
        } else {
            String::new()
        };
        let _ = writeln!(out, "  {name:<28} {value:>10.0}{saving}");
    }
    out
}

/// Figure 7: GRuB vs the static baselines and the on-chain-trace dynamic
/// baselines (BL3) across ratios.
pub fn fig7() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 7 — converged gas/op vs read-to-write ratio");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>14} {:>16} {:>12}",
        "ratio", "BL1", "BL2", "BL3(reads)", "BL3(reads+wr)", "GRuB"
    );
    for &ratio in RATIOS {
        let trace = ratio_trace(ratio, 32);
        let bl1 = run(&trace, &SystemConfig::new(PolicyKind::Bl1));
        let bl2 = run(&trace, &SystemConfig::new(PolicyKind::Bl2));
        let bl3r = run(
            &trace,
            &SystemConfig::new(PolicyKind::Memoryless { k: 2 }).on_chain_trace(OnChainTrace::Reads),
        );
        let bl3rw = run(
            &trace,
            &SystemConfig::new(PolicyKind::Memoryless { k: 2 })
                .on_chain_trace(OnChainTrace::ReadsAndWrites),
        );
        let grub = run(&trace, &SystemConfig::new(PolicyKind::Memoryless { k: 2 }));
        let _ = writeln!(
            out,
            "{ratio:>8} {:>12.0} {:>12.0} {:>14.0} {:>16.0} {:>12.0}",
            bl1.feed_gas_per_op(),
            bl2.feed_gas_per_op(),
            bl3r.feed_gas_per_op(),
            bl3rw.feed_gas_per_op(),
            grub.feed_gas_per_op()
        );
    }
    let _ = writeln!(
        out,
        "\nGRuB should track min(BL1, BL2); BL3 pays on-chain monitoring on top."
    );
    out
}

/// Figure 8a: memoryless vs memorizing vs the offline optimum on the
/// worst-case-style workload (K = K' = 8, ratio K+1).
pub fn fig8a() -> String {
    let k = 8u64;
    let trace = RatioWorkload::new("feed", (k + 1) as f64).generate(40);
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 8a — gas/op over time (K=K'=8, ratio K+1)");
    let memless = run(&trace, &SystemConfig::new(PolicyKind::Memoryless { k }));
    let memor = run(
        &trace,
        &SystemConfig::new(PolicyKind::Memorizing {
            k_prime: k as f64,
            d: 1.0,
        }),
    );
    let optimal = GrubSystem::run_trace_with_policy(
        &trace,
        &SystemConfig::new(PolicyKind::Bl1),
        Box::new(OfflineOptimal::from_trace(
            &trace,
            GasSchedule::default().two_competitive_k(),
        )),
    )
    .expect("offline run");
    let _ = writeln!(
        out,
        "{:<8}{:>18}{:>18}{:>18}",
        "epoch", "memoryless", "memorizing", "optimal"
    );
    let n = memless
        .epochs
        .len()
        .max(memor.epochs.len())
        .max(optimal.epochs.len());
    for e in 0..n {
        let _ = writeln!(
            out,
            "{e:<8}{:>18.0}{:>18.0}{:>18.0}",
            memless.feed_series().get(e).copied().unwrap_or(f64::NAN),
            memor.feed_series().get(e).copied().unwrap_or(f64::NAN),
            optimal.feed_series().get(e).copied().unwrap_or(f64::NAN),
        );
    }
    let _ = writeln!(
        out,
        "\naggregate gas/op: memoryless {:.0}, memorizing {:.0}, optimal {:.0}",
        memless.feed_gas_per_op(),
        memor.feed_gas_per_op(),
        optimal.feed_gas_per_op()
    );
    out
}

/// Figure 8b: record-size sweep (1–16 words) for BL1/BL2/GRuB.
pub fn fig8b() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 8b — gas/op vs record size (ratio 4)");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "words", "BL1", "BL2", "GRuB"
    );
    for words in [1usize, 2, 4, 8, 16] {
        let trace = ratio_trace(4.0, words * 32);
        let bl1 = run(&trace, &SystemConfig::new(PolicyKind::Bl1));
        let bl2 = run(&trace, &SystemConfig::new(PolicyKind::Bl2));
        let grub = run(&trace, &SystemConfig::new(PolicyKind::Memoryless { k: 2 }));
        let _ = writeln!(
            out,
            "{words:>8} {:>12.0} {:>12.0} {:>12.0}",
            bl1.feed_gas_per_op(),
            bl2.feed_gas_per_op(),
            grub.feed_gas_per_op()
        );
    }
    out
}

fn run_ycsb_mix(
    mix: &[(YcsbKind, usize)],
    record_len: usize,
    records: u64,
) -> Vec<(String, RunReport)> {
    let preload: Vec<(String, Vec<u8>)> = ycsb::preload(records, record_len, 42)
        .into_iter()
        .map(|(k, v)| (k, v.materialize()))
        .collect();
    let trace = ycsb::mixed_trace(records, record_len, 42, mix);
    [
        PolicyKind::Bl1,
        PolicyKind::Bl2,
        PolicyKind::Memoryless { k: 2 },
    ]
    .into_iter()
    .map(|policy| {
        // GRuB runs warm-started (provisioned replicated, like BL2): the
        // paper's steady-state measurement with slot reuse (§4.2), so
        // adaptation is about evicting write-hot records and re-replicating
        // at Cupdate, not about first-insert capex.
        let warm = matches!(policy, PolicyKind::Memoryless { .. });
        let mut config = SystemConfig::new(policy).preload(preload.clone());
        if warm {
            config = config.warm_start();
        }
        let report = run(&trace, &config);
        (report.policy.clone(), report)
    })
    .collect()
}

fn render_ycsb(title: &str, results: &[(String, RunReport)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let grub = results.last().expect("grub row").1.feed_gas_total();
    let _ = writeln!(
        out,
        "{:<28} {:>16} {:>10}",
        "policy", "total gas", "vs GRuB"
    );
    for (name, report) in results {
        let total = report.feed_gas_total();
        let vs = if total != grub {
            format!(
                "{:+.1}%",
                100.0 * (total as f64 - grub as f64) / grub as f64
            )
        } else {
            "—".to_owned()
        };
        let _ = writeln!(out, "{name:<28} {total:>16} {vs:>10}");
    }
    let _ = writeln!(out, "\nper-epoch feed gas/op (every 8th epoch):");
    let _ = write!(out, "{:<8}", "epoch");
    for (name, _) in results {
        let _ = write!(out, "{:>28}", truncate(name, 26));
    }
    let _ = writeln!(out);
    let epochs = results
        .iter()
        .map(|(_, r)| r.epochs.len())
        .max()
        .unwrap_or(0);
    for e in (0..epochs).step_by(8) {
        let _ = write!(out, "{e:<8}");
        for (_, r) in results {
            let v = r.feed_series().get(e).copied().unwrap_or(f64::NAN);
            let _ = write!(out, "{v:>28.0}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Figure 9 + Table 4 row 1: mixed YCSB A,B (4 phases), 1 KiB records.
///
/// Scale: 1024 ops/phase over 2^12 preloaded records (paper: 4096 ops over
/// 2^16) — the phase dynamics are what the figure shows.
pub fn fig9_table4_ab() -> String {
    let mix = [
        (YcsbKind::A, 1024),
        (YcsbKind::B, 1024),
        (YcsbKind::A, 1024),
        (YcsbKind::B, 1024),
    ];
    let results = run_ycsb_mix(&mix, 1024, 1 << 12);
    render_ycsb(
        "## Figure 9 + Table 4 (A,B) — mixed YCSB A,B, 1 KiB records",
        &results,
    )
}

/// Figure 13 + Table 4 rows 2–3: mixed YCSB A,E (1 KiB) and A,F (32 B).
pub fn fig13_table4_ae_af() -> String {
    let mut out = String::new();
    let mix_ae = [
        (YcsbKind::A, 1024),
        (YcsbKind::E, 1024),
        (YcsbKind::A, 1024),
        (YcsbKind::E, 1024),
    ];
    let results = run_ycsb_mix(&mix_ae, 1024, 1 << 12);
    out.push_str(&render_ycsb(
        "## Figure 13a + Table 4 (A,E) — mixed YCSB A,E, 1 KiB records",
        &results,
    ));
    let mix_af = [
        (YcsbKind::A, 1024),
        (YcsbKind::F, 1024),
        (YcsbKind::A, 1024),
        (YcsbKind::F, 1024),
    ];
    let results = run_ycsb_mix(&mix_af, 32, 1 << 12);
    out.push('\n');
    out.push_str(&render_ycsb(
        "## Figure 13b + Table 4 (A,F) — mixed YCSB A,F, 32 B records",
        &results,
    ));
    out
}

/// Figure 11: memoryless K sweep across ratios 2/4/8.
pub fn fig11() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 11 — GRuB gas/op vs parameter K");
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>14}",
        "K", "ratio 2", "ratio 4", "ratio 8"
    );
    for k in [1u64, 2, 4, 8, 16, 32, 64] {
        let mut row = format!("{k:>6}");
        for ratio in [2.0, 4.0, 8.0] {
            let trace = ratio_trace(ratio, 32);
            let report = run(&trace, &SystemConfig::new(PolicyKind::Memoryless { k }));
            let _ = write!(row, " {:>14.0}", report.feed_gas_per_op());
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Figure 12: the BL1/BL2 threshold (crossover) read-write ratio, vs record
/// size and vs data size.
pub fn fig12() -> String {
    // Finer resolution at low ratios, extended range for large records
    // whose crossover sits far right.
    let mut grid: Vec<f64> = (1..=16).map(|i| i as f64 * 0.125).collect();
    grid.extend((9..=16).map(|i| i as f64 * 0.25));
    grid.extend((9..=16).map(|i| i as f64 * 0.5));
    grid.extend((9..=16).map(|i| i as f64 * 1.0));
    grid.extend((9..=32).map(|i| i as f64 * 2.0));
    let crossover = |record_len: usize, data_size: u64| -> f64 {
        let preload: Vec<(String, Vec<u8>)> = ycsb::preload(data_size, record_len, 5)
            .into_iter()
            .map(|(k, v)| (k, v.materialize()))
            .collect();
        for &ratio in &grid {
            let trace = {
                let per_cycle = if ratio >= 1.0 {
                    1.0 + ratio
                } else {
                    1.0 / ratio + 1.0
                };
                let cycles = ((768.0 / per_cycle).ceil() as usize).max(4);
                RatioWorkload::new(ycsb::ycsb_key(0), ratio)
                    .value_len(record_len)
                    .generate(cycles)
            };
            let bl1 = run(
                &trace,
                &SystemConfig::new(PolicyKind::Bl1).preload(preload.clone()),
            );
            let bl2 = run(
                &trace,
                &SystemConfig::new(PolicyKind::Bl2).preload(preload.clone()),
            );
            if bl2.feed_gas_per_op() <= bl1.feed_gas_per_op() {
                return ratio;
            }
        }
        f64::NAN
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 12a — threshold read-write ratio vs record size (256 records)"
    );
    for record_len in [32usize, 512, 4096] {
        let _ = writeln!(
            out,
            "  {record_len:>5} B: threshold ratio {:.2}",
            crossover(record_len, 256)
        );
    }
    let _ = writeln!(
        out,
        "\n## Figure 12b — threshold read-write ratio vs data size (32 B records)"
    );
    for data_size in [256u64, 4096, 65536] {
        let _ = writeln!(
            out,
            "  {data_size:>6} records: threshold ratio {:.2}",
            crossover(32, data_size)
        );
    }
    let _ = writeln!(
        out,
        "\nlarger records raise the threshold (storage writes dominate);\nlarger datasets deepen proofs and lower it."
    );
    out
}

/// Figure 14: K sweep under the YCSB A,B mix against the static baselines.
pub fn fig14() -> String {
    let mix = [(YcsbKind::A, 512), (YcsbKind::B, 512)];
    let records = 1u64 << 10;
    let record_len = 256usize;
    let preload: Vec<(String, Vec<u8>)> = ycsb::preload(records, record_len, 17)
        .into_iter()
        .map(|(k, v)| (k, v.materialize()))
        .collect();
    let trace = ycsb::mixed_trace(records, record_len, 17, &mix);
    let bl1 = run(
        &trace,
        &SystemConfig::new(PolicyKind::Bl1).preload(preload.clone()),
    );
    let bl2 = run(
        &trace,
        &SystemConfig::new(PolicyKind::Bl2).preload(preload.clone()),
    );
    let mut out = String::new();
    let _ = writeln!(out, "## Figure 14 — gas/op vs K under YCSB (A,B mix)");
    let _ = writeln!(
        out,
        "BL1 = {:.0}, BL2 = {:.0}",
        bl1.feed_gas_per_op(),
        bl2.feed_gas_per_op()
    );
    let _ = writeln!(out, "{:>6} {:>16}", "K", "GRuB gas/op");
    for k in [1u64, 2, 4, 8, 16, 32, 64] {
        let report = run(
            &trace,
            &SystemConfig::new(PolicyKind::Memoryless { k })
                .preload(preload.clone())
                .warm_start(),
        );
        let _ = writeln!(out, "{k:>6} {:>16.0}", report.feed_gas_per_op());
    }
    out
}

/// Figure 15 + Table 5: the adaptive-K heuristics on the oracle trace.
pub fn fig15_table5() -> String {
    let trace = OracleTrace::new().writes(400).generate();
    let mut out = String::new();
    let _ = writeln!(out, "## Table 5 — aggregated Gas under ethPriceOracle");
    let mut results = Vec::new();
    for policy in [
        PolicyKind::Memoryless { k: 1 },
        PolicyKind::Adaptive {
            dual: false,
            window: 3,
        },
        PolicyKind::Adaptive {
            dual: true,
            window: 3,
        },
    ] {
        let report = run(&trace, &SystemConfig::new(policy).live_reads());
        results.push((report.policy.clone(), report));
    }
    let baseline = results[0].1.feed_gas_total() as f64;
    for (name, report) in &results {
        let delta = 100.0 * (report.feed_gas_total() as f64 - baseline) / baseline;
        let _ = writeln!(
            out,
            "{:<42} {:>12} ({:+.1}%)",
            name,
            report.feed_gas_total(),
            delta
        );
    }
    let _ = writeln!(out, "\n## Figure 15 — gas/op per epoch (every 2nd epoch)");
    let _ = write!(out, "{:<8}", "epoch");
    for (name, _) in &results {
        let _ = write!(out, "{:>34}", truncate(name, 32));
    }
    let _ = writeln!(out);
    let epochs = results
        .iter()
        .map(|(_, r)| r.epochs.len())
        .max()
        .unwrap_or(0);
    for e in (0..epochs).step_by(2) {
        let _ = write!(out, "{e:<8}");
        for (_, r) in &results {
            let v = r.feed_series().get(e).copied().unwrap_or(f64::NAN);
            let _ = write!(out, "{v:>34.0}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Table 6 + Figure 16: the BtcRelay workload itself.
pub fn table6_fig16() -> String {
    let trace = BtcRelayTrace::new().blocks(5000).generate();
    let dist = stats::reads_after_write_distribution(&trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table 6 — BtcRelay: distribution of writes by #reads following"
    );
    let _ = writeln!(out, "{:>4} {:>10}", "#r", "percent");
    for (reads, pct) in stats::distribution_rows(&dist).into_iter().take(12) {
        let _ = writeln!(out, "{reads:>4} {pct:>9.2}%");
    }
    let series = stats::reads_after_write_series(&trace);
    let _ = writeln!(
        out,
        "\n## Figure 16a — {} writes, max reads-after-write {}",
        series.len(),
        series.iter().max().copied().unwrap_or(0)
    );
    let _ = writeln!(
        out,
        "## Figure 16b — reads are delayed ~24 blocks (≈4 h at 10 min/block) by construction"
    );
    out
}

/// Theorems A.1/A.2: empirical competitiveness of the online algorithms on
/// their worst-case sequences.
pub fn competitive() -> String {
    let schedule = GasSchedule::default();
    let k_eq1 = schedule.two_competitive_k();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Theorem A.1 — memoryless worst case (every write followed by exactly K reads)"
    );
    for k in [2u64, 4, 8] {
        let trace = RatioWorkload::new("feed", k as f64).generate(64);
        let online = run(&trace, &SystemConfig::new(PolicyKind::Memoryless { k }));
        let offline = GrubSystem::run_trace_with_policy(
            &trace,
            &SystemConfig::new(PolicyKind::Bl1),
            Box::new(OfflineOptimal::from_trace(&trace, k_eq1)),
        )
        .expect("offline");
        let ratio = online.feed_gas_total() as f64 / offline.feed_gas_total() as f64;
        let bound = 1.0 + k as f64 * schedule.read_off_per_byte() / schedule.update_per_byte();
        let _ = writeln!(
            out,
            "  K={k}: online/offline = {ratio:.2} (theory bound {bound:.2}; protocol overheads shared)"
        );
    }
    let _ = writeln!(
        out,
        "\n## Theorem A.2 — memorizing bound (4D+2)/K' on alternating bursts"
    );
    for (k_prime, d) in [(2.0f64, 2.0f64), (4.0, 4.0)] {
        let trace = RatioWorkload::new("feed", 3.0).generate(64);
        let online = run(
            &trace,
            &SystemConfig::new(PolicyKind::Memorizing { k_prime, d }),
        );
        let offline = GrubSystem::run_trace_with_policy(
            &trace,
            &SystemConfig::new(PolicyKind::Bl1),
            Box::new(OfflineOptimal::from_trace(&trace, k_eq1)),
        )
        .expect("offline");
        let ratio = online.feed_gas_total() as f64 / offline.feed_gas_total() as f64;
        let bound = (4.0 * d + 2.0) / k_prime;
        let _ = writeln!(
            out,
            "  K'={k_prime}, D={d}: online/offline = {ratio:.2} (theory bound {bound:.2})"
        );
    }
    out
}

/// Ablation (beyond the paper): the future-work self-tuning K policy
/// against static K and the Appendix C.3 heuristics, on the oracle trace.
pub fn ablation_self_tuning() -> String {
    let trace = OracleTrace::new().writes(400).generate();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Ablation — K selection policies under ethPriceOracle (live tempo)"
    );
    let _ = writeln!(out, "{:<44} {:>14} {:>10}", "policy", "total gas", "gas/op");
    for policy in [
        PolicyKind::Memoryless { k: 1 },
        PolicyKind::Memoryless { k: 2 },
        PolicyKind::Memoryless { k: 4 },
        PolicyKind::Adaptive {
            dual: false,
            window: 3,
        },
        PolicyKind::Adaptive {
            dual: true,
            window: 3,
        },
        PolicyKind::SelfTuning { window: 32 },
    ] {
        let report = run(&trace, &SystemConfig::new(policy).live_reads());
        let _ = writeln!(
            out,
            "{:<44} {:>14} {:>10.0}",
            report.policy,
            report.feed_gas_total(),
            report.feed_gas_per_op()
        );
    }
    let _ = writeln!(
        out,
        "
the tuner replays the recent burst window under each candidate K and
         adopts the counterfactual argmin (the paper's open problem, App. C.3)."
    );
    out
}

/// Multi-tenant extension (beyond the paper): N feeds with Zipfian tenant
/// skew share one chain via `grub-engine`; cross-feed epoch batching
/// amortizes the per-transaction envelope across each shard's same-block
/// updates (`batchUpdate`) and deliveries (`batchDeliver`). Compares total
/// feed Gas across the unbatched sum-of-singles baseline, write-only
/// batching, and full batching with the read path coalesced too.
pub fn multifeed_batching() -> String {
    use grub_engine::specs::{demo_policies, zipfian_ratio_specs, DEMO_RATIOS};
    use grub_engine::{EngineConfig, FeedEngine, FeedSpec};

    let build_specs = |tenants: usize, total_ops: usize| -> Vec<FeedSpec> {
        zipfian_ratio_specs(tenants, total_ops, DEMO_RATIOS, &demo_policies())
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Multi-tenant engine — cross-feed epoch batching (zipfian tenant skew)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>15} {:>15} {:>15} {:>9} {:>9} {:>10}",
        "tenants",
        "shards",
        "unbatched gas",
        "upd-batch gas",
        "full-batch gas",
        "upd save",
        "all save",
        "ops/sec"
    );
    for (tenants, shards, total_ops) in [(4usize, 1usize, 512usize), (8, 2, 1024), (16, 4, 2048)] {
        let unbatched = FeedEngine::run_specs(
            &EngineConfig::new(shards).unbatched(),
            build_specs(tenants, total_ops),
        )
        .expect("unbatched engine run");
        let write_only = FeedEngine::run_specs(
            &EngineConfig::new(shards).without_read_batching(),
            build_specs(tenants, total_ops),
        )
        .expect("write-only engine run");
        let start = std::time::Instant::now();
        let full =
            FeedEngine::run_specs(&EngineConfig::new(shards), build_specs(tenants, total_ops))
                .expect("fully batched engine run");
        // Throughput of the full-batching run — the trajectory baseline
        // future scale PRs measure against (see the `stream` experiment for
        // the long-trace version).
        let ops_per_sec = full.total_ops() as f64 / start.elapsed().as_secs_f64().max(1e-9);
        let (u, w, f) = (
            unbatched.feed_gas_total(),
            write_only.feed_gas_total(),
            full.feed_gas_total(),
        );
        let saved = |to: u64| 100.0 * u.saturating_sub(to) as f64 / u.max(1) as f64;
        let _ = writeln!(
            out,
            "{tenants:<10} {shards:>7} {u:>15} {w:>15} {f:>15} {:>8.1}% {:>8.1}% {ops_per_sec:>10.0}",
            saved(w),
            saved(f)
        );
        assert!(w < u, "update batching must save gas ({tenants} tenants)");
        assert!(
            f < w,
            "read batching must save on top of update batching ({tenants} tenants)"
        );
    }
    let _ = writeln!(
        out,
        "\nunbatched = sum of independent single-feed runs on one chain; upd-batch\n\
         = one update tx per shard per block; full-batch additionally coalesces\n\
         each shard's SP deliveries into one batchDeliver tx per round; ops/sec\n\
         is the full-batch run's end-to-end throughput (wall clock)."
    );
    out
}

/// Parallel shard execution (beyond the paper): the same staging-heavy
/// fleet runs through the sequential pipelined scheduler and the parallel
/// executor (one staging worker thread per shard + deterministic merge),
/// and the wall-clock per mode is compared. The merge is contracted to be
/// byte-for-byte equivalent — the chain digests are asserted equal here —
/// so the entire difference is scheduling, not work. Speedup requires ≥ 2
/// shards *and* ≥ 2 cores: staging (policy flush, Merkle recomputation,
/// section encoding) overlaps across shards, while the chain phases stay
/// serialized on the merge thread.
pub fn multifeed_parallel() -> String {
    use grub_engine::{EngineConfig, FeedEngine, FeedSpec};
    use std::time::Instant;

    // A staging-dominated fleet: BL2 replicates every record, so each epoch
    // update carries full 4 KiB values through the DO mirror, the SP store,
    // and both Merkle trees — exactly the off-chain work the executor fans
    // out.
    let build_specs = |tenants: usize| -> Vec<FeedSpec> {
        (0..tenants)
            .map(|i| {
                FeedSpec::new(
                    format!("bulk-{i:02}"),
                    SystemConfig::new(PolicyKind::Bl2).epoch_ops(8),
                    RatioWorkload::new(format!("bulk-{i:02}-key"), 0.25)
                        .value_len(4096)
                        .seed(i as u64 + 1)
                        .generate(24),
                )
            })
            .collect()
    };
    let timed = |config: &EngineConfig, tenants: usize| {
        let engine = FeedEngine::new(config, build_specs(tenants)).expect("engine builds");
        let start = Instant::now();
        let (report, chain) = engine.run_with_chain().expect("engine runs");
        (start.elapsed(), report, chain.chain_digest())
    };

    let mut out = String::new();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(
        out,
        "## Multi-tenant engine — sequential pipeline vs parallel shard staging \
         ({cores} cores available)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>7} {:>10} {:>10} {:>9} {:>15} {:>10}",
        "tenants", "shards", "seq ms", "par ms", "speedup", "feed gas", "identical"
    );
    for (tenants, shards) in [(8usize, 1usize), (8, 2), (8, 4)] {
        let (seq_t, seq_report, seq_digest) = timed(&EngineConfig::new(shards), tenants);
        let (par_t, par_report, par_digest) = timed(&EngineConfig::new(shards).parallel(), tenants);
        assert_eq!(
            seq_digest, par_digest,
            "parallel merge must reproduce the sequential chain \
             ({tenants} tenants, {shards} shards)"
        );
        assert_eq!(seq_report.feed_gas_total(), par_report.feed_gas_total());
        let seq_ms = seq_t.as_secs_f64() * 1e3;
        let par_ms = par_t.as_secs_f64() * 1e3;
        let _ = writeln!(
            out,
            "{tenants:<10} {shards:>7} {seq_ms:>10.1} {par_ms:>10.1} {:>8.2}x {:>15} {:>10}",
            seq_ms / par_ms.max(1e-9),
            par_report.feed_gas_total(),
            "yes"
        );
    }
    let _ = writeln!(
        out,
        "\nidentical = chain digests byte-for-byte equal across modes (asserted).\n\
         Wall-clock gains come from overlapping the shards' off-chain staging on\n\
         worker threads; with 1 shard (or 1 core) the parallel mode degenerates\n\
         to the pipeline's schedule and the speedup hovers around 1.0x."
    );
    out
}

/// Streamed-scale ingestion (beyond the paper): drives a million-plus-op
/// workload *per feed* through the multi-tenant engine without ever
/// materializing a trace — every feed carries a lazy
/// [`OpSource`](grub_workload::source::OpSource) (multi-key ratio mix),
/// the chain runs with a bounded block-retention
/// window, and the digest is folded incrementally — so resident memory is
/// independent of trace length. Reports end-to-end ops/sec at two lengths
/// to show the throughput (and the trace-side footprint) does not degrade
/// with scale.
///
/// `GRUB_SMOKE=1` scales the lengths down for CI; `GRUB_STREAM_OPS=<n>`
/// pins the headline per-feed length explicitly.
pub fn stream_scale() -> String {
    use grub_engine::{EngineConfig, FeedEngine, FeedSpec};
    use grub_workload::ratio::MultiKeyRatio;
    use grub_workload::source::OpSource;
    use std::time::Instant;

    let smoke = std::env::var("GRUB_SMOKE").is_ok();
    let headline: usize = std::env::var("GRUB_STREAM_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 40_000 } else { 1_000_000 });
    let lengths = [headline / 4, headline];
    let epoch_ops = 32usize;

    // One feed per ratio class, each streaming a multi-key mix: the
    // write-heavy and read-heavy keys exercise both policy extremes while
    // the stream stays O(keys) resident.
    let mk_source = |scale: usize, seed: u64| -> Box<dyn OpSource> {
        let mix = MultiKeyRatio::new(vec![
            ("stream-hot".into(), 4.0),
            ("stream-cold".into(), 0.125),
            ("stream-warm".into(), 1.0),
        ])
        .seed(seed);
        // ops per rotation of the three lanes: (1+4) + (8+1) + (1+1) = 16.
        Box::new(mix.source(scale / 16))
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Streamed-scale ingestion — pull-based OpSource end to end\n"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>10} {:>12} {:>10} {:>16} {:>18}",
        "ops/feed", "feeds", "epochs", "wall s", "ops/sec", "in-flight ops", "materialized est"
    );
    for &per_feed in &lengths {
        let specs = vec![
            FeedSpec::from_source(
                "stream-a",
                SystemConfig::new(PolicyKind::Memoryless { k: 2 }).epoch_ops(epoch_ops),
                mk_source(per_feed, 1),
            ),
            FeedSpec::from_source(
                "stream-b",
                SystemConfig::new(PolicyKind::SelfTuning { window: 16 }).epoch_ops(epoch_ops),
                mk_source(per_feed, 2),
            ),
        ];
        let mut config = EngineConfig::new(2);
        // The scale enabler: age out old block bodies (the monitors' poll
        // cursors stay well inside the window) and lean on the running
        // digest instead of whole-chain rehashing.
        config.chain.retain_blocks = Some(256);
        let engine = FeedEngine::new(&config, specs).expect("stream engine builds");
        let start = Instant::now();
        let report = engine.run().expect("stream engine runs");
        let wall = start.elapsed();
        let total_ops = report.total_ops();
        let epochs: usize = report.tenants.iter().map(|t| t.run.epochs.len()).sum();
        // Trace-side resident bound, by construction of the pull loop: the
        // open epoch's staged ops plus the scheduler's one-op lookahead,
        // per feed — constant in the trace length.
        let in_flight = epoch_ops + 1;
        let materialized_mib = (total_ops as f64 * std::mem::size_of::<grub_workload::Op>() as f64)
            / (1024.0 * 1024.0);
        let _ = writeln!(
            out,
            "{:>12} {:>10} {:>10} {:>12.2} {:>10.0} {:>16} {:>15.1}MiB",
            total_ops / report.tenants.len(),
            report.tenants.len(),
            epochs,
            wall.as_secs_f64(),
            total_ops as f64 / wall.as_secs_f64().max(1e-9),
            in_flight,
            materialized_mib,
        );
        assert_eq!(report.failed_delivers(), 0);
    }
    let _ = writeln!(
        out,
        "\nin-flight ops = open epoch ({epoch_ops}) + 1-op scheduler lookahead, per feed —\n\
         constant across lengths because feeds pull from lazy OpSources; the\n\
         'materialized est' column is what a Vec<Op> trace of that length would\n\
         hold resident *before* per-op key/value heap allocations. The chain\n\
         retains a 256-block body window and folds its digest incrementally,\n\
         so whole-run memory is bounded too."
    );
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take_while(|(i, _)| *i < max - 1)
                .last()
                .map(|(i, c)| i + c.len_utf8())
                .unwrap_or(0)]
        )
    }
}
