//! The experiment harness: one regenerator per table and figure of the
//! paper's evaluation.
//!
//! Every function in [`experiments`] reproduces one published artifact —
//! same workload shape, same parameter sweep, same comparison set — and
//! renders the rows/series the paper reports. Absolute Gas differs from the
//! paper's Ropsten measurements where unstated batching parameters differ;
//! `EXPERIMENTS.md` records paper-vs-measured for each artifact.
//!
//! Run everything with `cargo bench --bench experiments`, or a single one
//! with `cargo run --release -p grub-bench --bin experiment -- fig3`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod experiments;

/// One experiment entry: `(name, paper artifact, function)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// Registry of all experiments.
pub fn registry() -> Vec<Experiment> {
    use experiments as e;
    vec![
        (
            "table1",
            "Table 1 + Figure 2 (oracle workload)",
            e::table1_fig2 as fn() -> String,
        ),
        ("table2", "Table 2 (gas schedule)", e::table2),
        ("fig3", "Figure 3 (static baselines vs ratio)", e::fig3),
        (
            "fig5",
            "Figure 5 + Table 3 (oracle trace, SCoin)",
            e::fig5_table3,
        ),
        ("fig6", "Figure 6 (BtcRelay trace)", e::fig6),
        ("fig7", "Figure 7 (GRuB vs baselines vs ratio)", e::fig7),
        (
            "fig8a",
            "Figure 8a (memoryless vs memorizing vs optimal)",
            e::fig8a,
        ),
        ("fig8b", "Figure 8b (record size sweep)", e::fig8b),
        (
            "fig9",
            "Figure 9 + Table 4 row 1 (YCSB A,B)",
            e::fig9_table4_ab,
        ),
        ("fig11", "Figure 11 (parameter K sweep)", e::fig11),
        (
            "fig12",
            "Figure 12 (threshold ratio vs record/data size)",
            e::fig12,
        ),
        (
            "fig13",
            "Figure 13 + Table 4 rows 2-3 (YCSB A,E / A,F)",
            e::fig13_table4_ae_af,
        ),
        ("fig14", "Figure 14 (K sweep under YCSB)", e::fig14),
        (
            "fig15",
            "Figure 15 + Table 5 (adaptive K policies)",
            e::fig15_table5,
        ),
        (
            "table6",
            "Table 6 + Figure 16 (BtcRelay workload)",
            e::table6_fig16,
        ),
        (
            "competitive",
            "Theorems A.1/A.2 (empirical competitiveness)",
            e::competitive,
        ),
        (
            "ablation",
            "Ablation (extension): self-tuning K vs static/adaptive",
            e::ablation_self_tuning,
        ),
        (
            "multifeed",
            "Multi-tenant engine (extension): cross-feed epoch batching",
            e::multifeed_batching,
        ),
        (
            "parallel",
            "Multi-tenant engine (extension): parallel shard staging vs sequential pipeline",
            e::multifeed_parallel,
        ),
        (
            "stream",
            "Streamed-scale ingestion (extension): 1M+-op lazy OpSource runs, ops/sec",
            e::stream_scale,
        ),
    ]
}
