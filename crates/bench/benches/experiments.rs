//! `cargo bench --bench experiments` — regenerates every table and figure
//! of the paper's evaluation and prints them in order.
//!
//! Set `GRUB_EXPERIMENTS=fig3,fig7` to run a subset.

fn main() {
    let filter: Option<Vec<String>> = std::env::var("GRUB_EXPERIMENTS")
        .ok()
        .map(|s| s.split(',').map(|p| p.trim().to_owned()).collect());
    let start_all = std::time::Instant::now();
    for (name, title, f) in grub_bench::registry() {
        if let Some(only) = &filter {
            if !only.iter().any(|o| o == name) {
                continue;
            }
        }
        let start = std::time::Instant::now();
        println!("==== {name}: {title} ====\n");
        println!("{}", f());
        println!("---- ({name} took {:.1?})\n", start.elapsed());
    }
    println!("all experiments done in {:.1?}", start_all.elapsed());
}
