//! Criterion micro-benchmarks for the substrates: hashing, the Merkle ADS,
//! the LSM store, the decision policies, and an end-to-end epoch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use grub_core::policy::PolicyKind;
use grub_core::policy::{Memoryless, ReplicationPolicy};
use grub_core::system::{GrubSystem, SystemConfig};
use grub_crypto::sha256;
use grub_merkle::{record_value_hash, MerkleKv, ProofKey, ReplState};
use grub_store::{Db, Options};
use grub_workload::ratio::RatioWorkload;

fn bench_crypto(c: &mut Criterion) {
    let data_1k = vec![0xabu8; 1024];
    c.bench_function("sha256/1KiB", |b| {
        b.iter(|| sha256(std::hint::black_box(&data_1k)))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let records: Vec<(ProofKey, _)> = (0..65_536u32)
        .map(|i| {
            (
                ProofKey::new(ReplState::NotReplicated, format!("k{i:08}").into_bytes()),
                record_value_hash(&i.to_le_bytes()),
            )
        })
        .collect();
    let tree = MerkleKv::from_sorted(records);
    let target = ProofKey::new(ReplState::NotReplicated, b"k00032000".to_vec());
    c.bench_function("merkle/prove-64k", |b| {
        b.iter(|| tree.prove(std::hint::black_box(&target)).expect("present"))
    });
    let proof = tree.prove(&target).expect("present");
    let root = tree.root();
    let vhash = record_value_hash(&32000u32.to_le_bytes());
    c.bench_function("merkle/verify-64k", |b| {
        b.iter(|| proof.verify(std::hint::black_box(&root), &target, &vhash))
    });
    c.bench_function("merkle/insert-64k", |b| {
        b.iter_batched(
            || tree.clone(),
            |mut t| {
                t.insert(
                    ProofKey::new(ReplState::NotReplicated, b"k00032000x".to_vec()),
                    vhash,
                )
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("grub-bench-db-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut db = Db::open(&dir, Options::default()).expect("open");
    for i in 0..10_000u32 {
        db.put(format!("key{i:08}").into_bytes(), vec![0u8; 128])
            .expect("put");
    }
    db.flush().expect("flush");
    c.bench_function("store/get-10k", |b| {
        b.iter(|| db.get(std::hint::black_box(b"key00005000")).expect("get"))
    });
    c.bench_function("store/scan-100", |b| {
        b.iter(|| {
            db.scan(Some(b"key00005000"), Some(b"key00005100"))
                .expect("scan")
        })
    });
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_policy(c: &mut Criterion) {
    c.bench_function("policy/memoryless-1k-ops", |b| {
        b.iter_batched(
            || Memoryless::new(2),
            |mut p| {
                for i in 0..1000u32 {
                    let key = format!("k{}", i % 64);
                    if i % 3 == 0 {
                        p.on_write(&key);
                    } else {
                        p.on_read(&key);
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_system(c: &mut Criterion) {
    let trace = RatioWorkload::new("k", 4.0).generate(32);
    c.bench_function("system/ratio4-160ops", |b| {
        b.iter(|| {
            GrubSystem::run_trace(
                std::hint::black_box(&trace),
                &SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
            )
            .expect("run")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_crypto, bench_merkle, bench_store, bench_policy, bench_system
}
criterion_main!(benches);
