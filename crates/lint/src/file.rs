//! Per-file analysis context: the lexed token stream plus the two overlays
//! every rule needs — which token ranges are test-only code, and which
//! lines carry `grub-lint: allow(...)` suppressions.

use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Rule};
use crate::lexer::{lex, Comment, Lexed, Tok};

/// A parsed `// grub-lint: allow(<rule>[, <rule>...]) — <justification>`
/// directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// 1-based line the comment starts on. The suppression covers
    /// diagnostics on this line and the next (trailing-comment and
    /// comment-above placement respectively).
    pub line: u32,
    /// The rules it suppresses.
    pub rules: Vec<Rule>,
}

/// One source file ready for rule passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (used in diagnostics).
    pub rel_path: PathBuf,
    /// The workspace crate this file belongs to (`"chain"`, `"core"`, ...),
    /// or `""` for files outside `crates/` (the umbrella `src/`, `tests/`,
    /// `examples/`).
    pub crate_name: String,
    /// Token stream + comment channel.
    pub lexed: Lexed,
    /// Half-open line ranges `[start, end]` (inclusive) of test-only code:
    /// items annotated `#[cfg(test)]` or `#[test]`.
    pub test_line_ranges: Vec<(u32, u32)>,
    /// Parsed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// Diagnostics for malformed suppression comments, reported alongside
    /// rule findings.
    pub suppression_diags: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lexes `source` and computes the overlays.
    pub fn parse(rel_path: &Path, crate_name: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let test_line_ranges = test_line_ranges(&lexed.toks);
        let (suppressions, suppression_diags) = parse_suppressions(rel_path, &lexed.comments);
        SourceFile {
            rel_path: rel_path.to_path_buf(),
            crate_name: crate_name.to_string(),
            lexed,
            test_line_ranges,
            suppressions,
            suppression_diags,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_line_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether a diagnostic of `rule` on `line` is covered by a
    /// suppression (same line for trailing comments, previous line for a
    /// comment of its own above the code).
    pub fn suppressed(&self, rule: Rule, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| (s.line == line || s.line + 1 == line) && s.rules.contains(&rule))
    }

    /// Emits `diag` unless the line is test code or suppressed.
    pub fn push_checked(&self, out: &mut Vec<Diagnostic>, rule: Rule, line: u32, message: String) {
        if self.in_test_code(line) || self.suppressed(rule, line) {
            return;
        }
        out.push(Diagnostic {
            rule,
            path: self.rel_path.clone(),
            line,
            message,
        });
    }
}

/// Finds line ranges of items annotated `#[cfg(test)]` or `#[test]`.
///
/// Works on the token stream: after such an attribute, any further
/// attributes are skipped, then the item extends to its matching closing
/// brace (brace matching on tokens is immune to braces in strings or
/// comments, which the lexer already removed), or to the first `;` for
/// brace-less items like `#[cfg(test)] use …;`.
fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct("#") {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line;
        // `#[` or `#![` — inner attributes can't mark items, skip those.
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct("!") {
            i = j + 1;
            continue;
        }
        if j >= toks.len() || !toks[j].is_punct("[") {
            i += 1;
            continue;
        }
        // Collect the attribute body up to the matching `]`.
        let mut depth = 1i32;
        j += 1;
        let body_start = j;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
            }
            j += 1;
        }
        let body = &toks[body_start..j.saturating_sub(1)];
        let is_test_attr = match body.first() {
            Some(t) if t.is_ident("test") => body.len() == 1,
            Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
            _ => false,
        };
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further outer attributes between this one and the item.
        let mut k = j;
        while k < toks.len() && toks[k].is_punct("#") {
            k += 1;
            if k < toks.len() && toks[k].is_punct("[") {
                let mut d = 1i32;
                k += 1;
                while k < toks.len() && d > 0 {
                    if toks[k].is_punct("[") {
                        d += 1;
                    } else if toks[k].is_punct("]") {
                        d -= 1;
                    }
                    k += 1;
                }
            }
        }
        // The item runs to its matching `}` (or a `;` seen before any `{`).
        let mut brace_depth = 0i32;
        let mut end_line = attr_start_line;
        while k < toks.len() {
            let t = &toks[k];
            end_line = t.line;
            if t.is_punct("{") {
                brace_depth += 1;
            } else if t.is_punct("}") {
                brace_depth -= 1;
                if brace_depth == 0 {
                    k += 1;
                    break;
                }
            } else if t.is_punct(";") && brace_depth == 0 {
                k += 1;
                break;
            }
            k += 1;
        }
        ranges.push((attr_start_line, end_line));
        i = k;
    }
    ranges
}

/// Parses `grub-lint: allow(...)` directives out of the comment channel.
///
/// Grammar: `grub-lint: allow(<rule>[, <rule>...])` followed by a non-empty
/// justification (an optional dash separator, then prose). A directive with
/// an unknown rule name or no justification is itself a violation — it is
/// reported and does **not** suppress anything, so a typo can't silently
/// disable a check.
///
/// Only plain `//` comments carry directives: doc comments (`///`, `//!`)
/// and block comments are prose *about* the syntax, not uses of it.
fn parse_suppressions(
    rel_path: &Path,
    comments: &[Comment],
) -> (Vec<Suppression>, Vec<Diagnostic>) {
    const MARKER: &str = "grub-lint: allow(";
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/*") {
            continue;
        }
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let after = &c.text[pos + MARKER.len()..];
        let bad = |msg: String, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                rule: Rule::Suppression,
                path: rel_path.to_path_buf(),
                line: c.line,
                message: msg,
            });
        };
        let Some(close) = after.find(')') else {
            bad(
                "unclosed `grub-lint: allow(` directive".to_string(),
                &mut diags,
            );
            continue;
        };
        let mut rules = Vec::new();
        let mut ok = true;
        for name in after[..close].split(',') {
            let name = name.trim();
            match Rule::parse(name) {
                Some(rule) => rules.push(rule),
                None => {
                    bad(
                        format!(
                            "unknown rule {:?} in suppression (expected one of: {})",
                            name,
                            Rule::ALL.map(Rule::name).join(", ")
                        ),
                        &mut diags,
                    );
                    ok = false;
                }
            }
        }
        // Justification: anything substantive after the `)`, dashes and
        // whitespace stripped.
        let justification = after[close + 1..]
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || ch == '-' || ch == '—' || ch == '–' || ch == ':'
            })
            .trim();
        if justification.is_empty() {
            bad(
                "suppression without a justification (write `// grub-lint: allow(<rule>) — <why \
                 this is sound>`)"
                    .to_string(),
                &mut diags,
            );
            ok = false;
        }
        if ok && !rules.is_empty() {
            sups.push(Suppression {
                line: c.line,
                rules,
            });
        }
    }
    (sups, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(Path::new("x.rs"), "core", src)
    }

    #[test]
    fn cfg_test_mod_is_test_code() {
        let f = parse(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { panic!() }\n}\n",
        );
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(5));
        assert!(f.in_test_code(6));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semi() {
        let f = parse("#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n");
        assert!(f.in_test_code(2));
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let f = parse("#[cfg(feature = \"x\")]\nfn lib() { body(); }\n");
        assert!(!f.in_test_code(2));
    }

    #[test]
    fn test_attr_with_extra_attrs() {
        let f = parse("#[test]\n#[ignore]\nfn t() {\n    body();\n}\n");
        assert!(f.in_test_code(4));
    }

    #[test]
    fn suppression_parses_and_covers_next_line() {
        let f = parse("// grub-lint: allow(panic) — invariant: len checked above\nfoo();\n");
        assert!(f.suppression_diags.is_empty());
        assert!(f.suppressed(Rule::Panic, 1));
        assert!(f.suppressed(Rule::Panic, 2));
        assert!(!f.suppressed(Rule::Panic, 3));
        assert!(!f.suppressed(Rule::Determinism, 2));
    }

    #[test]
    fn multi_rule_suppression() {
        let f = parse("// grub-lint: allow(panic, determinism) — harness-only path\n");
        assert!(f.suppressed(Rule::Panic, 2));
        assert!(f.suppressed(Rule::Determinism, 2));
    }

    #[test]
    fn unjustified_suppression_is_reported_and_inert() {
        let f = parse("// grub-lint: allow(panic)\nfoo();\n");
        assert_eq!(f.suppression_diags.len(), 1);
        assert!(!f.suppressed(Rule::Panic, 2));
    }

    #[test]
    fn unknown_rule_is_reported_and_inert() {
        let f = parse("// grub-lint: allow(speed) — because\n");
        assert_eq!(f.suppression_diags.len(), 1);
        assert!(f.suppressions.is_empty());
    }
}
