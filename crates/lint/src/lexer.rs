//! A lightweight Rust lexer — just enough token structure for the lint
//! rules, with none of `syn`'s weight (the workspace builds fully offline,
//! so the analyzer vendors nothing and parses nothing it doesn't need).
//!
//! The scanner splits a source file into two channels:
//!
//! * **code tokens** — identifiers, literals, and punctuation, each tagged
//!   with its 1-based line. String/char literals are opaque single tokens,
//!   so rule patterns can never fire on text *inside* a literal.
//! * **comments** — line, block, and doc comments, kept separately so the
//!   suppression parser can read `grub-lint: allow(...)` directives and so
//!   rule patterns never fire on commented-out code or doc examples.
//!
//! The lexer is intentionally forgiving: an unterminated literal or comment
//! consumes to end of file rather than erroring, because the lint must keep
//! walking the rest of the workspace even over a file that `rustc` would
//! reject.

/// What kind of code token a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `self`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`) — distinguished from char literals.
    Lifetime,
    /// A numeric literal (`42`, `0x1f`, `1.5e3`, `21_000u64`).
    Num,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`), kept
    /// opaque; `text` is the raw source slice including quotes.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, longest-match (`::`, `->`, `+=`, `..=`, `+`, ...).
    Punct,
}

/// One code token: kind, raw text, and the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// One comment (line, block, or doc), with the 1-based line it starts on
/// and its full raw text (markers included).
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line number of the comment's first character.
    pub line: u32,
    /// Raw comment text, `//`/`/*` markers included.
    pub text: String,
}

/// A lexed source file: the code-token stream plus the comment channel.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first so `->` never lexes as `-`,
/// `>` and `..=` never as `..`, `=`.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into code tokens and comments. Infallible by design: see the
/// module docs for how malformed input degrades.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    // Tracks newlines inside a consumed span so `line` stays accurate.
    let count_lines = |chars: &[char]| chars.iter().filter(|&&c| c == '\n').count() as u32;

    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (incl. `///` and `//!` doc comments).
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: bytes[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1u32;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: bytes[start..i].iter().collect(),
            });
            continue;
        }
        // Raw strings and byte strings: r"…", r#"…"#, br#"…"#, b"…".
        if c == 'r' || c == 'b' {
            if let Some(len) = raw_or_byte_string_len(&bytes[i..]) {
                let text: String = bytes[i..i + len].iter().collect();
                let start_line = line;
                line += count_lines(&bytes[i..i + len]);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
                i += len;
                continue;
            }
            // Byte char b'x'.
            if c == 'b' && bytes.get(i + 1) == Some(&'\'') {
                let len = 1 + char_literal_len(&bytes[i + 1..]);
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: bytes[i..i + len].iter().collect(),
                    line,
                });
                i += len;
                continue;
            }
        }
        // Plain string.
        if c == '"' {
            let len = string_literal_len(&bytes[i..]);
            let text: String = bytes[i..i + len].iter().collect();
            let start_line = line;
            line += count_lines(&bytes[i..i + len]);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i += len;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            if is_lifetime(&bytes[i..]) {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: bytes[i..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            let len = char_literal_len(&bytes[i..]);
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: bytes[i..i + len].iter().collect(),
                line,
            });
            i += len;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: bytes[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Number (floats consume an interior `.` only when a digit follows,
        // so `1..10` and `x.0` still lex as separate tokens).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < bytes.len() {
                let float_dot = bytes[j] == '.'
                    && bytes.get(j + 1).is_some_and(|d| d.is_ascii_digit())
                    && !bytes[i..j].contains(&'.');
                if is_ident_continue(bytes[j]) || float_dot {
                    j += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: bytes[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Punctuation, longest match first.
        let mut matched = false;
        for p in MULTI_PUNCT {
            let pc: Vec<char> = p.chars().collect();
            if bytes[i..].starts_with(&pc) {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).to_string(),
                    line,
                });
                i += pc.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// `'a` vs `'a'`: a lifetime is a quote followed by an identifier that is
/// *not* closed by another quote.
fn is_lifetime(rest: &[char]) -> bool {
    if rest.len() < 2 || !is_ident_start(rest[1]) {
        return false;
    }
    let mut j = 2;
    while j < rest.len() && is_ident_continue(rest[j]) {
        j += 1;
    }
    rest.get(j) != Some(&'\'')
}

/// Length of a char literal starting at a `'`, escapes handled; consumes to
/// end of input when unterminated.
fn char_literal_len(rest: &[char]) -> usize {
    let mut j = 1;
    while j < rest.len() {
        match rest[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    rest.len()
}

/// Length of a `"…"` literal starting at the quote, escapes handled.
fn string_literal_len(rest: &[char]) -> usize {
    let mut j = 1;
    while j < rest.len() {
        match rest[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    rest.len()
}

/// Detects `r"…"`, `r#"…"#` (any number of `#`), `b"…"`, `br#"…"#` at the
/// start of `rest`; returns the literal's length when present.
fn raw_or_byte_string_len(rest: &[char]) -> Option<usize> {
    let mut j = 0;
    if rest.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = rest.get(j) == Some(&'r');
    if raw {
        j += 1;
        let mut hashes = 0usize;
        while rest.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if rest.get(j) != Some(&'"') {
            return None;
        }
        j += 1;
        // Scan for `"` followed by `hashes` hashes; no escapes in raw strings.
        while j < rest.len() {
            if rest[j] == '"' {
                let mut k = 0;
                while k < hashes && rest.get(j + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    return Some(j + 1 + hashes);
                }
            }
            j += 1;
        }
        return Some(rest.len());
    }
    // b"…" (non-raw byte string).
    if j == 1 && rest.first() == Some(&'b') && rest.get(1) == Some(&'"') {
        return Some(1 + string_literal_len(&rest[1..]));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn f(x: u64) -> u64 { x += 1; x }");
        assert!(toks.contains(&(TokKind::Punct, "->".into())));
        assert!(toks.contains(&(TokKind::Punct, "+=".into())));
        assert!(toks.contains(&(TokKind::Ident, "u64".into())));
    }

    #[test]
    fn strings_are_opaque() {
        let lexed = lex(r#"let s = "HashMap.iter() // not a comment";"#);
        assert_eq!(lexed.comments.len(), 0);
        assert!(!lexed.toks.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lexed = lex(r##"let s = r#"quote " inside"#; let t = 1;"##);
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
        assert!(lexed.toks.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn comments_split_off() {
        let lexed = lex("// top\nlet x = 1; /* mid\nspan */ let y = 2; /// doc\n");
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        // Block comment spanned a newline: `y` is on line 3.
        let y = lexed.toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let c2 = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
        assert!(toks.contains(&(TokKind::Char, "'\\n'".into())));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("let a = 1.5e3; let b = 0..10; let c = x.0 + 21_000u64;");
        assert!(toks.contains(&(TokKind::Num, "1.5e3".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Num, "21_000u64".into())));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still outer */ let x = 1;");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn unterminated_string_consumes_to_eof() {
        let lexed = lex("let s = \"never closed\nmore text");
        assert_eq!(
            lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }
}
