//! The per-file rule passes: determinism, gas-safety, and panic-audit.
//!
//! All three work on the lexed token stream from [`crate::lexer`] — no type
//! information, so the hash-iteration and gas-arithmetic checks are
//! *name-based over-approximations*: they track identifiers declared with a
//! `HashMap`/`HashSet` type (or initialized from one) and identifiers whose
//! names mark them as raw gas amounts. A false positive is always
//! suppressible with a justified `// grub-lint: allow(<rule>) — <why>`;
//! the deliberate bias is toward flagging, because a missed nondeterminism
//! or a silent gas under-charge costs far more than an allow comment.

use crate::diag::{Diagnostic, Rule};
use crate::file::SourceFile;
use crate::lexer::{Tok, TokKind};

/// Methods whose call on a hash collection observes its nondeterministic
/// order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Identifiers that read a wall clock, the thread id, or an unseeded
/// entropy source — all banned in digest-feeding code.
const BANNED_IDENTS: &[(&str, &str)] = &[
    ("SystemTime", "wall-clock time is not reproducible"),
    ("ThreadId", "thread identity varies across runs"),
    ("thread_rng", "thread-local RNG is unseeded"),
    ("from_entropy", "OS entropy is unseeded"),
    ("OsRng", "OS entropy is unseeded"),
];

/// Rule 1 — **determinism**. In digest-feeding crates, flags:
///
/// * iteration over `HashMap`/`HashSet` values (`.iter()`, `.keys()`,
///   `.values()`, `.drain()`, `.into_iter()`, or a `for` loop over the
///   collection itself) — std's hash order is randomized per process, so
///   any digest-feeding path that observes it diverges across runs;
/// * `Instant::now()` / `SystemTime` (wall clocks), thread ids, and
///   unseeded randomness (`thread_rng`, `from_entropy`, `OsRng`).
pub fn determinism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    // Banned idents and `Instant::now`.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant"
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            file.push_checked(
                out,
                Rule::Determinism,
                t.line,
                "`Instant::now()` in a digest-feeding crate — wall clocks are excluded from the \
                 determinism table; move the timing to a reporting module or justify an allow"
                    .to_string(),
            );
            continue;
        }
        if t.text == "thread"
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("current"))
        {
            file.push_checked(
                out,
                Rule::Determinism,
                t.line,
                "`thread::current()` in a digest-feeding crate — thread identity varies across \
                 runs"
                    .to_string(),
            );
            continue;
        }
        if let Some((_, why)) = BANNED_IDENTS.iter().find(|(name, _)| t.text == *name) {
            file.push_checked(
                out,
                Rule::Determinism,
                t.line,
                format!("`{}` in a digest-feeding crate — {why}", t.text),
            );
        }
    }
    // Hash-collection iteration.
    let hash_names = collect_hash_names(toks);
    if hash_names.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !hash_names.iter().any(|n| n == &t.text) {
            continue;
        }
        // `name.iter()` / `name.drain()` / ... (receiver may be `self.name`;
        // the name token is the same either way).
        if toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|m| HASH_ITER_METHODS.iter().any(|h| m.is_ident(h)))
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            let method = &toks[i + 2].text;
            file.push_checked(
                out,
                Rule::Determinism,
                t.line,
                format!(
                    "`{}.{method}()` iterates a HashMap/HashSet in a digest-feeding crate — hash \
                     order is nondeterministic; use a BTree collection, sort first, or justify \
                     an allow",
                    t.text
                ),
            );
        }
        // `for pat in [&[mut]] [self.]name {` — iteration of the collection
        // itself. Chained calls (`for k in name.keys()`) are caught above.
        if toks.get(i + 1).is_some_and(|n| n.is_punct("{")) && preceded_by_for_in(toks, i) {
            file.push_checked(
                out,
                Rule::Determinism,
                t.line,
                format!(
                    "`for … in {}` iterates a HashMap/HashSet in a digest-feeding crate — hash \
                     order is nondeterministic; use a BTree collection, sort first, or justify \
                     an allow",
                    t.text
                ),
            );
        }
    }
}

/// Whether the identifier at `i` is the subject of a `for … in` header:
/// walking left over `&`/`mut`/`self`/`.`, the nearest anchor is an `in`
/// that itself follows a `for` on the same statement.
fn preceded_by_for_in(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let p = &toks[j - 1];
        if p.is_punct("&") || p.is_punct(".") || p.is_ident("mut") || p.is_ident("self") {
            j -= 1;
            continue;
        }
        if !p.is_ident("in") {
            return false;
        }
        // Scan further left for the `for`, over the (brace-free) pattern.
        let mut k = j - 1;
        let mut guard = 0;
        while k > 0 && guard < 32 {
            if toks[k - 1].is_ident("for") {
                return true;
            }
            if toks[k - 1].is_punct("{") || toks[k - 1].is_punct(";") {
                return false;
            }
            k -= 1;
            guard += 1;
        }
        return false;
    }
    false
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type or
/// initialized from one:
///
/// * `name: [path::]Hash{Map,Set}<…>` — struct fields, `fn` params, and
///   annotated `let`s;
/// * `let [mut] name = … Hash{Map,Set} …;` — constructor or turbofish
///   initializers (`HashMap::new()`, `.collect::<HashSet<_>>()`).
///
/// Names are file-scoped: a per-file flat namespace, which over-approximates
/// (a shadowing non-hash local with the same name also matches) but never
/// crosses files.
fn collect_hash_names(toks: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut push = |name: &str| {
        if !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `name: …HashMap<…>` — scan the type slot (stop at any token that
        // ends it at angle-depth 0).
        if toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
            let mut depth = 0i32;
            for tok in toks.iter().skip(i + 2).take(16) {
                if tok.is_punct("<") {
                    depth += 1;
                } else if tok.is_punct(">") {
                    depth -= 1;
                } else if depth == 0
                    && (tok.is_punct(",")
                        || tok.is_punct(";")
                        || tok.is_punct("=")
                        || tok.is_punct(")")
                        || tok.is_punct("{")
                        || tok.is_punct("}"))
                {
                    break;
                }
                if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
                    push(&t.text);
                    break;
                }
            }
        }
        // `let [mut] name = … HashMap/HashSet … ;`
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            // Only simple `let name = …` initializers (an annotated let was
            // already handled by the `name: …` arm above).
            if !toks.get(j + 1).is_some_and(|n| n.is_punct("=")) {
                continue;
            }
            for tok in toks.iter().skip(j + 2) {
                if tok.is_punct(";") {
                    break;
                }
                if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
                    push(&name.text);
                    break;
                }
            }
        }
    }
    names
}

/// Rule 2 — **gas-safety**. In digest-feeding crates, flags bare
/// `+`/`-`/`+=`/`-=` where either operand is a *raw gas amount* — an
/// identifier whose name contains `gas` (tuple-field and call projections
/// like `total_gas.0` / `feed_gas()` included). Raw-u64 gas arithmetic must
/// go through `checked_add_gas`/`checked_sub_gas` so release builds can
/// never silently wrap an accounting total. The `Gas` newtype itself is
/// exempt: its operators already route through the checked helpers.
pub fn gas_safety(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        let op = t.text.as_str();
        if !matches!(op, "+" | "-" | "+=" | "-=") {
            continue;
        }
        let left = left_operand_ident(toks, i);
        let right = right_operand_ident(toks, i);
        let culprit = match (left, right) {
            (Some(l), _) if is_gas_ident(l) => l,
            (_, Some(r)) if is_gas_ident(r) => r,
            _ => continue,
        };
        file.push_checked(
            out,
            Rule::GasSafety,
            t.line,
            format!(
                "bare `{op}` on gas amount `{culprit}` — raw gas arithmetic must use \
                 `checked_add_gas`/`checked_sub_gas` (or the checked `Gas` operators) so a \
                 release build can never silently under-charge"
            ),
        );
    }
}

/// A raw-gas identifier: contains `gas` case-insensitively, but is not the
/// `Gas` newtype itself (whose operators are already checked).
fn is_gas_ident(name: &str) -> bool {
    name != "Gas" && name.to_ascii_lowercase().contains("gas")
}

/// The identifier anchoring the expression just left of the operator at
/// `op`: handles `name`, `name.0`, and `name(…)` projections.
fn left_operand_ident(toks: &[Tok], op: usize) -> Option<&str> {
    if op == 0 {
        return None;
    }
    let mut j = op - 1;
    // `name(…) + x`: walk back over the call parens to the callee.
    if toks[j].is_punct(")") {
        let mut depth = 1i32;
        while j > 0 && depth > 0 {
            j -= 1;
            if toks[j].is_punct(")") {
                depth += 1;
            } else if toks[j].is_punct("(") {
                depth -= 1;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    // `name.0 + x`: step over the tuple index to the name.
    if toks[j].kind == TokKind::Num && j >= 2 && toks[j - 1].is_punct(".") {
        j -= 2;
    }
    (toks[j].kind == TokKind::Ident).then(|| toks[j].text.as_str())
}

/// The identifier anchoring the expression just right of the operator:
/// skips `&`, `mut`, and opening parens.
fn right_operand_ident(toks: &[Tok], op: usize) -> Option<&str> {
    let mut j = op + 1;
    while j < toks.len()
        && (toks[j].is_punct("&") || toks[j].is_punct("(") || toks[j].is_ident("mut"))
    {
        j += 1;
    }
    let t = toks.get(j)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    // `x + self.feed_gas`: resolve the field, not the receiver.
    if t.is_ident("self") && toks.get(j + 1).is_some_and(|n| n.is_punct(".")) {
        let f = toks.get(j + 2)?;
        return (f.kind == TokKind::Ident).then_some(f.text.as_str());
    }
    Some(t.text.as_str())
}

/// Rule 3 — **panic-audit**. Flags `.unwrap()`, `.expect(…)`, and `panic!`
/// in non-test library code: the house style is typed errors
/// (`GrubError`/`StoreError`/…), so every residual panic site must either
/// be converted or carry a justified allow stating the invariant that makes
/// it unreachable.
pub fn panic_audit(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        if (t.text == "unwrap" || t.text == "expect")
            && called
            && i > 0
            && toks[i - 1].is_punct(".")
        {
            file.push_checked(
                out,
                Rule::Panic,
                t.line,
                format!(
                    "`.{}()` in non-test library code — return a typed error, or add \
                     `// grub-lint: allow(panic) — <invariant>` if this genuinely cannot fail",
                    t.text
                ),
            );
        }
        if t.text == "panic" && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            file.push_checked(
                out,
                Rule::Panic,
                t.line,
                "`panic!` in non-test library code — return a typed error, or add \
                 `// grub-lint: allow(panic) — <invariant>` if this is a documented contract \
                 violation"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn run(rule: fn(&SourceFile, &mut Vec<Diagnostic>), src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(Path::new("crates/core/src/x.rs"), "core", src);
        let mut out = Vec::new();
        rule(&f, &mut out);
        out
    }

    #[test]
    fn hashmap_field_iteration_flagged() {
        let diags = run(
            determinism,
            "struct S { states: HashMap<String, u64> }\n\
             impl S { fn f(&self) { for (k, v) in self.states.iter() { use_it(k, v); } } }\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn for_loop_over_hashset_flagged() {
        let diags = run(
            determinism,
            "fn f() { let mut seen = std::collections::HashSet::new(); seen.insert(1);\n\
             for x in &seen { use_it(x); } }\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn keyed_lookup_not_flagged() {
        let diags = run(
            determinism,
            "struct S { states: HashMap<String, u64> }\n\
             impl S { fn f(&self) -> Option<&u64> { self.states.get(\"k\") } }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn vec_iteration_not_flagged() {
        let diags = run(
            determinism,
            "fn f(v: Vec<u64>) -> u64 { v.iter().sum::<u64>() + v.into_iter().count() as u64 }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn instant_now_flagged_but_elapsed_isnt() {
        let diags = run(determinism, "fn f() { let t = Instant::now(); }\n");
        assert_eq!(diags.len(), 1);
        let diags = run(
            determinism,
            "fn f(t: Instant) -> Duration { t.elapsed() }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn suppressed_iteration_passes() {
        let diags = run(
            determinism,
            "struct S { seen: HashSet<u64> }\nimpl S { fn f(&mut self) {\n\
             // grub-lint: allow(determinism) — drained into a sort below\n\
             let mut v: Vec<u64> = self.seen.drain().collect(); v.sort(); } }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bare_gas_arithmetic_flagged() {
        let diags = run(
            gas_safety,
            "fn f(a_gas: u64, b: u64) -> u64 { a_gas + b }\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        let diags = run(
            gas_safety,
            "fn f(a: u64, feed_gas: u64) -> u64 { a - feed_gas }\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        let diags = run(gas_safety, "fn f(m: &mut M) { m.total_gas += 1; }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn gas_projections_flagged() {
        let diags = run(gas_safety, "fn f(g: G) -> u64 { g.feed_gas.0 + 1 }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        let diags = run(gas_safety, "fn f(r: &R) -> u64 { r.feed_gas() + 1 }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn checked_helpers_and_gas_newtype_pass() {
        let diags = run(
            gas_safety,
            "fn f(a_gas: u64, b_gas: u64) -> u64 { checked_add_gas(a_gas, b_gas) }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        // The Gas newtype's own operators are the checked path.
        let diags = run(gas_safety, "fn f() -> Gas { Gas(1) + Gas(2) }\n");
        assert!(diags.is_empty(), "{diags:?}");
        let diags = run(gas_safety, "fn f(a: u64, b: u64) -> u64 { a + b }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unwrap_expect_panic_flagged() {
        let diags = run(panic_audit, "fn f(x: Option<u64>) -> u64 { x.unwrap() }\n");
        assert_eq!(diags.len(), 1);
        let diags = run(
            panic_audit,
            "fn f(x: Option<u64>) -> u64 { x.expect(\"set\") }\n",
        );
        assert_eq!(diags.len(), 1);
        let diags = run(panic_audit, "fn f() { panic!(\"boom\"); }\n");
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn unwrap_variants_and_tests_pass() {
        let diags = run(
            panic_audit,
            "fn f(x: Option<u64>) -> u64 { x.unwrap_or(0) + x.unwrap_or_default() }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        let diags = run(
            panic_audit,
            "#[cfg(test)]\nmod tests {\n fn t() { None::<u64>.unwrap(); panic!(); }\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn doc_comment_examples_pass() {
        let diags = run(
            panic_audit,
            "/// ```\n/// x.unwrap();\n/// ```\nfn f() -> Result<(), E> { Ok(()) }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
