//! `grub-lint` — workspace static analysis for the contracts every GRuB
//! guarantee bottoms out in.
//!
//! The reproduction's claims — the 2-competitive bound, parallel ==
//! sequential, reorg digest-transparency, crash recovery — all reduce to
//! one contract: **runs are byte-for-byte deterministic and gas accounting
//! never silently under-charges**. The test suites enforce that
//! dynamically, workload by workload; this crate enforces it *statically*,
//! before a trace ever runs, so a stray `HashMap` iteration in a new policy
//! can't pass every existing test and still break determinism on the next
//! workload.
//!
//! Four rules (see [`diag::Rule`]):
//!
//! | rule | scope | what it bans |
//! |------|-------|--------------|
//! | `determinism` | digest-feeding crates | `HashMap`/`HashSet` iteration, wall clocks, thread ids, unseeded randomness |
//! | `gas-safety` | digest-feeding crates | bare `+`/`-`/`+=`/`-=` on raw gas amounts (use `checked_add_gas`/`checked_sub_gas`) |
//! | `panic` | library crates | `unwrap()`/`expect()`/`panic!` outside test code (typed errors are the house style) |
//! | `registry-sync` | whole tree | `GRUB_*` knob reads vs ARCHITECTURE.md's knob table, `FaultPoint` variants vs live hook sites — both directions |
//!
//! Any finding is suppressible, one site at a time, with a justified
//! comment on the same line or the line above:
//!
//! ```text
//! // grub-lint: allow(determinism) — drained into a sort two lines down
//! ```
//!
//! A suppression without a justification, or naming an unknown rule, is
//! itself a violation — a typo can't silently disable a check.
//!
//! The analyzer is deliberately `syn`-free and offline: a hand-rolled
//! lexer ([`lexer`]) plus token-pattern rules ([`rules`], [`registry`]),
//! same vendoring discipline as the rest of the workspace. Run it with
//! `cargo run --release -p grub-lint` (add `--json` for machine-readable
//! output); CI fails on any violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod file;
pub mod lexer;
pub mod registry;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::{Diagnostic, Rule};
use file::SourceFile;

/// Crates whose output feeds `chain_digest` / `state_digest`: the
/// determinism and gas-safety rules sweep exactly these.
pub const DIGEST_CRATES: &[&str] = &[
    "chain", "core", "engine", "gas", "merkle", "store", "workload",
];

/// Crates swept by the panic audit: all library crates. `bench` is exempt
/// (a measurement harness that must die loudly on a broken setup, not
/// thread `Result`s through report tables) — the exemption is scoped here,
/// in one place, rather than as dozens of inline allows.
pub const PANIC_AUDIT_CRATES: &[&str] = &[
    "apps", "chain", "core", "crypto", "engine", "fault", "gas", "lint", "merkle", "pool", "store",
    "workload",
];

/// Reporting modules exempt from the determinism rule: they carry the
/// wall-clock fields that ARCHITECTURE.md's determinism table explicitly
/// excludes from digests (`EpochMetrics::wall_clock_*`, per-epoch report
/// rows). Everything else in a digest-feeding crate needs an inline allow.
pub const DETERMINISM_EXEMPT_FILES: &[&str] =
    &["crates/core/src/metrics.rs", "crates/engine/src/report.rs"];

/// Name of the document holding the knob table.
pub const DOC_PATH: &str = "ARCHITECTURE.md";

/// The outcome of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All unsuppressed violations, sorted by (path, line, rule).
    pub diags: Vec<Diagnostic>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the workspace is clean.
    pub fn clean(&self) -> bool {
        self.diags.is_empty()
    }
}

/// Lints one source snippet with one per-file rule — the entry point the
/// fixture corpus uses. `rel_path`/`crate_name` position the snippet the
/// way the workspace walk would (e.g. `crates/core/src/x.rs` / `core`).
pub fn lint_source(rule: Rule, crate_name: &str, rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let f = SourceFile::parse(Path::new(rel_path), crate_name, source);
    let mut out = Vec::new();
    match rule {
        Rule::Determinism => rules::determinism(&f, &mut out),
        Rule::GasSafety => rules::gas_safety(&f, &mut out),
        Rule::Panic => rules::panic_audit(&f, &mut out),
        Rule::Suppression => {}
        Rule::RegistrySync => {}
    }
    out.extend(f.suppression_diags.iter().cloned());
    out
}

/// Walks the workspace at `root` and runs every rule at its scope.
///
/// File groups:
/// * `crates/<name>/**.rs` — per-crate library code (rules 1–3 apply to
///   `crates/<name>/src/**` by crate scope; benches and bins feed only the
///   registry scan);
/// * `src/`, `tests/`, `examples/`, `vendor/` — registry scan only
///   (`tests/lint_fixtures/` is skipped by the walker: fixtures violate on
///   purpose).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files: Vec<SourceFile> = Vec::new();
    for krate in walk::subdirs(root, "crates")? {
        for rel in rust_files(root, &format!("crates/{krate}"))? {
            files.push(parse_file(root, &rel, &krate)?);
        }
    }
    for dir in ["src", "tests", "examples", "vendor"] {
        for rel in rust_files(root, dir)? {
            files.push(parse_file(root, &rel, "")?);
        }
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    for f in &files {
        let rel = f.rel_path.to_string_lossy().replace('\\', "/");
        let in_crate_src = rel.starts_with(&format!("crates/{}/src/", f.crate_name));
        if in_crate_src && DIGEST_CRATES.contains(&f.crate_name.as_str()) {
            if !DETERMINISM_EXEMPT_FILES.contains(&rel.as_str()) {
                rules::determinism(f, &mut diags);
            }
            rules::gas_safety(f, &mut diags);
        }
        if in_crate_src && PANIC_AUDIT_CRATES.contains(&f.crate_name.as_str()) {
            rules::panic_audit(f, &mut diags);
        }
        diags.extend(f.suppression_diags.iter().cloned());
    }

    // Registry sync: the doc side, every file as the scan set, and
    // `crates/*/src` minus the fault crate itself as hook-site candidates.
    let doc_text = fs::read_to_string(root.join(DOC_PATH)).ok();
    let doc = doc_text.as_deref().map(registry::parse_doc);
    let all: Vec<&SourceFile> = files.iter().collect();
    let fault_file = files
        .iter()
        .find(|f| f.crate_name == "fault" && f.rel_path.to_string_lossy().ends_with("src/lib.rs"));
    let hook_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| {
            f.crate_name != "fault"
                && !f.crate_name.is_empty()
                && f.rel_path
                    .to_string_lossy()
                    .replace('\\', "/")
                    .starts_with(&format!("crates/{}/src/", f.crate_name))
        })
        .collect();
    registry::registry_sync(
        doc.as_ref(),
        DOC_PATH,
        &all,
        fault_file,
        &hook_files,
        &mut diags,
    );

    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(LintReport {
        diags,
        files_scanned: files.len(),
    })
}

fn rust_files(root: &Path, rel: &str) -> io::Result<Vec<PathBuf>> {
    walk::rust_files_under(root, rel)
}

fn parse_file(root: &Path, rel: &Path, crate_name: &str) -> io::Result<SourceFile> {
    let source = fs::read_to_string(root.join(rel))?;
    Ok(SourceFile::parse(rel, crate_name, &source))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_crates_match_architecture_table() {
        // The determinism sweep and the panic sweep must stay supersets of
        // nothing and subsets of the workspace: every listed crate name is
        // kebab-free and nonempty.
        for name in DIGEST_CRATES.iter().chain(PANIC_AUDIT_CRATES) {
            assert!(!name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase()));
        }
        // bench is exempt from the panic audit by design.
        assert!(!PANIC_AUDIT_CRATES.contains(&"bench"));
    }

    #[test]
    fn lint_source_routes_rules() {
        let bad = "fn f(x: Option<u64>) -> u64 { x.unwrap() }";
        assert_eq!(
            lint_source(Rule::Panic, "core", "crates/core/src/x.rs", bad).len(),
            1
        );
        assert!(lint_source(Rule::Determinism, "core", "crates/core/src/x.rs", bad).is_empty());
    }
}
