//! Diagnostics: what a rule reports, and how it renders.

use std::fmt;
use std::path::PathBuf;

/// Identifies which rule produced a diagnostic. The wire names (used in
/// `grub-lint: allow(<rule>)` comments and `--json` output) are the
/// kebab-case strings from [`Rule::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No unordered-collection iteration, wall clocks, thread ids, or
    /// unseeded randomness in digest-feeding crates.
    Determinism,
    /// No bare `+`/`-`/`+=`/`-=` on raw gas amounts outside the checked
    /// helpers (`checked_add_gas`/`checked_sub_gas`).
    GasSafety,
    /// No `unwrap()`/`expect()`/`panic!` in non-test library code.
    Panic,
    /// `GRUB_*` knobs and `FaultPoint`s must match their registries
    /// (ARCHITECTURE.md's knob table; live hook sites).
    RegistrySync,
    /// A malformed `grub-lint: allow(...)` comment (unknown rule name or
    /// missing justification).
    Suppression,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::Determinism,
        Rule::GasSafety,
        Rule::Panic,
        Rule::RegistrySync,
        Rule::Suppression,
    ];

    /// The rule's wire name, as used in suppression comments and `--json`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::GasSafety => "gas-safety",
            Rule::Panic => "panic",
            Rule::RegistrySync => "registry-sync",
            Rule::Suppression => "suppression",
        }
    }

    /// Parses a wire name back into a rule.
    pub fn parse(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation: rule, location, and a human-readable message.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Path of the offending file, relative to the workspace root.
    pub path: PathBuf,
    /// 1-based line of the violation (0 for file-level findings).
    pub line: u32,
    /// What went wrong and, where possible, what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// Renders the `file:line: [rule] message` form used by the CLI.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }

    /// Renders the diagnostic as a JSON object (no external serializer:
    /// paths and messages are escaped by hand).
    pub fn render_json(&self) -> String {
        format!(
            r#"{{"rule":"{}","path":"{}","line":{},"message":"{}"}}"#,
            self.rule,
            json_escape(&self.path.display().to_string()),
            self.line,
            json_escape(&self.message)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::parse(rule.name()), Some(rule));
        }
        assert_eq!(Rule::parse("nope"), None);
    }

    #[test]
    fn json_escaping() {
        let d = Diagnostic {
            rule: Rule::Panic,
            path: PathBuf::from("a/b.rs"),
            line: 3,
            message: "quote \" and \\ and\nnewline".into(),
        };
        let json = d.render_json();
        assert!(json.contains(r#""rule":"panic""#));
        assert!(json.contains(r#"quote \" and \\ and\nnewline"#));
    }
}
