//! The `grub-lint` binary: walks the workspace, runs every rule, prints
//! diagnostics, and exits nonzero on violations (so CI can gate on it).
//!
//! ```text
//! grub-lint [--root <path>] [--json] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use grub_lint::diag::Rule;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => {
                    eprintln!("grub-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: grub-lint [--root <path>] [--json] [--list-rules]");
                println!();
                println!("Statically checks the workspace's determinism, gas-safety,");
                println!("panic-audit, and registry-sync contracts. Suppress a finding with");
                println!("`// grub-lint: allow(<rule>) — <justification>` on or above its line.");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("grub-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = match grub_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("grub-lint: failed to walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        let body: Vec<String> = report.diags.iter().map(|d| d.render_json()).collect();
        println!(
            "{{\"files_scanned\":{},\"violations\":[{}]}}",
            report.files_scanned,
            body.join(",")
        );
    } else {
        for d in &report.diags {
            println!("{}", d.render());
        }
        if report.clean() {
            println!(
                "grub-lint: clean — {} files scanned, 0 violations",
                report.files_scanned
            );
        } else {
            println!(
                "grub-lint: {} violation(s) across {} files scanned",
                report.diags.len(),
                report.files_scanned
            );
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
