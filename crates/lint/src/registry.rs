//! Rule 4 — **registry-sync**: the workspace's two out-of-band registries
//! must match the code, in both directions, or the build fails.
//!
//! * **Knobs**: every `GRUB_*` environment variable read anywhere in the
//!   tree (`std::env::var`/`var_os` with a literal name) must have a row in
//!   ARCHITECTURE.md's knob table, and every row must correspond to a live
//!   read. A knob that drifts out of the table is invisible to operators; a
//!   row whose knob is gone documents a lie.
//! * **Fault points**: every [`FaultPoint`] variant declared in `grub-fault`
//!   must have a live hook site (`FaultPoint::<Variant>` in another crate's
//!   non-test library code), and its kebab-case knob name must appear in
//!   ARCHITECTURE.md. A variant without a hook is a crash point that can
//!   never fire — recovery coverage silently shrinks.
//!
//! [`FaultPoint`]: https://docs.rs/grub-fault

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::diag::{Diagnostic, Rule};
use crate::file::SourceFile;
use crate::lexer::TokKind;

/// The documentation side of the registries: parsed out of ARCHITECTURE.md.
#[derive(Debug, Default)]
pub struct DocRegistry {
    /// Knob-table rows: knob name → 1-based line of its row.
    pub knobs: BTreeMap<String, u32>,
    /// Every backtick-quoted token in the document (used to check fault
    /// point names are documented).
    pub backticked: BTreeSet<String>,
}

/// Parses ARCHITECTURE.md: knob-table rows are lines whose first cell is a
/// backticked `GRUB_*` name (`| \`GRUB_X\` | ...`).
pub fn parse_doc(text: &str) -> DocRegistry {
    let mut doc = DocRegistry::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        // Collect backticked tokens.
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else {
                break;
            };
            doc.backticked.insert(after[..close].to_string());
            rest = &after[close + 1..];
        }
        // Knob-table rows.
        let trimmed = line.trim_start();
        if let Some(cell) = trimmed.strip_prefix("| `") {
            if let Some(name) = cell.split('`').next() {
                if is_knob_name(name) {
                    doc.knobs.entry(name.to_string()).or_insert(lineno);
                }
            }
        }
    }
    doc
}

fn is_knob_name(s: &str) -> bool {
    s.starts_with("GRUB_")
        && s.len() > 5
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// A `GRUB_*` env read found in code.
#[derive(Debug)]
pub struct KnobRead {
    /// The knob name.
    pub knob: String,
    /// File it is read in.
    pub path: PathBuf,
    /// 1-based line of the read.
    pub line: u32,
}

/// Finds `GRUB_*` knob uses in a file: any string literal whose *entire*
/// content is a knob name. This catches direct `env::var("GRUB_X")` reads
/// and reads routed through helpers (`env_ms("GRUB_BENCH_WARMUP_MS", …)`,
/// `plan_from_env`'s parser) alike, while substrings in error messages
/// (`"GRUB_FAULT_POINT: bad hit count"`) never match.
pub fn knob_reads(file: &SourceFile) -> Vec<KnobRead> {
    let mut out = Vec::new();
    for t in &file.lexed.toks {
        if t.kind != TokKind::Str {
            continue;
        }
        let name = t
            .text
            .trim_start_matches(['b', 'r', '#'])
            .trim_matches(['"', '#']);
        if is_knob_name(name) {
            out.push(KnobRead {
                knob: name.to_string(),
                path: file.rel_path.clone(),
                line: t.line,
            });
        }
    }
    out
}

/// A `FaultPoint` variant declared in `grub-fault`.
#[derive(Debug)]
pub struct FaultVariant {
    /// The variant identifier (`MidWalAppend`).
    pub name: String,
    /// Its kebab-case knob/display name (`mid-wal-append`).
    pub kebab: String,
    /// 1-based declaration line in the fault crate's source.
    pub line: u32,
}

/// Extracts the variants of `enum FaultPoint { … }` from the fault crate's
/// lexed source. Token-level brace matching; variants are bare identifiers
/// at depth 1 followed by `,` or the closing brace.
pub fn fault_variants(file: &SourceFile) -> Vec<FaultVariant> {
    let toks = &file.lexed.toks;
    let mut out = Vec::new();
    let Some(start) = toks
        .windows(3)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident("FaultPoint") && w[2].is_punct("{"))
    else {
        return out;
    };
    let mut depth = 1i32;
    let mut i = start + 3;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
        } else if depth == 1
            && t.kind == TokKind::Ident
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct(",") || n.is_punct("}"))
        {
            out.push(FaultVariant {
                name: t.text.clone(),
                kebab: kebab_case(&t.text),
                line: t.line,
            });
        }
        i += 1;
    }
    out
}

/// `MidWalAppend` → `mid-wal-append`.
fn kebab_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// References to `FaultPoint::<Variant>` in a file's non-test code.
pub fn fault_refs(file: &SourceFile) -> Vec<String> {
    let toks = &file.lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("FaultPoint")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && !file.in_test_code(t.line)
        {
            out.push(toks[i + 2].text.clone());
        }
    }
    out
}

/// Runs the whole registry-sync rule.
///
/// * `doc` — parsed ARCHITECTURE.md (`None` when the file is absent, which
///   makes every code-side knob a violation: the table is mandatory).
/// * `all_files` — every lexed file in the scan set (library code, tests,
///   examples, benches, vendor stubs).
/// * `fault_file`/`hook_files` — the fault crate's source and the library
///   files eligible to carry hook sites.
pub fn registry_sync(
    doc: Option<&DocRegistry>,
    doc_path: &str,
    all_files: &[&SourceFile],
    fault_file: Option<&SourceFile>,
    hook_files: &[&SourceFile],
    out: &mut Vec<Diagnostic>,
) {
    let empty = DocRegistry::default();
    let doc_reg = doc.unwrap_or(&empty);

    // Knobs: code → doc.
    let mut reads: Vec<(KnobRead, &SourceFile)> = Vec::new();
    for file in all_files {
        for read in knob_reads(file) {
            reads.push((read, file));
        }
    }
    reads.sort_by(|a, b| (&a.0.knob, &a.0.path, a.0.line).cmp(&(&b.0.knob, &b.0.path, b.0.line)));
    let mut flagged: BTreeSet<String> = BTreeSet::new();
    for (read, file) in &reads {
        if doc_reg.knobs.contains_key(&read.knob) || flagged.contains(&read.knob) {
            continue;
        }
        flagged.insert(read.knob.clone());
        file.push_checked(
            out,
            Rule::RegistrySync,
            read.line,
            format!(
                "`{}` is read here but has no row in {doc_path}'s knob table — document the \
                 knob (or remove the read)",
                read.knob
            ),
        );
    }
    // Knobs: doc → code.
    let read_names: BTreeSet<&str> = reads.iter().map(|(r, _)| r.knob.as_str()).collect();
    for (knob, line) in &doc_reg.knobs {
        if !read_names.contains(knob.as_str()) {
            out.push(Diagnostic {
                rule: Rule::RegistrySync,
                path: PathBuf::from(doc_path),
                line: *line,
                message: format!(
                    "knob table documents `{knob}` but nothing in the tree reads it — delete \
                     the row (or wire the knob back up)"
                ),
            });
        }
    }

    // Fault points.
    let Some(fault_file) = fault_file else {
        return;
    };
    let variants = fault_variants(fault_file);
    let mut hooked: BTreeSet<String> = BTreeSet::new();
    for file in hook_files {
        for v in fault_refs(file) {
            hooked.insert(v);
        }
    }
    for v in &variants {
        if !hooked.contains(&v.name) {
            fault_file.push_checked(
                out,
                Rule::RegistrySync,
                v.line,
                format!(
                    "`FaultPoint::{}` has no live hook site (`FaultPoint::{}` never appears in \
                     another crate's non-test code) — thread the probe through the pipeline or \
                     retire the point",
                    v.name, v.name
                ),
            );
        }
        if !doc_reg.backticked.contains(&v.kebab) {
            fault_file.push_checked(
                out,
                Rule::RegistrySync,
                v.line,
                format!(
                    "crash point `{}` (`FaultPoint::{}`) is not documented in {doc_path} — add \
                     it to the `GRUB_FAULT_POINT` row's point list",
                    v.kebab, v.name
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn doc_knob_rows_parse() {
        let doc = parse_doc(
            "prose `GRUB_NOT_A_ROW` here\n\
             | `GRUB_SMOKE` | scope | detail |\n\
             | `GRUB_REORG` | scope | `seed:period:depth` |\n",
        );
        assert_eq!(doc.knobs.len(), 2);
        assert_eq!(doc.knobs["GRUB_SMOKE"], 2);
        assert!(doc.backticked.contains("GRUB_NOT_A_ROW"));
    }

    #[test]
    fn knob_reads_found() {
        let f = SourceFile::parse(
            Path::new("x.rs"),
            "",
            "fn f() { let a = std::env::var(\"GRUB_SMOKE\").ok(); \
             let b = helper(\"GRUB_REORG\", 7); let c = err(\"GRUB_SMOKE: bad value\"); }",
        );
        let reads = knob_reads(&f);
        let names: Vec<&str> = reads.iter().map(|r| r.knob.as_str()).collect();
        assert_eq!(names, ["GRUB_SMOKE", "GRUB_REORG"]);
    }

    #[test]
    fn fault_enum_parses_with_kebab_names() {
        let f = SourceFile::parse(
            Path::new("f.rs"),
            "fault",
            "pub enum FaultPoint { PostStage, MidWalAppend }\n\
             impl FaultPoint { pub const ALL: [FaultPoint; 2] = \
             [FaultPoint::PostStage, FaultPoint::MidWalAppend]; }",
        );
        let vars = fault_variants(&f);
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].name, "PostStage");
        assert_eq!(vars[0].kebab, "post-stage");
        assert_eq!(vars[1].kebab, "mid-wal-append");
    }

    #[test]
    fn fault_refs_skip_test_code() {
        let f = SourceFile::parse(
            Path::new("e.rs"),
            "engine",
            "fn hook() { check(FaultPoint::PostStage); }\n\
             #[cfg(test)]\nmod tests { fn t() { check(FaultPoint::MidWalAppend); } }",
        );
        assert_eq!(fault_refs(&f), ["PostStage"]);
    }
}
