//! Deterministic workspace file walker.
//!
//! Directory entries are visited in sorted order so the diagnostic stream
//! is byte-stable across machines — the same discipline the rest of the
//! workspace applies to everything that feeds a digest.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names the walker never descends into: build output, the lint
/// fixture corpus (deliberately violating code), and VCS internals.
const SKIP_DIRS: &[&str] = &["target", "lint_fixtures", ".git"];

/// Recursively collects every `*.rs` under `root/rel`, returned as paths
/// relative to `root`, sorted. A missing `rel` yields an empty list (mini
/// fixture workspaces omit most directories).
pub fn rust_files_under(root: &Path, rel: &str) -> io::Result<Vec<PathBuf>> {
    let dir = root.join(rel);
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    collect(root, &dir, &mut out)?;
    out.sort();
    Ok(out)
}

/// Lists immediate subdirectory names of `root/rel`, sorted; empty when
/// `rel` is missing.
pub fn subdirs(root: &Path, rel: &str) -> io::Result<Vec<String>> {
    let dir = root.join(rel);
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut names = Vec::new();
    for entry in fs::read_dir(&dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            if let Some(name) = entry.file_name().to_str() {
                if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                    names.push(name.to_string());
                }
            }
        }
    }
    names.sort();
    Ok(names)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}
