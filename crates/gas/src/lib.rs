//! Ethereum's Gas cost model as used by the GRuB paper (Table 2), plus a
//! metering facility with per-layer attribution.
//!
//! The paper evaluates every design by the Gas it burns, using this schedule
//! (X = number of 32-byte words):
//!
//! | Operation              | Gas cost                          |
//! |------------------------|-----------------------------------|
//! | Transaction            | `21000 + 2176·X` (X < 1000)       |
//! | Storage write (insert) | `20000·X`                         |
//! | Storage write (update) | `5000·X`                          |
//! | Storage read           | `200·X`                           |
//! | Hash computation       | `30 + 6·X`                        |
//!
//! Table 2 omits event logging; `request` events are metered with the Yellow
//! Paper's LOG schedule (`375 + 375·topics + 8·bytes`), which is small
//! relative to the dominant costs above (documented in `DESIGN.md` §3).
//!
//! # Examples
//!
//! ```
//! use grub_gas::{GasSchedule, Layer, GasMeter};
//!
//! let s = GasSchedule::default();
//! assert_eq!(s.tx_cost_words(1), 21000 + 2176);
//!
//! let mut meter = GasMeter::new();
//! meter.charge_tx(Layer::Feed, 32); // a 32-byte payload = 1 word
//! assert_eq!(meter.total(), 23176);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An amount of Gas.
///
/// A newtype over `u64` so Gas quantities cannot be confused with word or
/// byte counts.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct Gas(pub u64);

impl Gas {
    /// Zero gas.
    pub const ZERO: Gas = Gas(0);

    /// The raw amount.
    pub fn amount(self) -> u64 {
        self.0
    }

    /// Saturating subtraction, useful when computing savings.
    pub fn saturating_sub(self, rhs: Gas) -> Gas {
        Gas(self.0.saturating_sub(rhs.0))
    }

    /// Gas per operation as a float, for reporting series.
    pub fn per_op(self, ops: usize) -> f64 {
        if ops == 0 {
            0.0
        } else {
            self.0 as f64 / ops as f64
        }
    }
}

/// Adds two Gas amounts: loud on overflow in debug builds, saturating in
/// release. Wrapping would silently *under-charge* (a wrapped counter reads
/// lower than the true total); saturation keeps any release-mode error
/// one-sided and conservative. Quota/meter accounting throughout the
/// workspace goes through this helper.
pub fn checked_add_gas(a: u64, b: u64) -> u64 {
    let sum = a.checked_add(b);
    debug_assert!(sum.is_some(), "gas amount overflow: {a} + {b}");
    sum.unwrap_or(u64::MAX)
}

/// Subtracts two Gas amounts: loud on underflow in debug builds, clamping
/// to zero in release. An underflow here means snapshots were differenced
/// across a meter reset (or in the wrong order) — a harness bug that must
/// not masquerade as a huge wrapped charge.
pub fn checked_sub_gas(a: u64, b: u64) -> u64 {
    let diff = a.checked_sub(b);
    debug_assert!(diff.is_some(), "gas amount underflow: {a} - {b}");
    diff.unwrap_or(0)
}

impl Add for Gas {
    type Output = Gas;
    fn add(self, rhs: Gas) -> Gas {
        Gas(checked_add_gas(self.0, rhs.0))
    }
}

impl AddAssign for Gas {
    fn add_assign(&mut self, rhs: Gas) {
        self.0 = checked_add_gas(self.0, rhs.0);
    }
}

impl Sub for Gas {
    type Output = Gas;
    fn sub(self, rhs: Gas) -> Gas {
        Gas(checked_sub_gas(self.0, rhs.0))
    }
}

impl std::iter::Sum for Gas {
    fn sum<I: Iterator<Item = Gas>>(iter: I) -> Gas {
        iter.fold(Gas::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Gas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} gas", self.0)
    }
}

/// Number of 32-byte words needed to hold `bytes` bytes (rounded up).
///
/// # Examples
///
/// ```
/// assert_eq!(grub_gas::words_for_bytes(0), 0);
/// assert_eq!(grub_gas::words_for_bytes(1), 1);
/// assert_eq!(grub_gas::words_for_bytes(32), 1);
/// assert_eq!(grub_gas::words_for_bytes(33), 2);
/// ```
pub fn words_for_bytes(bytes: usize) -> u64 {
    bytes.div_ceil(32) as u64
}

/// The Gas cost schedule (paper Table 2 + Yellow-Paper LOG costs).
///
/// All experiments use [`GasSchedule::default`]; the fields are public so
/// ablations can explore alternative fee markets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GasSchedule {
    /// Base cost of any transaction (`21000`).
    pub tx_base: u64,
    /// Per-word cost of transaction payload (`2176`, i.e. 68 gas/byte).
    pub tx_per_word: u64,
    /// Per-word cost of inserting a fresh storage slot (`20000`).
    pub storage_insert_per_word: u64,
    /// Per-word cost of overwriting an existing storage slot (`5000`).
    pub storage_update_per_word: u64,
    /// Per-word cost of reading storage (`200`).
    pub storage_read_per_word: u64,
    /// Base cost of a hash computation (`30`).
    pub hash_base: u64,
    /// Per-word cost of hashing (`6`).
    pub hash_per_word: u64,
    /// Base cost of emitting a log/event (`375`).
    pub log_base: u64,
    /// Per-topic cost of a log (`375`).
    pub log_per_topic: u64,
    /// Per-byte cost of log payload (`8`).
    pub log_per_byte: u64,
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            tx_base: 21_000,
            tx_per_word: 2_176,
            storage_insert_per_word: 20_000,
            storage_update_per_word: 5_000,
            storage_read_per_word: 200,
            hash_base: 30,
            hash_per_word: 6,
            log_base: 375,
            log_per_topic: 375,
            log_per_byte: 8,
        }
    }
}

impl GasSchedule {
    /// `Ctx(X) = 21000 + 2176·X` — cost of a transaction with `words`
    /// payload words.
    ///
    /// Table 2 states the formula for `X < 1000`; per-byte calldata pricing
    /// on real chains stays linear beyond that, so larger payloads (e.g. a
    /// 100-record scan delivery) extrapolate linearly here.
    pub fn tx_cost_words(&self, words: u64) -> u64 {
        self.tx_base + self.tx_per_word * words
    }

    /// Transaction cost for a payload of `bytes` bytes.
    pub fn tx_cost_bytes(&self, bytes: usize) -> u64 {
        self.tx_cost_words(words_for_bytes(bytes))
    }

    /// `Cinsert(X) = 20000·X`.
    pub fn storage_insert(&self, words: u64) -> u64 {
        self.storage_insert_per_word * words
    }

    /// `Cupdate(X) = 5000·X`.
    pub fn storage_update(&self, words: u64) -> u64 {
        self.storage_update_per_word * words
    }

    /// `Cread(X) = 200·X`.
    pub fn storage_read(&self, words: u64) -> u64 {
        self.storage_read_per_word * words
    }

    /// `Chash(X) = 30 + 6·X`.
    pub fn hash_cost(&self, words: u64) -> u64 {
        self.hash_base + self.hash_per_word * words
    }

    /// Yellow-Paper LOG cost: `375 + 375·topics + 8·bytes`.
    pub fn log_cost(&self, topics: u64, bytes: usize) -> u64 {
        self.log_base + self.log_per_topic * topics + self.log_per_byte * bytes as u64
    }

    /// The unit Gas to move one byte from off-chain onto the chain by
    /// transaction payload — the paper's `C_read_off` (≈ 68 gas/byte).
    pub fn read_off_per_byte(&self) -> f64 {
        self.tx_per_word as f64 / 32.0
    }

    /// The unit Gas to update one byte of on-chain storage — the paper's
    /// `C_update` per byte (≈ 156 gas/byte).
    pub fn update_per_byte(&self) -> f64 {
        self.storage_update_per_word as f64 / 32.0
    }

    /// The paper's Equation 1: `K = C_update / C_read_off`, the threshold
    /// that makes the memoryless algorithm 2-competitive.
    ///
    /// With the default schedule this is `5000 / 2176 ≈ 2.3`, which the paper
    /// rounds to `K = 2` in the BtcRelay experiment.
    pub fn two_competitive_k(&self) -> f64 {
        self.update_per_byte() / self.read_off_per_byte()
    }
}

/// Which layer of the stack a Gas charge belongs to.
///
/// The paper reports "Gas at the data-feed layer" separately from "Gas of the
/// end application" (Table 3); the meter keeps both. End users' transaction
/// envelopes (the 21000+payload cost of a query transaction submitted by a
/// DU's customer) are paid by neither the feed nor the application operator,
/// so they land in [`Layer::User`] and are excluded from the paper's metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// GRuB itself: the storage-manager contract, `update`/`deliver`
    /// transactions, proofs, events.
    Feed,
    /// The data-consumer application (e.g. SCoinIssuer callback logic, ERC-20
    /// bookkeeping).
    Application,
    /// End-user transaction envelopes, tracked but excluded from the paper's
    /// feed/application Gas metrics.
    User,
}

/// Fine-grained cost source, for breakdown reporting and ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostKind {
    /// Transaction base + payload cost.
    Transaction,
    /// Fresh storage-slot insertion.
    StorageInsert,
    /// Storage-slot overwrite.
    StorageUpdate,
    /// Storage read.
    StorageRead,
    /// Hash computation (proof verification).
    Hash,
    /// Event/log emission.
    Log,
}

/// The neutral gas-price multiplier: schedule costs pass through unscaled.
pub const BASE_PRICE_PERMILLE: u64 = 1000;

/// A fixed 64-bit mixer (SplitMix64 finalizer) used to derive deterministic
/// pseudo-random streams from a `(seed, index)` pair without any RNG state.
/// The fee process and the chain's reorg process both draw from it, so a
/// replayed run reproduces every "random" draw exactly.
pub fn seeded_mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shape of the seeded per-block gas-price process.
///
/// All regimes are *pure functions of block height*: re-mining a block at the
/// same height (e.g. when replaying the canonical branch after a reorg)
/// reproduces the same price, so fee volatility never breaks determinism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeeRegime {
    /// A square wave alternating between `low` and `high` every `period`
    /// blocks (seeded phase).
    Step {
        /// Blocks per half-cycle.
        period: u64,
        /// Price (permille of the base schedule) in the cheap half.
        low: u64,
        /// Price (permille) in the expensive half.
        high: u64,
    },
    /// A mostly-flat `base` price with short spikes to `peak`: every `period`
    /// blocks, `width` consecutive blocks price at `peak` (seeded phase).
    Spike {
        /// Blocks between spike onsets.
        period: u64,
        /// Spike duration in blocks.
        width: u64,
        /// Off-spike price (permille).
        base: u64,
        /// In-spike price (permille).
        peak: u64,
    },
    /// Bounded seeded noise that reverts to `base`: each block's price is
    /// `base` plus the average of a small window of seeded per-height draws
    /// in `[-max_dev, +max_dev]`, so excursions decay back to the mean.
    MeanReverting {
        /// The long-run mean price (permille).
        base: u64,
        /// Maximum deviation (permille) of a single draw from the mean.
        max_dev: u64,
    },
}

/// A seeded, deterministic gas-price schedule: the chain evaluates it at
/// every block height and scales all schedule costs by the resulting
/// multiplier (in permille of the flat Table-2 prices).
///
/// # Examples
///
/// ```
/// use grub_gas::FeeProcess;
///
/// let fee = FeeProcess::spike(7);
/// // Pure function of height: the same block always prices the same.
/// assert_eq!(fee.price_permille(42), fee.price_permille(42));
/// assert!(fee.price_permille(42) >= 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeeProcess {
    /// The regime shaping the price path.
    pub regime: FeeRegime,
    /// Seed fixing the regime's phase/noise; same seed → same price path.
    pub seed: u64,
}

impl FeeProcess {
    /// A step regime with moderate amplitude (0.7× / 1.6× the base price).
    pub fn step(seed: u64) -> Self {
        FeeProcess {
            regime: FeeRegime::Step {
                period: 8,
                low: 700,
                high: 1600,
            },
            seed,
        }
    }

    /// A spike regime: flat 0.9× with short 5× spikes.
    pub fn spike(seed: u64) -> Self {
        FeeProcess {
            regime: FeeRegime::Spike {
                period: 16,
                width: 3,
                base: 900,
                peak: 5000,
            },
            seed,
        }
    }

    /// A mean-reverting regime around the base price (±0.4×).
    pub fn mean_reverting(seed: u64) -> Self {
        FeeProcess {
            regime: FeeRegime::MeanReverting {
                base: 1000,
                max_dev: 400,
            },
            seed,
        }
    }

    /// Parses an env-knob spec: `step`, `spike`, or `revert` (aliases
    /// `mean-revert`, `mean-reverting`), each optionally suffixed with
    /// `:<seed>` (default seed 7). `flat`, `0`, and the empty string parse
    /// to `None` ("no fee process"); unknown regimes are an error naming
    /// the offending spec.
    pub fn parse(spec: &str) -> Result<Option<Self>, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "0" || spec.eq_ignore_ascii_case("flat") {
            return Ok(None);
        }
        let (regime, seed) = match spec.split_once(':') {
            Some((r, s)) => {
                let seed = s
                    .parse::<u64>()
                    .map_err(|_| format!("bad fee-schedule seed in {spec:?}"))?;
                (r, seed)
            }
            None => (spec, 7),
        };
        match regime.to_ascii_lowercase().as_str() {
            "step" => Ok(Some(Self::step(seed))),
            "spike" => Ok(Some(Self::spike(seed))),
            "revert" | "mean-revert" | "mean-reverting" => Ok(Some(Self::mean_reverting(seed))),
            other => Err(format!("unknown fee-schedule regime {other:?}")),
        }
    }

    /// The gas-price multiplier (permille of the base schedule) at `height`.
    /// Pure in `(self, height)`; always at least 1.
    pub fn price_permille(&self, height: u64) -> u64 {
        let price = match self.regime {
            FeeRegime::Step { period, low, high } => {
                let period = period.max(1);
                let phase = seeded_mix(self.seed, 0) % 2;
                if (height / period + phase).is_multiple_of(2) {
                    low
                } else {
                    high
                }
            }
            FeeRegime::Spike {
                period,
                width,
                base,
                peak,
            } => {
                let period = period.max(1);
                let offset = seeded_mix(self.seed, 1) % period;
                if height.wrapping_add(offset) % period < width.min(period) {
                    peak
                } else {
                    base
                }
            }
            FeeRegime::MeanReverting { base, max_dev } => {
                let span = 2 * max_dev + 1;
                const WINDOW: u64 = 4;
                let mut acc: i64 = 0;
                for lag in 0..WINDOW {
                    let draw = seeded_mix(self.seed, height.wrapping_sub(lag)) % span;
                    acc += draw as i64 - max_dev as i64;
                }
                let dev = acc / WINDOW as i64;
                (base as i64 + dev).max(1) as u64
            }
        };
        price.max(1)
    }
}

/// Accumulates Gas charges with layer and kind attribution.
///
/// Every charge is scaled by the meter's current gas price (permille of the
/// flat schedule, default [`BASE_PRICE_PERMILLE`] = no-op), which the chain
/// sets per block from its [`FeeProcess`].
///
/// # Examples
///
/// ```
/// use grub_gas::{GasMeter, Layer, CostKind, Gas};
///
/// let mut m = GasMeter::new();
/// m.charge(Layer::Feed, CostKind::StorageRead, 200);
/// m.charge(Layer::Application, CostKind::StorageUpdate, 5000);
/// assert_eq!(m.layer_total(Layer::Feed), Gas(200));
/// assert_eq!(m.total(), 5200);
/// ```
#[derive(Clone, Debug)]
pub struct GasMeter {
    schedule: GasSchedule,
    by_layer: [u64; 3],
    by_kind: [[u64; 6]; 3],
    price_permille: u64,
}

impl Default for GasMeter {
    fn default() -> Self {
        Self::new()
    }
}

fn layer_index(layer: Layer) -> usize {
    match layer {
        Layer::Feed => 0,
        Layer::Application => 1,
        Layer::User => 2,
    }
}

impl GasMeter {
    /// Creates a meter with the default schedule.
    pub fn new() -> Self {
        Self::with_schedule(GasSchedule::default())
    }

    /// Creates a meter with a custom schedule.
    pub fn with_schedule(schedule: GasSchedule) -> Self {
        GasMeter {
            schedule,
            by_layer: [0; 3],
            by_kind: [[0; 6]; 3],
            price_permille: BASE_PRICE_PERMILLE,
        }
    }

    /// The schedule this meter charges against.
    pub fn schedule(&self) -> &GasSchedule {
        &self.schedule
    }

    /// Sets the gas-price multiplier (permille of the flat schedule) applied
    /// to subsequent charges. Clamped to at least 1 — a zero price would
    /// make every operation free and break the savings-ladder invariants.
    pub fn set_price_permille(&mut self, permille: u64) {
        self.price_permille = permille.max(1);
    }

    /// The gas-price multiplier currently applied to charges.
    pub fn price_permille(&self) -> u64 {
        self.price_permille
    }

    /// Scales a flat-schedule amount by the current price.
    fn scale(&self, amount: u64) -> u64 {
        if self.price_permille == BASE_PRICE_PERMILLE {
            amount
        } else {
            (u128::from(amount) * u128::from(self.price_permille) / 1000) as u64
        }
    }

    fn kind_index(kind: CostKind) -> usize {
        match kind {
            CostKind::Transaction => 0,
            CostKind::StorageInsert => 1,
            CostKind::StorageUpdate => 2,
            CostKind::StorageRead => 3,
            CostKind::Hash => 4,
            CostKind::Log => 5,
        }
    }

    /// Records `amount` Gas (a flat-schedule cost, scaled by the current
    /// price) against a layer and kind.
    pub fn charge(&mut self, layer: Layer, kind: CostKind, amount: u64) {
        let amount = self.scale(amount);
        let li = layer_index(layer);
        let ki = Self::kind_index(kind);
        self.by_layer[li] = checked_add_gas(self.by_layer[li], amount);
        self.by_kind[li][ki] = checked_add_gas(self.by_kind[li][ki], amount);
    }

    /// Charges a transaction carrying `payload_bytes` of calldata; returns
    /// the price-scaled cost actually booked.
    pub fn charge_tx(&mut self, layer: Layer, payload_bytes: usize) -> u64 {
        let cost = self.scale(self.schedule.tx_cost_bytes(payload_bytes));
        let li = layer_index(layer);
        let ki = Self::kind_index(CostKind::Transaction);
        self.by_layer[li] = checked_add_gas(self.by_layer[li], cost);
        self.by_kind[li][ki] = checked_add_gas(self.by_kind[li][ki], cost);
        cost
    }

    /// Total Gas across all layers (including user envelopes).
    pub fn total(&self) -> u64 {
        self.by_layer
            .iter()
            .fold(0, |acc, &layer| checked_add_gas(acc, layer))
    }

    /// Total Gas across the feed and application layers — the quantity the
    /// paper reports.
    pub fn reported_total(&self) -> u64 {
        checked_add_gas(self.by_layer[0], self.by_layer[1])
    }

    /// Gas charged to one layer.
    pub fn layer_total(&self, layer: Layer) -> Gas {
        Gas(self.by_layer[layer_index(layer)])
    }

    /// Gas charged to one (layer, kind) pair.
    pub fn kind_total(&self, layer: Layer, kind: CostKind) -> Gas {
        Gas(self.by_kind[layer_index(layer)][Self::kind_index(kind)])
    }

    /// Snapshot of the current totals, for differencing across an epoch.
    pub fn snapshot(&self) -> GasSnapshot {
        GasSnapshot {
            feed: self.by_layer[0],
            app: self.by_layer[1],
            user: self.by_layer[2],
        }
    }

    /// Resets all counters to zero, keeping the schedule.
    pub fn reset(&mut self) {
        self.by_layer = [0; 3];
        self.by_kind = [[0; 6]; 3];
    }
}

/// A point-in-time snapshot of meter totals; subtract two to get a delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GasSnapshot {
    /// Feed-layer total at snapshot time.
    pub feed: u64,
    /// Application-layer total at snapshot time.
    pub app: u64,
    /// User-envelope total at snapshot time.
    pub user: u64,
}

impl GasSnapshot {
    /// Gas burned between `earlier` and `self`, per layer `(feed, app)`.
    pub fn since(&self, earlier: GasSnapshot) -> (Gas, Gas) {
        (
            Gas(checked_sub_gas(self.feed, earlier.feed)),
            Gas(checked_sub_gas(self.app, earlier.app)),
        )
    }

    /// Total across the feed and application layers (the reported metric).
    pub fn total(&self) -> u64 {
        checked_add_gas(self.feed, self.app)
    }
}

/// Converts Gas to USD given a gas price in gwei and an ETH price in USD.
///
/// The paper quotes "$231 million USD per GiB" for on-chain storage at the
/// Nov. 2019 Ether price; see the unit test reproducing that magnitude.
pub fn gas_to_usd(gas: u64, gas_price_gwei: f64, eth_usd: f64) -> f64 {
    gas as f64 * gas_price_gwei * 1e-9 * eth_usd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        let s = GasSchedule::default();
        assert_eq!(s.tx_cost_words(0), 21_000);
        assert_eq!(s.tx_cost_words(10), 21_000 + 21_760);
        assert_eq!(s.storage_insert(3), 60_000);
        assert_eq!(s.storage_update(3), 15_000);
        assert_eq!(s.storage_read(5), 1_000);
        assert_eq!(s.hash_cost(2), 42);
    }

    #[test]
    fn tx_cost_extends_linearly_beyond_table2_domain() {
        let s = GasSchedule::default();
        assert_eq!(s.tx_cost_words(2000), 21_000 + 2_176 * 2000);
    }

    #[test]
    fn equation1_k_is_about_two() {
        let k = GasSchedule::default().two_competitive_k();
        assert!(k > 2.0 && k < 2.5, "K = {k}");
    }

    #[test]
    fn words_rounding() {
        assert_eq!(words_for_bytes(0), 0);
        assert_eq!(words_for_bytes(31), 1);
        assert_eq!(words_for_bytes(32), 1);
        assert_eq!(words_for_bytes(64), 2);
        assert_eq!(words_for_bytes(65), 3);
    }

    #[test]
    fn meter_attribution() {
        let mut m = GasMeter::new();
        m.charge(Layer::Feed, CostKind::Hash, 36);
        m.charge(Layer::Feed, CostKind::Hash, 4);
        m.charge(Layer::Application, CostKind::StorageInsert, 20_000);
        assert_eq!(m.kind_total(Layer::Feed, CostKind::Hash), Gas(40));
        assert_eq!(m.kind_total(Layer::Application, CostKind::Hash), Gas(0));
        assert_eq!(m.layer_total(Layer::Feed), Gas(40));
        assert_eq!(m.layer_total(Layer::Application), Gas(20_000));
        assert_eq!(m.total(), 20_040);
    }

    #[test]
    fn snapshot_delta() {
        let mut m = GasMeter::new();
        m.charge(Layer::Feed, CostKind::Log, 375);
        let s1 = m.snapshot();
        m.charge(Layer::Feed, CostKind::Log, 1000);
        m.charge(Layer::Application, CostKind::StorageRead, 200);
        let s2 = m.snapshot();
        let (feed, app) = s2.since(s1);
        assert_eq!(feed, Gas(1000));
        assert_eq!(app, Gas(200));
    }

    #[test]
    fn meter_reset() {
        let mut m = GasMeter::new();
        m.charge_tx(Layer::Feed, 64);
        assert!(m.total() > 0);
        m.reset();
        assert_eq!(m.total(), 0);
    }

    /// The paper's §2.2 comparison: storing 1 GiB on-chain is wildly more
    /// expensive than cloud storage (which is free-tier). Note: the paper
    /// quotes "$231 million"; Table 2's own schedule at the stated 2 gwei /
    /// Nov-2019 Ether price yields ≈ $242k — still 5 orders of magnitude
    /// above the $0 cloud cost, so the argument stands. We assert the value
    /// computed from the schedule the paper actually publishes.
    #[test]
    fn gigabyte_storage_cost_magnitude() {
        let s = GasSchedule::default();
        let words = words_for_bytes(1 << 30);
        let gas = s.storage_insert(words);
        let usd = gas_to_usd(gas, 2.0, 180.0);
        assert!(usd > 200e3, "1 GiB costs ${usd:.0}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "gas amount overflow")]
    fn gas_add_overflow_is_loud_in_debug() {
        let _ = Gas(u64::MAX) + Gas(1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "gas amount underflow")]
    fn snapshot_differencing_across_reset_is_loud_in_debug() {
        let mut m = GasMeter::new();
        m.charge(Layer::Feed, CostKind::Log, 375);
        let stale = m.snapshot();
        m.reset();
        let _ = m.snapshot().since(stale);
    }

    #[test]
    fn checked_helpers_pass_through_in_range() {
        assert_eq!(checked_add_gas(3, 4), 7);
        assert_eq!(checked_sub_gas(9, 4), 5);
    }

    #[test]
    fn default_price_is_neutral() {
        let mut m = GasMeter::new();
        assert_eq!(m.price_permille(), BASE_PRICE_PERMILLE);
        m.charge_tx(Layer::Feed, 32);
        assert_eq!(m.total(), 23_176, "flat price reproduces Table 2 exactly");
    }

    #[test]
    fn price_scales_charges_and_clamps_zero() {
        let mut m = GasMeter::new();
        m.set_price_permille(2000);
        m.charge(Layer::Feed, CostKind::StorageRead, 200);
        assert_eq!(m.layer_total(Layer::Feed), Gas(400));
        let cost = m.charge_tx(Layer::Feed, 0);
        assert_eq!(cost, 42_000, "charge_tx returns the scaled cost");
        m.set_price_permille(0);
        assert_eq!(m.price_permille(), 1, "zero price clamps to 1 permille");
        m.set_price_permille(500);
        m.charge(Layer::Application, CostKind::StorageUpdate, 5000);
        assert_eq!(m.layer_total(Layer::Application), Gas(2500));
    }

    #[test]
    fn fee_regimes_are_pure_bounded_and_seed_sensitive() {
        for fee in [
            FeeProcess::step(7),
            FeeProcess::spike(7),
            FeeProcess::mean_reverting(7),
        ] {
            for h in 0..200 {
                let p = fee.price_permille(h);
                assert_eq!(p, fee.price_permille(h), "pure in height");
                assert!((1..=10_000).contains(&p), "bounded: {p}");
            }
        }
        let a: Vec<u64> = (0..64)
            .map(|h| FeeProcess::spike(1).price_permille(h))
            .collect();
        let b: Vec<u64> = (0..64)
            .map(|h| FeeProcess::spike(2).price_permille(h))
            .collect();
        assert_ne!(a, b, "different seeds shift the spike phase");
    }

    #[test]
    fn spike_regime_actually_spikes() {
        let fee = FeeProcess::spike(7);
        let prices: Vec<u64> = (0..64).map(|h| fee.price_permille(h)).collect();
        assert!(prices.contains(&5000), "peak blocks exist");
        assert!(prices.contains(&900), "base blocks exist");
    }

    #[test]
    fn mean_reverting_stays_near_base() {
        let fee = FeeProcess::mean_reverting(3);
        for h in 0..500 {
            let p = fee.price_permille(h);
            assert!((600..=1400).contains(&p), "|p - base| <= max_dev: {p}");
        }
    }

    #[test]
    fn fee_spec_parsing() {
        assert_eq!(FeeProcess::parse(""), Ok(None));
        assert_eq!(FeeProcess::parse("flat"), Ok(None));
        assert_eq!(FeeProcess::parse("0"), Ok(None));
        assert_eq!(FeeProcess::parse("spike"), Ok(Some(FeeProcess::spike(7))));
        assert_eq!(FeeProcess::parse("step:11"), Ok(Some(FeeProcess::step(11))));
        assert_eq!(
            FeeProcess::parse("mean-revert:2"),
            Ok(Some(FeeProcess::mean_reverting(2)))
        );
        assert!(FeeProcess::parse("banana").is_err());
        assert!(FeeProcess::parse("spike:xyz").is_err());
    }

    #[test]
    fn gas_arithmetic() {
        let g = Gas(10) + Gas(5);
        assert_eq!(g, Gas(15));
        assert_eq!(g - Gas(5), Gas(10));
        assert_eq!(Gas(3).saturating_sub(Gas(10)), Gas::ZERO);
        let sum: Gas = [Gas(1), Gas(2), Gas(3)].into_iter().sum();
        assert_eq!(sum, Gas(6));
        assert_eq!(Gas(100).per_op(4), 25.0);
        assert_eq!(Gas(100).per_op(0), 0.0);
    }
}
