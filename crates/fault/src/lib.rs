//! Named crash-point fault injection.
//!
//! The recovery contract this workspace tests is "a run killed at an
//! arbitrary pipeline point must recover to a chain and store state
//! byte-identical to an uninterrupted run". To exercise it, the pipeline
//! (engine scheduler, storage provider, LSM store) is threaded with *named
//! crash points*: cheap probes that normally answer "keep going" and, when a
//! [`FaultPlan`] is armed for that point, answer "die here" exactly once.
//!
//! The armed plan lives in process-wide state (a crash is a process-wide
//! event), so tests that arm faults must serialize on
//! [`injection_lock`] — otherwise a plan armed by one test trips in
//! another's pipeline.
//!
//! A plan trips **once** and disarms itself: the recovery run that follows
//! the simulated crash re-executes the same pipeline and must not die at the
//! same point again.
//!
//! The `GRUB_FAULT_POINT=point[:n]` environment knob arms a plan from the
//! command line (see [`plan_from_env`]): `point` is one of the
//! [`FaultPoint::name`] strings, `n` the number of hits to survive before
//! tripping (default 0 — die on the first hit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// A named crash point in the stage→merge→commit pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// After a round's off-chain staging (policy flush, SP sync, section
    /// encoding) completes, before anything reaches the chain.
    PostStage,
    /// After parallel workers return, before the merge thread claims the
    /// first commit lane.
    PreMerge,
    /// Between two shards' commits within one round — the first shard's
    /// blocks are mined, the rest never happen.
    MidShardCommit,
    /// After a shard's batched `update` block is mined, before its read
    /// phase runs.
    PostWriteBlock,
    /// Mid WAL append: half a frame reaches the log, then the process dies.
    MidWalAppend,
    /// Mid SSTable flush: a partial table file exists, never finished or
    /// renamed into place.
    MidSstableFlush,
    /// Mid chain reorg: the fork branch has been rolled back, but the
    /// canonical branch has not been re-committed yet — the process dies
    /// with the chain consistent at the rollback target height.
    MidReorgRollback,
    /// Mid transaction resubmission: the canonical branch has been fully
    /// re-committed after a rollback, but the fork's pending transactions
    /// have not re-entered the mempool yet — the process dies with the
    /// chain consistent at the original tip and the pending set lost.
    MidResubmission,
}

impl FaultPoint {
    /// Every named crash point, in pipeline order.
    pub const ALL: [FaultPoint; 8] = [
        FaultPoint::PostStage,
        FaultPoint::PreMerge,
        FaultPoint::MidShardCommit,
        FaultPoint::PostWriteBlock,
        FaultPoint::MidWalAppend,
        FaultPoint::MidSstableFlush,
        FaultPoint::MidReorgRollback,
        FaultPoint::MidResubmission,
    ];

    /// The knob/display name of the point.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::PostStage => "post-stage",
            FaultPoint::PreMerge => "pre-merge",
            FaultPoint::MidShardCommit => "mid-shard-commit",
            FaultPoint::PostWriteBlock => "post-write-block",
            FaultPoint::MidWalAppend => "mid-wal-append",
            FaultPoint::MidSstableFlush => "mid-sstable-flush",
            FaultPoint::MidReorgRollback => "mid-reorg-rollback",
            FaultPoint::MidResubmission => "mid-resubmission",
        }
    }

    /// Parses a knob name back into a point.
    pub fn parse(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An armed crash: die at `point` after surviving `after` earlier hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Where to die.
    pub point: FaultPoint,
    /// How many hits of `point` to survive first (0 = die on the first).
    pub after: u32,
}

impl FaultPlan {
    /// A plan that dies on the first hit of `point`.
    pub fn at(point: FaultPoint) -> Self {
        FaultPlan { point, after: 0 }
    }

    /// A plan that survives `after` hits of `point` before dying.
    pub fn nth(point: FaultPoint, after: u32) -> Self {
        FaultPlan { point, after }
    }
}

fn armed() -> &'static Mutex<Option<FaultPlan>> {
    static ARMED: OnceLock<Mutex<Option<FaultPlan>>> = OnceLock::new();
    ARMED.get_or_init(|| Mutex::new(None))
}

/// Arms a crash plan, replacing any previous one.
pub fn arm(plan: FaultPlan) {
    *armed().lock().unwrap_or_else(PoisonError::into_inner) = Some(plan);
}

/// Disarms, returning the plan that was pending (if any) — a tripped plan
/// has already disarmed itself and returns `None` here.
pub fn disarm() -> Option<FaultPlan> {
    armed()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// Whether a plan is currently armed (and has not yet tripped).
pub fn is_armed() -> bool {
    armed()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

/// The pipeline probe: `true` exactly when the armed plan names `point` and
/// its countdown has expired — the caller must then abort as if the process
/// died here. Tripping disarms the plan, so the recovery run sails through.
pub fn should_trip(point: FaultPoint) -> bool {
    let mut guard = armed().lock().unwrap_or_else(PoisonError::into_inner);
    match guard.as_mut() {
        Some(plan) if plan.point == point => {
            if plan.after == 0 {
                *guard = None;
                true
            } else {
                plan.after -= 1;
                false
            }
        }
        _ => false,
    }
}

/// Parses `GRUB_FAULT_POINT=point[:n]` into a plan (`None` when unset or
/// malformed — an unknown point name must not silently run clean, so it
/// panics instead).
///
/// # Panics
///
/// Panics on an unrecognized point name or count, so a typo in the knob
/// fails loudly instead of running without the fault.
pub fn plan_from_env() -> Option<FaultPlan> {
    let raw = std::env::var("GRUB_FAULT_POINT").ok()?;
    if raw.is_empty() {
        return None;
    }
    let (name, after) = match raw.split_once(':') {
        Some((name, n)) => (
            name,
            n.parse::<u32>()
                // grub-lint: allow(panic) — documented "# Panics": a typo'd knob must fail loudly, not run a different scenario
                .unwrap_or_else(|_| panic!("GRUB_FAULT_POINT: bad hit count {n:?}")),
        ),
        None => (raw.as_str(), 0),
    };
    let point = FaultPoint::parse(name)
        // grub-lint: allow(panic) — documented "# Panics": a typo'd knob must fail loudly, not run a different scenario
        .unwrap_or_else(|| panic!("GRUB_FAULT_POINT: unknown crash point {name:?}"));
    Some(FaultPlan { point, after })
}

/// Serializes tests that arm faults: the armed plan is process-wide, so two
/// concurrently running crash tests would trip each other's plans. Hold the
/// guard for the whole arm → run → assert sequence.
pub fn injection_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for point in FaultPoint::ALL {
            assert_eq!(FaultPoint::parse(point.name()), Some(point));
        }
        assert_eq!(FaultPoint::parse("nope"), None);
    }

    #[test]
    fn trips_once_then_disarms() {
        let _guard = injection_lock();
        arm(FaultPlan::at(FaultPoint::PostStage));
        assert!(!should_trip(FaultPoint::PreMerge), "other points pass");
        assert!(should_trip(FaultPoint::PostStage), "armed point trips");
        assert!(
            !should_trip(FaultPoint::PostStage),
            "tripped plan has disarmed"
        );
        assert!(!is_armed());
    }

    #[test]
    fn countdown_survives_n_hits() {
        let _guard = injection_lock();
        arm(FaultPlan::nth(FaultPoint::MidWalAppend, 2));
        assert!(!should_trip(FaultPoint::MidWalAppend));
        assert!(!should_trip(FaultPoint::MidWalAppend));
        assert!(should_trip(FaultPoint::MidWalAppend), "third hit dies");
        assert!(disarm().is_none(), "already disarmed by the trip");
    }

    #[test]
    fn disarm_clears_pending_plan() {
        let _guard = injection_lock();
        arm(FaultPlan::at(FaultPoint::PreMerge));
        assert_eq!(disarm(), Some(FaultPlan::at(FaultPoint::PreMerge)));
        assert!(!should_trip(FaultPoint::PreMerge));
    }
}
