//! The contract trait and the per-call execution context.
//!
//! Contracts are immutable code ([`Contract::call`] takes `&self`); all
//! mutable state lives in Gas-metered storage reached through
//! [`CallContext`], mirroring the EVM's code/storage split. This lets nested
//! internal calls (e.g. GRuB's `gGet` → DU callback) re-enter contracts
//! without aliasing issues.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

use grub_crypto::{sha256, Hash32};
use grub_gas::{words_for_bytes, CostKind, GasMeter, Layer};

use crate::chain::Event;
use crate::storage::{ContractStorage, JournalEntry};
use crate::types::Address;

/// Maximum internal-call depth, to catch accidental callback loops.
pub const MAX_CALL_DEPTH: u32 = 64;

/// Errors raised by contract execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The contract reverted with a reason string.
    Revert(String),
    /// No contract is deployed at the target address.
    UnknownContract(Address),
    /// The contract has no function with this name.
    UnknownFunction(String),
    /// The payload could not be decoded.
    Decode(String),
    /// Internal call depth exceeded [`MAX_CALL_DEPTH`].
    CallDepthExceeded,
    /// The caller is not authorized for this function.
    Unauthorized,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Revert(reason) => write!(f, "execution reverted: {reason}"),
            VmError::UnknownContract(addr) => write!(f, "no contract at {addr}"),
            VmError::UnknownFunction(name) => write!(f, "unknown function {name}"),
            VmError::Decode(what) => write!(f, "payload decode failed: {what}"),
            VmError::CallDepthExceeded => write!(f, "internal call depth exceeded"),
            VmError::Unauthorized => write!(f, "caller not authorized"),
        }
    }
}

impl Error for VmError {}

/// A deployed smart contract.
///
/// Implementations must keep all persistent state in [`CallContext`] storage
/// so that Gas accounting captures it. See the crate-level example.
pub trait Contract {
    /// Executes `func` with `input`, returning the encoded output.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] to revert the enclosing transaction; all storage
    /// writes made below the failing frame are rolled back.
    fn call(&self, ctx: &mut CallContext<'_>, func: &str, input: &[u8])
        -> Result<Vec<u8>, VmError>;
}

/// Registry entry: code plus the Gas-attribution layer for the contract.
#[derive(Clone)]
pub(crate) struct Deployed {
    pub code: Rc<dyn Contract>,
    pub layer: Layer,
}

/// A record of one (internal or top-level) contract invocation, observable
/// by off-chain full nodes that re-execute transactions — this is the
/// "contract-call history" the paper's DO monitor federates (§3.2).
/// Recording it is free: it is derived data, not consensus state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallRecord {
    /// Invoked contract.
    pub to: Address,
    /// Function name.
    pub func: String,
    /// Encoded input.
    pub input: Vec<u8>,
    /// Block in which the invocation executed.
    pub block_number: u64,
}

/// Chain state mutated during transaction execution.
pub(crate) struct ExecState {
    pub storages: HashMap<Address, ContractStorage>,
    pub meter: GasMeter,
    pub pending_events: Vec<Event>,
    pub journal: Vec<JournalEntry>,
    pub call_records: Vec<CallRecord>,
}

/// Execution context handed to a contract for the duration of one call frame.
///
/// Provides Gas-metered storage access, event emission, hashing, and internal
/// calls. Each metered helper charges the layer that the *currently
/// executing* contract was deployed with, so feed-layer and application-layer
/// Gas separate exactly as in the paper's Table 3.
pub struct CallContext<'a> {
    pub(crate) state: &'a mut ExecState,
    pub(crate) registry: &'a HashMap<Address, Deployed>,
    /// The immediate caller (account or contract).
    pub caller: Address,
    /// The contract being executed.
    pub this: Address,
    /// The externally-owned account that signed the transaction.
    pub origin: Address,
    /// Current block number.
    pub block_number: u64,
    /// Simulated wall-clock time (milliseconds).
    pub now_ms: u64,
    pub(crate) layer: Layer,
    pub(crate) depth: u32,
}

impl<'a> CallContext<'a> {
    fn storage_mut(&mut self) -> &mut ContractStorage {
        self.state.storages.entry(self.this).or_default()
    }

    /// Reads a storage slot, charging `Cread` per word (minimum one word).
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` so implementations can add quota
    /// enforcement without breaking callers.
    pub fn sload(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, VmError> {
        let value = self
            .state
            .storages
            .get(&self.this)
            .and_then(|s| s.get(key))
            .cloned();
        let words = value
            .as_ref()
            .map(|v| words_for_bytes(v.len()).max(1))
            .unwrap_or(1);
        let cost = self.state.meter.schedule().storage_read(words);
        self.state
            .meter
            .charge(self.layer, CostKind::StorageRead, cost);
        Ok(value)
    }

    /// Writes a storage slot, charging `Cinsert` for fresh slots and
    /// `Cupdate` for overwrites, per word of the new value.
    pub fn sstore(&mut self, key: &[u8], value: &[u8]) -> Result<(), VmError> {
        let this = self.this;
        let words = words_for_bytes(value.len()).max(1);
        let existed = self
            .state
            .storages
            .get(&this)
            .map(|s| s.get(key).is_some())
            .unwrap_or(false);
        let cost = if existed {
            self.state.meter.schedule().storage_update(words)
        } else {
            self.state.meter.schedule().storage_insert(words)
        };
        let kind = if existed {
            CostKind::StorageUpdate
        } else {
            CostKind::StorageInsert
        };
        self.state.meter.charge(self.layer, kind, cost);
        let prior = self.storage_mut().set(key.to_vec(), value.to_vec());
        self.state.journal.push(JournalEntry {
            contract: this,
            key: key.to_vec(),
            prior,
        });
        Ok(())
    }

    /// Deletes a storage slot (replica eviction). Metered as a one-word
    /// update — Table 2 has no delete row and the paper models no refunds.
    pub fn sdelete(&mut self, key: &[u8]) -> Result<(), VmError> {
        let this = self.this;
        let cost = self.state.meter.schedule().storage_update(1);
        self.state
            .meter
            .charge(self.layer, CostKind::StorageUpdate, cost);
        let prior = self.storage_mut().remove(key);
        self.state.journal.push(JournalEntry {
            contract: this,
            key: key.to_vec(),
            prior,
        });
        Ok(())
    }

    /// Convenience: reads a slot holding a `u64`.
    pub fn sload_u64(&mut self, key: &[u8]) -> Result<Option<u64>, VmError> {
        Ok(self.sload(key)?.map(|v| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&v[..8.min(v.len())]);
            u64::from_le_bytes(b)
        }))
    }

    /// Convenience: writes a slot holding a `u64`.
    pub fn sstore_u64(&mut self, key: &[u8], value: u64) -> Result<(), VmError> {
        self.sstore(key, &value.to_le_bytes())
    }

    /// Hashes data on-chain, charging `Chash(X) = 30 + 6·X`.
    pub fn hash(&mut self, data: &[u8]) -> Hash32 {
        let cost = self
            .state
            .meter
            .schedule()
            .hash_cost(words_for_bytes(data.len()));
        self.state.meter.charge(self.layer, CostKind::Hash, cost);
        sha256(data)
    }

    /// Charges one `Chash` for combining two digests (Merkle proof step).
    pub fn hash_pair(&mut self, left: &Hash32, right: &Hash32) -> Hash32 {
        let cost = self.state.meter.schedule().hash_cost(2);
        self.state.meter.charge(self.layer, CostKind::Hash, cost);
        grub_crypto::sha256_pair(left, right)
    }

    /// Emits an event into the block's log, charging the LOG schedule.
    pub fn emit(&mut self, name: &str, data: Vec<u8>) {
        let cost = self.state.meter.schedule().log_cost(1, data.len());
        self.state.meter.charge(self.layer, CostKind::Log, cost);
        self.state.pending_events.push(Event {
            contract: self.this,
            name: name.to_owned(),
            data,
            block_number: self.block_number,
            time_ms: self.now_ms,
        });
    }

    /// Makes an internal call to another contract (or this one).
    ///
    /// The callee's storage charges are attributed to the *callee's* layer,
    /// which is how DU callback logic lands in the application column while
    /// `deliver` verification lands in the feed column.
    ///
    /// # Errors
    ///
    /// Propagates the callee's [`VmError`]; the caller may catch it (as the
    /// EVM's `CALL` returns success flags) or bubble it up to revert.
    pub fn call(&mut self, to: Address, func: &str, input: &[u8]) -> Result<Vec<u8>, VmError> {
        if self.depth + 1 > MAX_CALL_DEPTH {
            return Err(VmError::CallDepthExceeded);
        }
        let deployed = self
            .registry
            .get(&to)
            .cloned()
            .ok_or(VmError::UnknownContract(to))?;
        self.state.call_records.push(CallRecord {
            to,
            func: func.to_owned(),
            input: input.to_vec(),
            block_number: self.block_number,
        });
        let mut sub = CallContext {
            state: self.state,
            registry: self.registry,
            caller: self.this,
            this: to,
            origin: self.origin,
            block_number: self.block_number,
            now_ms: self.now_ms,
            layer: deployed.layer,
            depth: self.depth + 1,
        };
        deployed.code.call(&mut sub, func, input)
    }

    /// The Gas-attribution layer of the currently executing contract.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// The Gas schedule in force, for contracts that meter bespoke work
    /// (e.g. proof verification loops).
    pub fn meter_schedule(&self) -> &grub_gas::GasSchedule {
        self.state.meter.schedule()
    }

    /// Charges `amount` Gas of `kind` against the current contract's layer.
    pub fn charge(&mut self, kind: CostKind, amount: u64) {
        self.state.meter.charge(self.layer, kind, amount);
    }
}
