//! Core identifier types for the chain simulator.

use std::fmt;

use grub_crypto::{derive_address, hex};
use serde::{Deserialize, Serialize};

/// A 20-byte account or contract address (Ethereum-style).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Address([u8; 20]);

impl Address {
    /// The zero address, used as the "no account" sentinel.
    pub const ZERO: Address = Address([0u8; 20]);

    /// Wraps raw bytes as an address.
    pub const fn new(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Derives a deterministic test address from a label, the way devnets
    /// mint named accounts.
    ///
    /// # Examples
    ///
    /// ```
    /// use grub_chain::Address;
    /// assert_eq!(Address::derive("DO"), Address::derive("DO"));
    /// assert_ne!(Address::derive("DO"), Address::derive("SP"));
    /// ```
    pub fn derive(label: &str) -> Self {
        let digest = derive_address(label);
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest.as_bytes()[..20]);
        Address(out)
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address(0x{}..)", &hex::encode(&self.0)[..8])
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", hex::encode(&self.0))
    }
}

/// A transaction identifier: (block number, index within block) once mined,
/// or a mempool sequence number before that.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TxId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_display_is_hex() {
        let a = Address::derive("x");
        let shown = a.to_string();
        assert!(shown.starts_with("0x"));
        assert_eq!(shown.len(), 42);
    }

    #[test]
    fn zero_address_is_default() {
        assert_eq!(Address::default(), Address::ZERO);
    }
}
