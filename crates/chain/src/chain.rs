//! The single-chain simulator: mempool, blocks, receipts, events, finality,
//! and the chain-realism axes (seeded reorgs, a volatile gas-price process,
//! bounded-capacity mempool contention).

use std::cmp::Reverse;
use std::collections::HashMap;
use std::rc::Rc;

use grub_fault::FaultPoint;
use grub_gas::{seeded_mix, FeeProcess, GasMeter, GasSnapshot, Layer};

use crate::contract::{CallContext, CallRecord, Contract, Deployed, ExecState, VmError};
use crate::storage::ContractStorage;
use crate::types::{Address, TxId};

/// Parameters of the seeded fork process (see [`ChainConfig::reorg`]).
///
/// Every `period` blocks the chain mines a short-lived fork block (with a
/// seeded timestamp skew), rolls back `1 + mix(seed, height) % max_depth`
/// canonical blocks — clamped to what snapshots and retained bodies allow —
/// and re-commits the canonical branch from the recorded per-block
/// transaction lists. The re-committed branch is byte-identical to a
/// straight-line run, so [`Blockchain::chain_digest`] is reorg-transparent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReorgConfig {
    /// Seed fixing fork depths and fork-block timestamp skew.
    pub seed: u64,
    /// A fork fires at every height divisible by this (min 1).
    pub period: u64,
    /// Upper bound on how many canonical blocks one fork rolls back (min 1).
    pub max_depth: usize,
}

/// Mempool contention parameters (see [`ChainConfig::mempool`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MempoolConfig {
    /// Maximum transactions mined per block (min 1). Overflow stays queued
    /// for later blocks, ordered by descending [`Transaction::priority`]
    /// (stable: equal priorities keep submission order).
    pub max_txs_per_block: usize,
}

/// Inclusion-latency parameters (see [`ChainConfig::latency`]).
///
/// Models submission→inclusion delay: each submitted transaction waits a
/// seeded number of blocks (`mix(seed, tx_id) % (max_delay_blocks + 1)`)
/// before it becomes eligible to mine, plus one extra block per full
/// [`MempoolConfig::max_txs_per_block`] of queue ahead of it when the
/// mempool is bounded — so congestion pressure lengthens the wait
/// deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Seed fixing each transaction's inclusion delay.
    pub seed: u64,
    /// Upper bound on the seeded per-transaction delay, in blocks (min 1).
    pub max_delay_blocks: u64,
}

/// Chain timing parameters (paper §3.4): block period `B`, finality depth
/// `F`, and transaction propagation delay `Pt` — plus the simulator's
/// block-retention window for streamed-scale runs and the optional
/// chain-realism axes (reorgs, fee volatility, mempool congestion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainConfig {
    /// Average block production period, milliseconds (Ethereum: 10–19 s).
    pub block_period_ms: u64,
    /// Blocks needed before a transaction is considered final (Ethereum: 250).
    pub finality_depth: u64,
    /// Worst-case transaction propagation delay to all nodes, milliseconds.
    pub propagation_ms: u64,
    /// How many mined block bodies to keep resident: `None` (the default)
    /// keeps the whole chain, `Some(n)` drops the oldest bodies past `n` —
    /// what lets a million-op streamed run execute at bounded memory.
    /// Chain state (storage, Gas meter, height) and the running
    /// [`Blockchain::chain_digest`] are unaffected; only the replayable
    /// block *bodies* (receipts, events, call records) age out, so
    /// off-chain monitors polling [`Blockchain::events_since`] /
    /// [`Blockchain::calls_since`] must keep their cursors within the
    /// window (every per-epoch watchdog does — cursors advance each
    /// epoch, and an epoch spans a handful of blocks).
    pub retain_blocks: Option<usize>,
    /// Seeded fork process; `None` (the default) never forks.
    pub reorg: Option<ReorgConfig>,
    /// Seeded per-block gas-price process; `None` (the default) charges the
    /// flat Table-2 schedule.
    pub fee: Option<FeeProcess>,
    /// Bounded per-block transaction capacity; `None` (the default) mines
    /// every queued transaction in one block.
    pub mempool: Option<MempoolConfig>,
    /// Operational confirmation depth: a mined transaction is acknowledged
    /// (policy-visible, DO/SP-observable) only once its block is this many
    /// blocks deep. `0` (the default) acknowledges at the tip, which is the
    /// pre-confirmation-semantics behavior. Distinct from
    /// [`ChainConfig::finality_depth`], the paper's worst-case safety
    /// parameter `F` (Ethereum: 250): `confirm_depth` is the depth the
    /// *harness* waits for before treating a write as settled, and it also
    /// clamps how deep the seeded fork process may roll back — a reorg never
    /// crosses the confirmation frontier.
    pub confirm_depth: u64,
    /// Seeded submission→inclusion latency; `None` (the default) mines every
    /// queued transaction in the very next block.
    pub latency: Option<LatencyConfig>,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            block_period_ms: 13_000,
            finality_depth: 250,
            propagation_ms: 500,
            retain_blocks: None,
            reorg: None,
            fee: None,
            mempool: None,
            confirm_depth: 0,
            latency: None,
        }
    }
}

impl ChainConfig {
    /// Enables the seeded fork process: a fork at every height divisible by
    /// `period`, rolling back up to `max_depth` canonical blocks.
    pub fn reorg(mut self, seed: u64, period: u64, max_depth: usize) -> Self {
        self.reorg = Some(ReorgConfig {
            seed,
            period: period.max(1),
            max_depth: max_depth.max(1),
        });
        self
    }

    /// Enables a seeded per-block gas-price process.
    pub fn fee(mut self, process: FeeProcess) -> Self {
        self.fee = Some(process);
        self
    }

    /// Bounds per-block transaction capacity to `max_txs_per_block`.
    pub fn mempool(mut self, max_txs_per_block: usize) -> Self {
        self.mempool = Some(MempoolConfig {
            max_txs_per_block: max_txs_per_block.max(1),
        });
        self
    }

    /// Sets the operational confirmation depth (0 = acknowledge at the tip).
    pub fn confirm_depth(mut self, depth: u64) -> Self {
        self.confirm_depth = depth;
        self
    }

    /// Enables seeded submission→inclusion latency of up to
    /// `max_delay_blocks` blocks per transaction.
    pub fn latency(mut self, seed: u64, max_delay_blocks: u64) -> Self {
        self.latency = Some(LatencyConfig {
            seed,
            max_delay_blocks: max_delay_blocks.max(1),
        });
        self
    }

    /// Applies the chain-realism environment knobs on top of this config:
    ///
    /// * `GRUB_REORG=seed:period:depth` (or `1` for defaults `7:5:2`)
    /// * `GRUB_FEE_SCHEDULE=step|spike|revert[:seed]` (see
    ///   [`FeeProcess::parse`])
    /// * `GRUB_MEMPOOL=<max txs per block>`
    /// * `GRUB_CONFIRM_DEPTH=<blocks>` (confirmation depth; `0` = at-tip)
    /// * `GRUB_INCLUSION_LATENCY=<max delay blocks>[:seed]` (seed default 0)
    ///
    /// Unset, empty, or `0` leaves the corresponding axis off.
    ///
    /// # Panics
    ///
    /// Panics on malformed knob values — a typo must not silently run a
    /// different scenario.
    pub fn with_env_realism(mut self) -> Self {
        if let Ok(raw) = std::env::var("GRUB_REORG") {
            let raw = raw.trim();
            if !raw.is_empty() && raw != "0" {
                self = if raw == "1" {
                    self.reorg(7, 5, 2)
                } else {
                    let parts: Vec<u64> = raw
                        .split(':')
                        .map(|p| {
                            p.parse().unwrap_or_else(|_| {
                                // grub-lint: allow(panic) — documented "# Panics": a typo'd knob must fail loudly, not run a different scenario
                                panic!("GRUB_REORG: bad field {p:?} in {raw:?}")
                            })
                        })
                        .collect();
                    assert!(
                        parts.len() == 3,
                        "GRUB_REORG: want seed:period:depth, got {raw:?}"
                    );
                    self.reorg(parts[0], parts[1], parts[2] as usize)
                };
            }
        }
        if let Ok(raw) = std::env::var("GRUB_FEE_SCHEDULE") {
            match FeeProcess::parse(&raw) {
                Ok(Some(fee)) => self = self.fee(fee),
                Ok(None) => {}
                // grub-lint: allow(panic) — documented "# Panics": a typo'd knob must fail loudly, not run a different scenario
                Err(err) => panic!("GRUB_FEE_SCHEDULE: {err}"),
            }
        }
        if let Ok(raw) = std::env::var("GRUB_MEMPOOL") {
            let raw = raw.trim();
            if !raw.is_empty() && raw != "0" {
                let cap: usize = raw
                    .parse()
                    // grub-lint: allow(panic) — documented "# Panics": a typo'd knob must fail loudly, not run a different scenario
                    .unwrap_or_else(|_| panic!("GRUB_MEMPOOL: bad capacity {raw:?}"));
                self = self.mempool(cap);
            }
        }
        if let Ok(raw) = std::env::var("GRUB_CONFIRM_DEPTH") {
            let raw = raw.trim();
            if !raw.is_empty() && raw != "0" {
                let depth: u64 = raw
                    .parse()
                    // grub-lint: allow(panic) — documented "# Panics": a typo'd knob must fail loudly, not run a different scenario
                    .unwrap_or_else(|_| panic!("GRUB_CONFIRM_DEPTH: bad depth {raw:?}"));
                self = self.confirm_depth(depth);
            }
        }
        if let Ok(raw) = std::env::var("GRUB_INCLUSION_LATENCY") {
            let raw = raw.trim();
            if !raw.is_empty() && raw != "0" {
                let (max_raw, seed) = match raw.split_once(':') {
                    Some((m, s)) => (
                        m,
                        s.parse().unwrap_or_else(|_| {
                            // grub-lint: allow(panic) — documented "# Panics": a typo'd knob must fail loudly, not run a different scenario
                            panic!("GRUB_INCLUSION_LATENCY: bad seed {s:?} in {raw:?}")
                        }),
                    ),
                    None => (raw, 0),
                };
                let max_delay: u64 = max_raw.parse().unwrap_or_else(|_| {
                    // grub-lint: allow(panic) — documented "# Panics": a typo'd knob must fail loudly, not run a different scenario
                    panic!("GRUB_INCLUSION_LATENCY: bad delay {max_raw:?} in {raw:?}")
                });
                self = self.latency(seed, max_delay);
            }
        }
        self
    }
}

/// One observed fork: recorded when the seeded reorg process fires, for
/// reporting and tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReorgEvent {
    /// Height the abandoned fork block was mined at.
    pub height: u64,
    /// How many canonical blocks were rolled back and re-committed.
    pub depth: usize,
    /// Digest the chain would have had if the fork branch had won —
    /// always different from the canonical digest at the same height.
    pub fork_digest: grub_crypto::Hash32,
    /// Transactions the rollback abandoned (every transaction of every
    /// rolled-back canonical block, oldest block first).
    pub abandoned: Vec<TxId>,
    /// Abandoned transactions that re-entered the mempool and re-mined on
    /// the canonical branch. Equals `abandoned` on every completed reorg —
    /// the no-lost-writes contract; a strict prefix only when an injected
    /// crash point killed the reorg between rollback and resubmission.
    pub resubmitted: Vec<TxId>,
}

/// A rollback was requested past what the chain can undo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorgError {
    /// The rollback depth exceeds the retained block bodies — history
    /// beyond [`ChainConfig::retain_blocks`] has been pruned and cannot be
    /// re-committed.
    PastRetainedWindow {
        /// Blocks the caller asked to roll back.
        requested: usize,
        /// Block bodies still retained.
        retained: usize,
    },
    /// No state snapshot exists at the rollback target — deeper than
    /// [`ReorgConfig::max_depth`] keeps, or the chain is not in reorg mode
    /// (snapshots are only recorded when [`ChainConfig::reorg`] is set).
    PastSnapshotHorizon {
        /// Blocks the caller asked to roll back.
        requested: usize,
        /// Deepest rollback currently possible.
        available: usize,
    },
    /// The rollback target is below the confirmation frontier — blocks at or
    /// under [`Blockchain::confirmed_height`] have been acknowledged to the
    /// DO/SP layers under [`ChainConfig::confirm_depth`] and can no longer
    /// be undone.
    PastConfirmationFrontier {
        /// Blocks the caller asked to roll back.
        requested: usize,
        /// The confirmation frontier the rollback may not cross.
        frontier: u64,
    },
}

impl std::fmt::Display for ReorgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorgError::PastRetainedWindow {
                requested,
                retained,
            } => write!(
                f,
                "cannot roll back {requested} blocks: only {retained} block \
                 bodies are retained (retain_blocks pruned the rest)"
            ),
            ReorgError::PastSnapshotHorizon {
                requested,
                available,
            } => write!(
                f,
                "cannot roll back {requested} blocks: no state snapshot at \
                 the target height (deepest possible rollback is {available})"
            ),
            ReorgError::PastConfirmationFrontier {
                requested,
                frontier,
            } => write!(
                f,
                "cannot roll back {requested} blocks: the target is below \
                 the confirmation frontier (height {frontier}) — confirmed \
                 blocks have been acknowledged and cannot be undone"
            ),
        }
    }
}

impl std::error::Error for ReorgError {}

/// Block production failed — either an injected crash point tripped or a
/// reorg could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockError {
    /// A [`grub_fault`] crash point tripped mid-production; the chain is
    /// left in a consistent canonical state.
    Injected(&'static str),
    /// The fork process asked for an impossible rollback.
    Reorg(ReorgError),
}

impl std::fmt::Display for BlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockError::Injected(point) => write!(f, "injected fault at {point}"),
            BlockError::Reorg(err) => write!(f, "reorg failed: {err}"),
        }
    }
}

impl std::error::Error for BlockError {}

impl From<ReorgError> for BlockError {
    fn from(err: ReorgError) -> Self {
        BlockError::Reorg(err)
    }
}

/// A transaction submitted to the chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Sender account.
    pub from: Address,
    /// Target contract.
    pub to: Address,
    /// Function name to invoke.
    pub func: String,
    /// Encoded payload (see [`crate::codec`]).
    pub input: Vec<u8>,
    /// Which layer pays the `Ctx` envelope cost.
    pub envelope_layer: Layer,
    /// Mempool priority under [`ChainConfig::mempool`] congestion: higher
    /// values mine first; ties keep submission order. Ignored (all
    /// transactions mine together) when the mempool is unbounded.
    pub priority: u8,
}

impl Transaction {
    /// Builds a transaction (default priority 0).
    pub fn new(
        from: Address,
        to: Address,
        func: impl Into<String>,
        input: Vec<u8>,
        envelope_layer: Layer,
    ) -> Self {
        Transaction {
            from,
            to,
            func: func.into(),
            input,
            envelope_layer,
            priority: 0,
        }
    }

    /// Sets the mempool priority (see [`Transaction::priority`]).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// The result of executing one transaction.
#[derive(Clone, Debug)]
pub struct Receipt {
    /// Identifier assigned at submission.
    pub tx_id: TxId,
    /// Block that mined the transaction.
    pub block_number: u64,
    /// Whether execution succeeded (failed txs are rolled back).
    pub success: bool,
    /// Encoded output on success.
    pub output: Vec<u8>,
    /// Error message on failure.
    pub error: Option<String>,
    /// Total Gas consumed (envelope + execution).
    pub gas_used: u64,
}

/// An EVM-log-style event emitted by a contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Emitting contract.
    pub contract: Address,
    /// Event name (stands in for the topic hash).
    pub name: String,
    /// Encoded payload.
    pub data: Vec<u8>,
    /// Block in which the event was recorded.
    pub block_number: u64,
    /// Simulated time of the containing block.
    pub time_ms: u64,
}

/// A mined block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Height of this block.
    pub number: u64,
    /// Simulated production time.
    pub time_ms: u64,
    /// Receipts for the included transactions, in execution order.
    pub receipts: Vec<Receipt>,
    /// Events emitted by the included transactions.
    pub events: Vec<Event>,
    /// Contract invocations (top-level and internal) of successful
    /// transactions — the re-executable call history off-chain monitors read.
    pub call_records: Vec<CallRecord>,
}

/// The Ethereum-like chain simulator.
///
/// Deterministic and single-threaded: transactions execute in submission
/// order when [`Blockchain::produce_block`] is called. Gas is tracked by an
/// embedded [`GasMeter`] with feed/application/user attribution.
pub struct Blockchain {
    config: ChainConfig,
    registry: HashMap<Address, Deployed>,
    storages: HashMap<Address, ContractStorage>,
    meter: GasMeter,
    mempool: Vec<(TxId, Transaction)>,
    /// Retained block bodies — the full chain by default, a sliding window
    /// under [`ChainConfig::retain_blocks`].
    blocks: Vec<Block>,
    /// Blocks mined over the chain's lifetime (the absolute height —
    /// `blocks.len()` only until pruning starts).
    mined: u64,
    /// Running fold of every sealed block (see
    /// [`Blockchain::chain_digest`]), so the digest survives pruning and
    /// stays O(1) to read.
    digest_acc: grub_crypto::Hash32,
    /// Recovery oracle (see [`Blockchain::expect_digest_at`]): when the
    /// chain reaches this height, its digest must equal this value.
    checkpoint: Option<(u64, grub_crypto::Hash32)>,
    next_tx_id: u64,
    now_ms: u64,
    /// Rollback snapshots, ascending by height, only kept in reorg mode
    /// (bounded to `max_depth + 1` entries).
    snapshots: Vec<StateSnapshot>,
    /// Transaction lists of recently sealed canonical blocks (same window
    /// as `snapshots`), the replay source for re-committing after rollback.
    recent_txs: Vec<(u64, Vec<(TxId, Transaction)>)>,
    /// Every fork the seeded reorg process has executed.
    reorg_events: Vec<ReorgEvent>,
    /// Under [`ChainConfig::latency`]: the height at which each delayed
    /// transaction becomes eligible to mine, keyed by [`TxId`] value.
    /// Lookup-only (never iterated), so determinism is unaffected; empty
    /// whenever latency is off.
    tx_eligible: HashMap<u64, u64>,
    /// Under [`ChainConfig::confirm_depth`]: mined-but-unconfirmed blocks,
    /// ascending by height — `(height, txs mined in that block)`. Entries
    /// move to `confirmed_ready` once the confirmation frontier passes them;
    /// a rollback discards entries above its target (they re-enter as the
    /// canonical branch re-commits).
    pending_confirm: Vec<(u64, Vec<TxId>)>,
    /// Confirmed-block ledger awaiting collection by
    /// [`Blockchain::drain_confirmed`], ascending by height. Heights here
    /// are at or below the confirmation frontier, which no rollback can
    /// cross — once listed, a transaction is settled.
    confirmed_ready: Vec<(u64, Vec<TxId>)>,
}

/// Everything needed to rewind the chain to the state just after a given
/// canonical block sealed. The contract registry is deliberately absent:
/// deployments happen outside blocks and are never rolled back (contract
/// code is stateless; all mutable state lives in `storages`).
#[derive(Clone)]
struct StateSnapshot {
    mined: u64,
    now_ms: u64,
    digest_acc: grub_crypto::Hash32,
    storages: HashMap<Address, ContractStorage>,
    meter: GasMeter,
}

impl Default for Blockchain {
    fn default() -> Self {
        Self::new()
    }
}

impl Blockchain {
    /// Creates a chain with default parameters.
    pub fn new() -> Self {
        Self::with_config(ChainConfig::default())
    }

    /// Creates a chain with explicit timing parameters.
    pub fn with_config(config: ChainConfig) -> Self {
        let mut chain = Blockchain {
            config,
            registry: HashMap::new(),
            storages: HashMap::new(),
            meter: GasMeter::new(),
            mempool: Vec::new(),
            blocks: Vec::new(),
            mined: 0,
            digest_acc: grub_crypto::Sha256::new().finalize(),
            checkpoint: None,
            next_tx_id: 0,
            now_ms: 0,
            snapshots: Vec::new(),
            recent_txs: Vec::new(),
            reorg_events: Vec::new(),
            tx_eligible: HashMap::new(),
            pending_confirm: Vec::new(),
            confirmed_ready: Vec::new(),
        };
        if chain.config.reorg.is_some() {
            chain.snapshots.push(chain.current_snapshot());
        }
        chain
    }

    /// The chain state as a rollback snapshot.
    fn current_snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            mined: self.mined,
            now_ms: self.now_ms,
            digest_acc: self.digest_acc,
            storages: self.storages.clone(),
            meter: self.meter.clone(),
        }
    }

    /// The chain's timing parameters.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Deploys contract code at an address with a Gas-attribution layer.
    ///
    /// # Panics
    ///
    /// Panics if a contract is already deployed at `address` — redeploying
    /// over live state is almost certainly a harness bug.
    pub fn deploy(&mut self, address: Address, code: Rc<dyn Contract>, layer: Layer) {
        let prior = self.registry.insert(address, Deployed { code, layer });
        assert!(prior.is_none(), "contract already deployed at {address}");
    }

    /// Whether a contract exists at `address`.
    pub fn is_deployed(&self, address: Address) -> bool {
        self.registry.contains_key(&address)
    }

    /// Queues a transaction; it executes at the next block — or, under
    /// [`ChainConfig::latency`], at the block its seeded inclusion delay
    /// (lengthened by mempool-congestion pressure) first allows.
    pub fn submit(&mut self, tx: Transaction) -> TxId {
        let id = TxId(self.next_tx_id);
        self.next_tx_id += 1;
        if let Some(lat) = self.config.latency {
            let mut delay = seeded_mix(lat.seed, id.0) % (lat.max_delay_blocks.max(1) + 1);
            if let Some(mp) = self.config.mempool {
                // Congestion pressure: one extra block of wait per full
                // block-capacity of queue already ahead of this transaction.
                delay += (self.mempool.len() / mp.max_txs_per_block.max(1)) as u64;
            }
            if delay > 0 {
                self.tx_eligible.insert(id.0, self.mined + 1 + delay);
            }
        }
        self.mempool.push((id, tx));
        id
    }

    /// Number of queued transactions.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Advances time by the block period and mines queued transactions into
    /// a new block, returning it.
    ///
    /// The sealed block is folded into the chain's running digest before it
    /// is retained, and — under [`ChainConfig::retain_blocks`] — the oldest
    /// bodies past the window are dropped. Under [`ChainConfig::mempool`]
    /// congestion only the highest-priority transactions up to the per-block
    /// capacity mine; the rest stay queued. Under [`ChainConfig::reorg`],
    /// heights divisible by the fork period first mine an abandoned fork
    /// block, roll the chain back, and re-commit the canonical branch.
    ///
    /// # Panics
    ///
    /// Panics when production fails (an armed [`grub_fault`] crash point or
    /// an impossible rollback). Fault-aware callers use
    /// [`Blockchain::try_produce_block`] instead.
    pub fn produce_block(&mut self) -> &Block {
        match self.try_produce_block() {
            Ok(block) => block,
            // grub-lint: allow(panic) — documented "# Panics"; fault-aware callers use try_produce_block
            Err(err) => panic!("produce_block: {err}"),
        }
    }

    /// Fallible block production: like [`Blockchain::produce_block`] but an
    /// armed [`grub_fault`] crash point or a failed rollback surfaces as a
    /// typed [`BlockError`] instead of a panic. On error, the chain is left
    /// in a consistent canonical state (for the mid-reorg crash point:
    /// rolled back to the fork's target height, mempool cleared).
    pub fn try_produce_block(&mut self) -> Result<&Block, BlockError> {
        if let Some(reorg) = self.config.reorg {
            let next = self.mined + 1;
            if next.is_multiple_of(reorg.period) && self.rollback_capacity() > 0 {
                self.run_reorg(reorg)?;
                // grub-lint: allow(panic) — run_reorg re-commits the canonical branch, so the chain is never empty here
                return Ok(self.blocks.last().expect("reorg re-committed the tip"));
            }
        }
        self.seal_canonical_block();
        // grub-lint: allow(panic) — seal_canonical_block just pushed a block
        Ok(self.blocks.last().expect("just pushed"))
    }

    /// Selects the transactions the next block will mine: everything whose
    /// inclusion delay has elapsed (everything, when latency is off), then —
    /// under mempool congestion — the top `max_txs_per_block` by priority
    /// (stable, so equal priorities keep submission order). Capacity
    /// overflow re-queues ahead of still-delayed transactions; a
    /// transaction selected once never re-waits its delay.
    fn take_block_pending(&mut self) -> Vec<(TxId, Transaction)> {
        let mut candidates = if self.tx_eligible.is_empty() {
            std::mem::take(&mut self.mempool)
        } else {
            let next = self.mined + 1;
            let pool = std::mem::take(&mut self.mempool);
            let mut ready = Vec::with_capacity(pool.len());
            for (id, tx) in pool {
                if self.tx_eligible.get(&id.0).is_none_or(|&h| h <= next) {
                    self.tx_eligible.remove(&id.0);
                    ready.push((id, tx));
                } else {
                    self.mempool.push((id, tx));
                }
            }
            ready
        };
        match self.config.mempool {
            None => candidates,
            Some(mp) => {
                let cap = mp.max_txs_per_block.max(1);
                candidates.sort_by_key(|(_, tx)| Reverse(tx.priority));
                if candidates.len() <= cap {
                    candidates
                } else {
                    let mut overflow = candidates.split_off(cap);
                    overflow.append(&mut self.mempool);
                    self.mempool = overflow;
                    candidates
                }
            }
        }
    }

    /// Advances time (plus `jitter_ms`, used for fork-branch timestamp skew)
    /// and executes `pending`, returning the block. State mutations (height,
    /// clock, storages, meter) happen here; what makes a block *canonical* —
    /// digest fold, checkpoint check, retention, snapshots — is the caller's
    /// job.
    fn execute_block(&mut self, pending: Vec<(TxId, Transaction)>, jitter_ms: u64) -> Block {
        self.now_ms += self.config.block_period_ms + jitter_ms;
        self.mined += 1;
        let number = self.mined;
        if let Some(fee) = self.config.fee {
            self.meter.set_price_permille(fee.price_permille(number));
        }
        let mut receipts = Vec::with_capacity(pending.len());
        let mut events = Vec::new();
        let mut call_records = Vec::new();
        for (tx_id, tx) in pending {
            let receipt = self.execute(tx_id, tx, number, &mut events, &mut call_records);
            receipts.push(receipt);
        }
        Block {
            number,
            time_ms: self.now_ms,
            receipts,
            events,
            call_records,
        }
    }

    /// Seals the next canonical block: select pending, execute, fold the
    /// digest, check the recovery checkpoint, retain, snapshot, and advance
    /// the confirmation ledger.
    fn seal_canonical_block(&mut self) {
        let pending = self.take_block_pending();
        let replay = self.config.reorg.map(|_| pending.clone());
        let block = self.execute_block(pending, 0);
        let sealed_ids: Vec<TxId> = if self.config.confirm_depth > 0 {
            block.receipts.iter().map(|r| r.tx_id).collect()
        } else {
            Vec::new()
        };
        self.digest_acc = fold_block_digest(&self.digest_acc, &block);
        if let Some((height, expected)) = self.checkpoint {
            if self.mined == height {
                self.checkpoint = None;
                assert_eq!(
                    self.chain_digest(),
                    expected,
                    "recovery re-execution diverged from the surviving chain \
                     at checkpoint height {height}: the replayed transaction \
                     stream is not byte-identical to the pre-crash run"
                );
            }
        }
        self.blocks.push(block);
        if let Some(retain) = self.config.retain_blocks {
            let retain = retain.max(1);
            if self.blocks.len() > retain {
                self.blocks.drain(..self.blocks.len() - retain);
            }
        }
        if let (Some(reorg), Some(txs)) = (self.config.reorg, replay) {
            self.recent_txs.push((self.mined, txs));
            self.snapshots.push(self.current_snapshot());
            let window = reorg.max_depth.max(1) + 1;
            if self.snapshots.len() > window {
                self.snapshots.drain(..self.snapshots.len() - window);
            }
            let oldest = self.snapshots.first().map(|s| s.mined).unwrap_or(0);
            self.recent_txs.retain(|(h, _)| *h > oldest);
        }
        if self.config.confirm_depth > 0 {
            // Only blocks that mined something enter the ledger: empty
            // blocks have nothing to acknowledge, and skipping them is what
            // lets `await_confirmations` terminate by mining empty blocks.
            if !sealed_ids.is_empty() {
                self.pending_confirm.push((self.mined, sealed_ids));
            }
            let frontier = self.confirmed_height();
            while self
                .pending_confirm
                .first()
                .is_some_and(|(h, _)| *h <= frontier)
            {
                let entry = self.pending_confirm.remove(0);
                self.confirmed_ready.push(entry);
            }
        }
    }

    /// Deepest rollback currently possible: bounded by the snapshot window,
    /// the retained block bodies, and — under
    /// [`ChainConfig::confirm_depth`] — the confirmation frontier
    /// (acknowledged blocks can never be undone).
    fn rollback_capacity(&self) -> usize {
        let Some(oldest) = self.snapshots.first().map(|s| s.mined) else {
            return 0;
        };
        let cap = ((self.mined - oldest) as usize).min(self.blocks.len());
        if self.config.confirm_depth > 0 {
            cap.min((self.mined - self.confirmed_height()) as usize)
        } else {
            cap
        }
    }

    /// Rolls back the last `depth` canonical blocks, restoring chain state
    /// (height, clock, storages, Gas meter, running digest) to just after
    /// the block at `height - depth` sealed, and returns the rolled-back
    /// blocks' transaction lists (oldest first) so the caller can re-commit
    /// them. The mempool is left untouched. Requires reorg mode
    /// ([`ChainConfig::reorg`]), which is what records the needed snapshots.
    ///
    /// # Errors
    ///
    /// [`ReorgError::PastRetainedWindow`] when `depth` exceeds the block
    /// bodies still retained under [`ChainConfig::retain_blocks`];
    /// [`ReorgError::PastSnapshotHorizon`] when no snapshot exists at the
    /// target height (deeper than the fork process keeps, or reorg mode is
    /// off).
    pub fn rollback(&mut self, depth: usize) -> Result<Vec<Vec<(TxId, Transaction)>>, ReorgError> {
        if depth == 0 {
            return Ok(Vec::new());
        }
        if depth > self.blocks.len() {
            return Err(ReorgError::PastRetainedWindow {
                requested: depth,
                retained: self.blocks.len(),
            });
        }
        let target = self.mined - depth as u64;
        self.rollback_to(target, depth)
    }

    /// Restores the snapshot at `target` height, dropping the canonical
    /// bodies above it; `requested` only labels the error.
    fn rollback_to(
        &mut self,
        target: u64,
        requested: usize,
    ) -> Result<Vec<Vec<(TxId, Transaction)>>, ReorgError> {
        if self.config.confirm_depth > 0 {
            // The frontier is judged against the canonical tip — the latest
            // snapshot's height, not `self.mined`, which the fork branch's
            // abandoned block has already bumped when this runs mid-reorg.
            let canonical_tip = self.snapshots.last().map(|s| s.mined).unwrap_or(self.mined);
            let frontier = canonical_tip.saturating_sub(self.config.confirm_depth);
            if target < frontier {
                return Err(ReorgError::PastConfirmationFrontier {
                    requested,
                    frontier,
                });
            }
        }
        let snap_idx = self
            .snapshots
            .iter()
            .position(|s| s.mined == target)
            .ok_or(ReorgError::PastSnapshotHorizon {
                requested,
                available: self.rollback_capacity(),
            })?;
        let replay: Vec<Vec<(TxId, Transaction)>> = self
            .recent_txs
            .iter()
            .filter(|(h, _)| *h > target)
            .map(|(_, txs)| txs.clone())
            .collect();
        let snap = self.snapshots[snap_idx].clone();
        self.snapshots.truncate(snap_idx + 1);
        self.recent_txs.retain(|(h, _)| *h <= target);
        // Unconfirmed ledger entries above the target are abandoned with
        // their blocks; they re-enter as the canonical branch re-commits.
        // Confirmed entries are never above the target — the frontier guard
        // above is what makes the `confirmed_ready` ledger settled.
        self.pending_confirm.retain(|(h, _)| *h <= target);
        self.blocks.retain(|b| b.number <= target);
        self.storages = snap.storages;
        self.meter = snap.meter;
        self.digest_acc = snap.digest_acc;
        self.mined = snap.mined;
        self.now_ms = snap.now_ms;
        Ok(replay)
    }

    /// The seeded fork: mine an abandoned fork block at the next height,
    /// roll back, re-commit the canonical branch, then seal the next height
    /// canonically with the original pending transactions. Net effect on the
    /// canonical chain: byte-identical to never having forked.
    fn run_reorg(&mut self, cfg: ReorgConfig) -> Result<(), BlockError> {
        let tip = self.mined;
        let next = tip + 1;
        let want = 1 + (seeded_mix(cfg.seed, next) % cfg.max_depth.max(1) as u64) as usize;
        let depth = want.min(self.rollback_capacity());
        let target = tip - depth as u64;
        let pending = std::mem::take(&mut self.mempool);
        // The fork branch: a divergent miner greedily seals `next` with a
        // skewed timestamp. Never folded into the canonical digest.
        let jitter =
            1 + seeded_mix(cfg.seed ^ 0x666f_726b, next) % self.config.block_period_ms.max(1);
        let fork = self.execute_block(pending.clone(), jitter);
        let fork_digest = fold_block_digest(&self.digest_acc, &fork);
        // The canonical branch wins: undo the fork block and `depth`
        // canonical ancestors in one restore.
        let replay = self.rollback_to(target, depth)?;
        let abandoned: Vec<TxId> = replay
            .iter()
            .flat_map(|txs| txs.iter().map(|(id, _)| *id))
            .collect();
        self.reorg_events.push(ReorgEvent {
            height: next,
            depth,
            fork_digest,
            abandoned,
            resubmitted: Vec::new(),
        });
        if grub_fault::should_trip(FaultPoint::MidReorgRollback) {
            // The process dies between rollback and re-commit: the chain is
            // consistent at `target`, the pending transactions are lost with
            // the process.
            self.mempool.clear();
            return Err(BlockError::Injected(FaultPoint::MidReorgRollback.name()));
        }
        // Re-commit the canonical branch block by block (identical pending
        // sets at identical heights ⇒ identical digests), then seal `next`.
        for txs in replay {
            debug_assert!(self.mempool.is_empty(), "re-commit must not mix blocks");
            let resubmitted: Vec<TxId> = txs.iter().map(|(id, _)| *id).collect();
            self.mempool = txs;
            self.seal_canonical_block();
            if let Some(event) = self.reorg_events.last_mut() {
                event.resubmitted.extend(resubmitted);
            }
        }
        if grub_fault::should_trip(FaultPoint::MidResubmission) {
            // The process dies after the canonical branch fully re-committed
            // but before the fork's pending transactions re-enter the
            // mempool: the chain is consistent at the original tip, the
            // pending transactions are lost with the process.
            return Err(BlockError::Injected(FaultPoint::MidResubmission.name()));
        }
        self.mempool = pending;
        self.seal_canonical_block();
        Ok(())
    }

    /// Every fork the seeded reorg process has executed so far.
    pub fn reorg_events(&self) -> &[ReorgEvent] {
        &self.reorg_events
    }

    /// The gas-price multiplier (permille of the flat schedule) the fee
    /// process dictates at `height` — [`grub_gas::BASE_PRICE_PERMILLE`]
    /// when no fee process is configured.
    pub fn fee_price_permille(&self, height: u64) -> u64 {
        match self.config.fee {
            Some(fee) => fee.price_permille(height),
            None => grub_gas::BASE_PRICE_PERMILLE,
        }
    }

    /// The gas-price multiplier charged by the most recently mined block
    /// (the price off-chain deciders can observe without predicting the
    /// future).
    pub fn current_fee_permille(&self) -> u64 {
        self.meter.price_permille()
    }

    fn execute(
        &mut self,
        tx_id: TxId,
        tx: Transaction,
        block_number: u64,
        events_out: &mut Vec<Event>,
        calls_out: &mut Vec<CallRecord>,
    ) -> Receipt {
        let before = self.meter.snapshot();
        self.meter.charge_tx(tx.envelope_layer, tx.input.len());
        let deployed = match self.registry.get(&tx.to) {
            Some(d) => d.clone(),
            None => {
                return Receipt {
                    tx_id,
                    block_number,
                    success: false,
                    output: Vec::new(),
                    error: Some(VmError::UnknownContract(tx.to).to_string()),
                    gas_used: gas_since(&self.meter, before),
                }
            }
        };
        let mut state = ExecState {
            storages: std::mem::take(&mut self.storages),
            meter: std::mem::take(&mut self.meter),
            pending_events: Vec::new(),
            journal: Vec::new(),
            call_records: vec![CallRecord {
                to: tx.to,
                func: tx.func.clone(),
                input: tx.input.clone(),
                block_number,
            }],
        };
        let result = {
            let mut ctx = CallContext {
                state: &mut state,
                registry: &self.registry,
                caller: tx.from,
                this: tx.to,
                origin: tx.from,
                block_number,
                now_ms: self.now_ms,
                layer: deployed.layer,
                depth: 0,
            };
            deployed.code.call(&mut ctx, &tx.func, &tx.input)
        };
        let receipt = match result {
            Ok(output) => {
                events_out.append(&mut state.pending_events);
                calls_out.append(&mut state.call_records);
                Receipt {
                    tx_id,
                    block_number,
                    success: true,
                    output,
                    error: None,
                    gas_used: 0, // patched below once the meter is restored
                }
            }
            Err(err) => {
                // Roll back every storage write this transaction made.
                for entry in state.journal.drain(..).rev() {
                    let storage = state.storages.entry(entry.contract).or_default();
                    match entry.prior {
                        Some(v) => {
                            storage.set(entry.key, v);
                        }
                        None => {
                            storage.remove(&entry.key);
                        }
                    }
                }
                state.pending_events.clear();
                Receipt {
                    tx_id,
                    block_number,
                    success: false,
                    output: Vec::new(),
                    error: Some(err.to_string()),
                    gas_used: 0,
                }
            }
        };
        self.storages = state.storages;
        self.meter = state.meter;
        let mut receipt = receipt;
        receipt.gas_used = gas_since(&self.meter, before);
        receipt
    }

    /// Executes a read-only call against current state without charging Gas
    /// or mutating anything — the equivalent of `eth_call`.
    ///
    /// # Errors
    ///
    /// Propagates the contract's [`VmError`].
    pub fn static_call(
        &self,
        from: Address,
        to: Address,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        let deployed = self
            .registry
            .get(&to)
            .cloned()
            .ok_or(VmError::UnknownContract(to))?;
        let mut state = ExecState {
            storages: self.storages.clone(),
            meter: GasMeter::with_schedule(*self.meter.schedule()),
            pending_events: Vec::new(),
            journal: Vec::new(),
            call_records: Vec::new(),
        };
        let mut ctx = CallContext {
            state: &mut state,
            registry: &self.registry,
            caller: from,
            this: to,
            origin: from,
            block_number: self.mined,
            now_ms: self.now_ms,
            layer: deployed.layer,
            depth: 0,
        };
        deployed.code.call(&mut ctx, func, input)
    }

    /// The retained block bodies — all mined blocks unless
    /// [`ChainConfig::retain_blocks`] trimmed the oldest.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Current block height (absolute: pruning never rewinds it).
    pub fn height(&self) -> u64 {
        self.mined
    }

    /// Simulated current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Height up to which blocks are final (`height - F`, saturating).
    pub fn finalized_height(&self) -> u64 {
        self.height().saturating_sub(self.config.finality_depth)
    }

    /// The confirmation frontier: height up to which mined blocks are
    /// acknowledged under [`ChainConfig::confirm_depth`] (`height - depth`,
    /// saturating — the tip itself at depth 0). Monotone non-decreasing
    /// across [`Blockchain::produce_block`] calls: a reorg never rolls the
    /// net height back, and the rollback clamp keeps forks above the
    /// frontier.
    pub fn confirmed_height(&self) -> u64 {
        self.height().saturating_sub(self.config.confirm_depth)
    }

    /// How many more blocks must be mined before every transaction mined so
    /// far is confirmed — zero when the pending-confirmation ledger is
    /// empty (always, at depth 0).
    pub fn confirmation_lag(&self) -> u64 {
        match self.pending_confirm.last() {
            Some((h, _)) => (h + self.config.confirm_depth).saturating_sub(self.mined),
            None => 0,
        }
    }

    /// Mines (possibly empty) blocks until every mined transaction is
    /// confirmed — what an epoch boundary calls before acknowledging writes
    /// to the DO/SP layers. A no-op at depth 0. Terminates because empty
    /// blocks never enter the pending ledger, so each block mined strictly
    /// shrinks the lag.
    ///
    /// # Errors
    ///
    /// Propagates [`BlockError`] from block production (an armed crash
    /// point, or an impossible rollback).
    pub fn await_confirmations(&mut self) -> Result<(), BlockError> {
        while self.confirmation_lag() > 0 {
            self.try_produce_block()?;
        }
        Ok(())
    }

    /// Drains the confirmed-block ledger: `(height, txs)` entries for every
    /// block whose depth passed [`ChainConfig::confirm_depth`] since the
    /// last drain, ascending by height with no gaps and no duplicates.
    /// Always empty at depth 0.
    pub fn drain_confirmed(&mut self) -> Vec<(u64, Vec<TxId>)> {
        std::mem::take(&mut self.confirmed_ready)
    }

    /// Guards the documented precondition of the `_since` queries under
    /// [`ChainConfig::retain_blocks`]: every block in `(from_block, ..]`
    /// must still be retained, or the query would silently omit pruned
    /// history. Debug-only, like the workspace's Gas-arithmetic guards —
    /// the production schedulers advance their cursors every epoch, far
    /// inside any sane window.
    fn assert_cursor_in_window(&self, from_block: u64) {
        debug_assert!(
            from_block >= self.mined
                || self
                    .blocks
                    .first()
                    .is_none_or(|b| b.number <= from_block + 1),
            "query cursor {from_block} predates the oldest retained block \
             {:?} (height {}): retain_blocks pruned history this poll still \
             needs — widen the window or poll more often",
            self.blocks.first().map(|b| b.number),
            self.mined,
        );
    }

    /// Events matching `contract` and `name` in blocks `(from_block, ..]`.
    ///
    /// This is what off-chain watchdogs (the SP daemon, the DO monitor) poll,
    /// standing in for Ethereum's `eth_getLogs`.
    pub fn events_since(&self, from_block: u64, contract: Address, name: &str) -> Vec<&Event> {
        self.assert_cursor_in_window(from_block);
        self.blocks
            .iter()
            .filter(|b| b.number > from_block)
            .flat_map(|b| b.events.iter())
            .filter(|e| e.contract == contract && e.name == name)
            .collect()
    }

    /// All events in blocks `(from_block, ..]`, for trace federation.
    pub fn all_events_since(&self, from_block: u64) -> Vec<&Event> {
        self.assert_cursor_in_window(from_block);
        self.blocks
            .iter()
            .filter(|b| b.number > from_block)
            .flat_map(|b| b.events.iter())
            .collect()
    }

    /// Contract invocations of contract `to` in blocks `(from_block, ..]` —
    /// the monitor's view of the call history (paper §3.2).
    pub fn calls_since(&self, from_block: u64, to: Address) -> Vec<&CallRecord> {
        self.assert_cursor_in_window(from_block);
        self.blocks
            .iter()
            .filter(|b| b.number > from_block)
            .flat_map(|b| b.call_records.iter())
            .filter(|c| c.to == to)
            .collect()
    }

    /// The Gas meter (read-only).
    pub fn meter(&self) -> &GasMeter {
        &self.meter
    }

    /// Zeroes the Gas meter — harnesses call this after provisioning so the
    /// reported numbers cover steady-state operation only.
    ///
    /// In reorg mode this also re-baselines the rollback snapshots: a fork
    /// must never roll the chain back across a meter reset, or the restored
    /// meter would resurrect pre-reset totals and corrupt the digest.
    pub fn meter_reset(&mut self) {
        self.meter.reset();
        if self.config.reorg.is_some() {
            self.snapshots.clear();
            self.recent_txs.clear();
            self.snapshots.push(self.current_snapshot());
        }
    }

    /// Snapshot of Gas totals, for epoch-by-epoch reporting.
    pub fn gas_snapshot(&self) -> GasSnapshot {
        self.meter.snapshot()
    }

    /// Unmetered storage inspection, for tests and assertions.
    pub fn storage(&self, contract: Address) -> Option<&ContractStorage> {
        self.storages.get(&contract)
    }

    /// Arms a one-shot recovery oracle: when this chain next reaches
    /// `height`, its [`Blockchain::chain_digest`] must equal `expected`.
    ///
    /// Crash-recovery tests take `(height, digest)` from the chain that
    /// survived an injected crash and arm it on the fresh re-execution
    /// chain, so a divergence is caught *at the crash point* rather than as
    /// an opaque end-of-run digest mismatch.
    ///
    /// # Panics
    ///
    /// [`Blockchain::produce_block`] panics when the checkpoint height is
    /// reached with a different digest. Arming at or below the current
    /// height panics immediately — the oracle could never fire.
    pub fn expect_digest_at(&mut self, height: u64, expected: grub_crypto::Hash32) {
        assert!(
            height > self.mined,
            "checkpoint height {height} is not ahead of current height {}",
            self.mined
        );
        self.checkpoint = Some((height, expected));
    }

    /// Canonical digest of the whole mined chain: every block's number and
    /// time, every receipt (id, success, error, output, Gas), every event,
    /// and every call record, folded block by block into a running SHA-256
    /// chain as blocks are sealed, finalized here with the block count and
    /// the meter's per-layer totals.
    ///
    /// Two runs whose `chain_digest` agree executed byte-for-byte identical
    /// transactions with identical results — the equivalence the parallel
    /// shard executor's deterministic merge is contracted to preserve
    /// against the sequential pipeline (asserted in `tests/engine.rs`).
    /// Because the fold is incremental, the digest is O(1) to read at any
    /// height and survives [`ChainConfig::retain_blocks`] pruning: it
    /// always covers *every* block ever mined, retained or not.
    pub fn chain_digest(&self) -> grub_crypto::Hash32 {
        let mut h = grub_crypto::Sha256::new();
        h.update(self.digest_acc.as_bytes());
        h.update(&self.mined.to_le_bytes());
        let snap = self.meter.snapshot();
        h.update(&snap.feed.to_le_bytes());
        h.update(&snap.app.to_le_bytes());
        h.update(&snap.user.to_le_bytes());
        h.finalize()
    }
}

/// One step of the incremental chain digest: `acc' = SHA-256(acc ‖
/// canonical(block))`, the same per-block encoding the monolithic digest
/// used (number, time, receipts, events, call records, all
/// length-prefixed).
fn fold_block_digest(acc: &grub_crypto::Hash32, block: &Block) -> grub_crypto::Hash32 {
    let mut h = grub_crypto::Sha256::new();
    let u64le = |h: &mut grub_crypto::Sha256, v: u64| h.update(&v.to_le_bytes());
    let bytes = |h: &mut grub_crypto::Sha256, b: &[u8]| {
        h.update(&(b.len() as u64).to_le_bytes());
        h.update(b);
    };
    h.update(acc.as_bytes());
    u64le(&mut h, block.number);
    u64le(&mut h, block.time_ms);
    u64le(&mut h, block.receipts.len() as u64);
    for r in &block.receipts {
        u64le(&mut h, r.tx_id.0);
        h.update(&[u8::from(r.success)]);
        bytes(&mut h, r.error.as_deref().unwrap_or("").as_bytes());
        bytes(&mut h, &r.output);
        u64le(&mut h, r.gas_used);
    }
    u64le(&mut h, block.events.len() as u64);
    for e in &block.events {
        bytes(&mut h, e.contract.as_bytes());
        bytes(&mut h, e.name.as_bytes());
        bytes(&mut h, &e.data);
    }
    u64le(&mut h, block.call_records.len() as u64);
    for c in &block.call_records {
        bytes(&mut h, c.to.as_bytes());
        bytes(&mut h, c.func.as_bytes());
        bytes(&mut h, &c.input);
    }
    h.finalize()
}

/// A commit-ordering gate for multi-lane schedulers: within one round,
/// lanes (shards) must claim their block-commit slots in strictly
/// increasing canonical order.
///
/// A parallel executor stages lanes concurrently, so staging can *finish*
/// in any order; the gate is what the merge stage threads its commits
/// through to turn "finished first" back into "committed in canonical
/// order". Claims out of order — the bug class where an eager lane would
/// interleave its blocks into another lane's round and silently fork the
/// chain layout — are rejected with a typed [`CommitOrderError`] instead of
/// corrupting the run.
///
/// The gate is deliberately chain-agnostic state (it does not borrow the
/// [`Blockchain`]): the merge loop claims the lane first, then performs
/// that lane's submits and block seals.
///
/// ```
/// use grub_chain::CommitGate;
///
/// let mut gate = CommitGate::new(4);
/// gate.claim(1).unwrap(); // lanes may be sparse…
/// gate.claim(3).unwrap(); // …but must increase
/// assert!(gate.claim(2).is_err());
/// gate.begin_round();
/// gate.claim(0).unwrap(); // a new round starts over
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitGate {
    lanes: usize,
    last: Option<usize>,
}

/// A lane claimed its commit slot out of canonical order (or out of range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOrderError {
    /// The lane that tried to commit.
    pub lane: usize,
    /// The lane that already holds or passed the slot this round, if any.
    pub committed: Option<usize>,
    /// Total number of lanes the gate was opened over.
    pub lanes: usize,
}

impl std::fmt::Display for CommitOrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.committed {
            Some(last) => write!(
                f,
                "lane {} claimed its commit slot out of canonical order \
                 (lane {} already committed this round, {} lanes total)",
                self.lane, last, self.lanes
            ),
            None => write!(
                f,
                "lane {} is out of range ({} lanes total)",
                self.lane, self.lanes
            ),
        }
    }
}

impl std::error::Error for CommitOrderError {}

impl CommitGate {
    /// Opens a gate over `lanes` canonical lanes with no slot claimed.
    pub fn new(lanes: usize) -> Self {
        CommitGate { lanes, last: None }
    }

    /// Starts a new round: every lane may claim again, in order.
    pub fn begin_round(&mut self) {
        self.last = None;
    }

    /// Claims the commit slot for `lane`.
    ///
    /// # Errors
    ///
    /// Rejects a lane at or below the round's last claimed lane, and lanes
    /// outside `0..lanes`.
    pub fn claim(&mut self, lane: usize) -> Result<(), CommitOrderError> {
        if lane >= self.lanes {
            return Err(CommitOrderError {
                lane,
                committed: None,
                lanes: self.lanes,
            });
        }
        if let Some(last) = self.last {
            if lane <= last {
                return Err(CommitOrderError {
                    lane,
                    committed: Some(last),
                    lanes: self.lanes,
                });
            }
        }
        self.last = Some(lane);
        Ok(())
    }
}

fn gas_since(meter: &GasMeter, before: GasSnapshot) -> u64 {
    let now = meter.snapshot();
    let total = |s: &GasSnapshot| {
        grub_gas::checked_add_gas(grub_gas::checked_add_gas(s.feed, s.app), s.user)
    };
    grub_gas::checked_sub_gas(total(&now), total(&before))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Decoder, Encoder};
    use grub_gas::CostKind;

    /// A contract exercising storage, events, calls and reverts.
    struct Widget;

    impl Contract for Widget {
        fn call(
            &self,
            ctx: &mut CallContext<'_>,
            func: &str,
            input: &[u8],
        ) -> Result<Vec<u8>, VmError> {
            match func {
                "set" => {
                    let mut dec = Decoder::new(input);
                    let v = dec.u64()?;
                    ctx.sstore_u64(b"value", v)?;
                    ctx.emit("ValueSet", input.to_vec());
                    Ok(Vec::new())
                }
                "get" => {
                    let v = ctx.sload_u64(b"value")?.unwrap_or(0);
                    let mut enc = Encoder::new();
                    enc.u64(v);
                    Ok(enc.finish())
                }
                "fail_after_write" => {
                    ctx.sstore_u64(b"value", 999)?;
                    Err(VmError::Revert("deliberate".into()))
                }
                "call_self_get" => {
                    let this = ctx.this;
                    ctx.call(this, "get", &[])
                }
                _ => Err(VmError::UnknownFunction(func.to_owned())),
            }
        }
    }

    fn setup() -> (Blockchain, Address, Address) {
        let mut chain = Blockchain::new();
        let widget = Address::derive("widget");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        (chain, widget, Address::derive("user"))
    }

    #[test]
    fn set_then_get_round_trips() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(42);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        let out = chain.static_call(user, widget, "get", &[]).unwrap();
        assert_eq!(Decoder::new(&out).u64().unwrap(), 42);
    }

    #[test]
    fn failed_tx_rolls_back_storage() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(1);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        chain.submit(Transaction::new(
            user,
            widget,
            "fail_after_write",
            Vec::new(),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(!block.receipts[0].success);
        assert!(block.receipts[0]
            .error
            .as_deref()
            .unwrap()
            .contains("deliberate"));
        let out = chain.static_call(user, widget, "get", &[]).unwrap();
        assert_eq!(
            Decoder::new(&out).u64().unwrap(),
            1,
            "write must be rolled back"
        );
    }

    #[test]
    fn failed_tx_emits_no_events() {
        let (mut chain, widget, user) = setup();
        chain.submit(Transaction::new(
            user,
            widget,
            "fail_after_write",
            Vec::new(),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(block.events.is_empty());
    }

    #[test]
    fn gas_charges_match_schedule() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(7);
        let payload = enc.finish();
        let payload_len = payload.len();
        chain.submit(Transaction::new(user, widget, "set", payload, Layer::User));
        let schedule = *chain.meter().schedule();
        let block = chain.produce_block();
        // Envelope + one fresh 1-word insert + LOG(1 topic, 8 bytes payload).
        let expected = schedule.tx_cost_bytes(payload_len)
            + schedule.storage_insert(1)
            + schedule.log_cost(1, 8);
        assert_eq!(block.receipts[0].gas_used, expected);
        // Envelope went to User, storage to Application.
        assert_eq!(
            chain
                .meter()
                .kind_total(Layer::User, CostKind::Transaction)
                .amount(),
            schedule.tx_cost_bytes(payload_len)
        );
        assert_eq!(
            chain
                .meter()
                .kind_total(Layer::Application, CostKind::StorageInsert)
                .amount(),
            schedule.storage_insert(1)
        );
    }

    #[test]
    fn update_cheaper_than_insert() {
        let (mut chain, widget, user) = setup();
        let mk = |v: u64| {
            let mut enc = Encoder::new();
            enc.u64(v);
            enc.finish()
        };
        chain.submit(Transaction::new(user, widget, "set", mk(1), Layer::User));
        let g1 = chain.produce_block().receipts[0].gas_used;
        chain.submit(Transaction::new(user, widget, "set", mk(2), Layer::User));
        let g2 = chain.produce_block().receipts[0].gas_used;
        let schedule = *chain.meter().schedule();
        assert_eq!(
            g1 - g2,
            schedule.storage_insert(1) - schedule.storage_update(1)
        );
    }

    #[test]
    fn events_are_queryable_by_name_and_block() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(5);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        let events = chain.events_since(0, widget, "ValueSet");
        assert_eq!(events.len(), 1);
        assert!(chain.events_since(1, widget, "ValueSet").is_empty());
        assert!(chain.events_since(0, widget, "Other").is_empty());
    }

    #[test]
    fn internal_call_works() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(9);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        chain.submit(Transaction::new(
            user,
            widget,
            "call_self_get",
            Vec::new(),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(block.receipts[0].success);
        assert_eq!(Decoder::new(&block.receipts[0].output).u64().unwrap(), 9);
    }

    #[test]
    fn unknown_contract_fails_cleanly() {
        let (mut chain, _widget, user) = setup();
        chain.submit(Transaction::new(
            user,
            Address::derive("nowhere"),
            "set",
            Vec::new(),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(!block.receipts[0].success);
    }

    #[test]
    fn block_time_advances_by_period() {
        let (mut chain, _, _) = setup();
        let period = chain.config().block_period_ms;
        chain.produce_block();
        chain.produce_block();
        assert_eq!(chain.now_ms(), 2 * period);
        assert_eq!(chain.height(), 2);
    }

    #[test]
    fn finality_lags_by_depth() {
        let mut chain = Blockchain::with_config(ChainConfig {
            block_period_ms: 1000,
            finality_depth: 3,
            propagation_ms: 100,
            ..ChainConfig::default()
        });
        for _ in 0..5 {
            chain.produce_block();
        }
        assert_eq!(chain.finalized_height(), 2);
    }

    #[test]
    #[should_panic(expected = "already deployed")]
    fn double_deploy_panics() {
        let (mut chain, widget, _) = setup();
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
    }

    #[test]
    fn static_call_charges_no_gas() {
        let (chain, widget, user) = setup();
        let before = chain.meter().total();
        let _ = chain.static_call(user, widget, "get", &[]);
        assert_eq!(chain.meter().total(), before);
    }

    #[test]
    fn chain_digest_tracks_execution_not_time_of_call() {
        let run = || {
            let (mut chain, widget, user) = setup();
            let mut enc = Encoder::new();
            enc.u64(11);
            chain.submit(Transaction::new(
                user,
                widget,
                "set",
                enc.finish(),
                Layer::User,
            ));
            chain.produce_block();
            chain
        };
        let a = run();
        let b = run();
        assert_eq!(a.chain_digest(), b.chain_digest(), "same run, same digest");
        // Any divergence — even an extra empty block — changes the digest.
        let mut c = run();
        c.produce_block();
        assert_ne!(a.chain_digest(), c.chain_digest());
        // Reading the digest is pure.
        assert_eq!(a.chain_digest(), a.chain_digest());
    }

    /// Queues a `set(value)` transaction.
    fn submit_set(chain: &mut Blockchain, widget: Address, user: Address, value: u64) -> TxId {
        let mut enc = Encoder::new();
        enc.u64(value);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ))
    }

    #[test]
    fn reorg_replay_reproduces_straight_line_digest() {
        let reorg_cfg = ChainConfig::default().reorg(7, 3, 2);
        let mut forked = Blockchain::with_config(reorg_cfg);
        let mut straight = Blockchain::new();
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        for chain in [&mut forked, &mut straight] {
            chain.deploy(widget, Rc::new(Widget), Layer::Application);
        }
        for round in 0..12 {
            for chain in [&mut forked, &mut straight] {
                submit_set(chain, widget, user, round);
                chain.produce_block();
            }
        }
        assert!(
            !forked.reorg_events().is_empty(),
            "the fork process must have fired"
        );
        for ev in forked.reorg_events() {
            assert!(
                ev.depth >= 1 && ev.depth <= 2,
                "depth bounded: {}",
                ev.depth
            );
            assert_ne!(
                ev.fork_digest,
                forked.chain_digest(),
                "the abandoned branch is never the canonical digest"
            );
            assert_eq!(
                ev.resubmitted, ev.abandoned,
                "a completed reorg resubmits exactly the abandoned set"
            );
            assert!(
                !ev.abandoned.is_empty(),
                "every rolled-back block here carried a transaction"
            );
        }
        assert_eq!(forked.height(), straight.height());
        assert_eq!(
            forked.chain_digest(),
            straight.chain_digest(),
            "reorg-and-replay must be byte-identical to the straight-line run"
        );
    }

    #[test]
    fn explicit_rollback_returns_replayable_blocks() {
        // Fork period far beyond the test so only the explicit rollback runs.
        let mut chain = Blockchain::with_config(ChainConfig::default().reorg(1, 1_000_000, 4));
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        for v in 0..6 {
            submit_set(&mut chain, widget, user, v);
            chain.produce_block();
        }
        let tip_digest = chain.chain_digest();
        let tip_height = chain.height();
        let replay = chain.rollback(2).expect("rollback within the window");
        assert_eq!(
            replay.len(),
            2,
            "one transaction list per rolled-back block"
        );
        assert_eq!(chain.height(), tip_height - 2);
        assert_ne!(chain.chain_digest(), tip_digest);
        for txs in replay {
            chain.mempool = txs;
            chain.produce_block();
        }
        assert_eq!(chain.height(), tip_height);
        assert_eq!(
            chain.chain_digest(),
            tip_digest,
            "re-committing the returned blocks restores the canonical chain"
        );
    }

    #[test]
    fn rollback_past_retained_window_is_a_typed_error() {
        let mut config = ChainConfig::default().reorg(1, 1_000_000, 8);
        config.retain_blocks = Some(2);
        let mut chain = Blockchain::with_config(config);
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        for v in 0..6 {
            submit_set(&mut chain, widget, user, v);
            chain.produce_block();
        }
        assert_eq!(
            chain.rollback(5),
            Err(ReorgError::PastRetainedWindow {
                requested: 5,
                retained: 2,
            }),
            "pruned history cannot be re-committed"
        );
        // The auto fork process clamps to the same capacity instead of erroring.
        assert!(chain.rollback_capacity() <= 2);
    }

    #[test]
    fn rollback_without_reorg_mode_lacks_snapshots() {
        let (mut chain, widget, user) = setup();
        for v in 0..3 {
            submit_set(&mut chain, widget, user, v);
            chain.produce_block();
        }
        assert_eq!(
            chain.rollback(1),
            Err(ReorgError::PastSnapshotHorizon {
                requested: 1,
                available: 0,
            }),
            "snapshots are only recorded in reorg mode"
        );
    }

    #[test]
    fn rollback_deeper_than_snapshot_window_is_a_typed_error() {
        let mut chain = Blockchain::with_config(ChainConfig::default().reorg(1, 1_000_000, 2));
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        for v in 0..8 {
            submit_set(&mut chain, widget, user, v);
            chain.produce_block();
        }
        let err = chain.rollback(5).unwrap_err();
        assert!(
            matches!(
                err,
                ReorgError::PastSnapshotHorizon {
                    requested: 5,
                    available: 2
                }
            ),
            "snapshot window is max_depth deep: {err:?}"
        );
    }

    #[test]
    fn meter_reset_rebaselines_rollback_snapshots() {
        let mut chain = Blockchain::with_config(ChainConfig::default().reorg(1, 1_000_000, 4));
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        for v in 0..3 {
            submit_set(&mut chain, widget, user, v);
            chain.produce_block();
        }
        chain.meter_reset();
        assert!(
            matches!(
                chain.rollback(1),
                Err(ReorgError::PastSnapshotHorizon { .. })
            ),
            "a fork must never cross a meter reset"
        );
    }

    #[test]
    fn congested_mempool_splits_blocks_by_priority() {
        let mut capped = Blockchain::with_config(ChainConfig::default().mempool(2));
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        capped.deploy(widget, Rc::new(Widget), Layer::Application);
        let mut enc = Encoder::new();
        enc.u64(1);
        let payload = enc.finish();
        let mut ids = Vec::new();
        for priority in [0u8, 1, 2, 0, 2] {
            let tx = Transaction::new(user, widget, "set", payload.clone(), Layer::User)
                .with_priority(priority);
            ids.push(capped.submit(tx));
        }
        let first: Vec<TxId> = capped
            .produce_block()
            .receipts
            .iter()
            .map(|r| r.tx_id)
            .collect();
        assert_eq!(
            first,
            vec![ids[2], ids[4]],
            "highest priority mines first; ties keep submission order"
        );
        let second: Vec<TxId> = capped
            .produce_block()
            .receipts
            .iter()
            .map(|r| r.tx_id)
            .collect();
        assert_eq!(second, vec![ids[1], ids[0]]);
        let third: Vec<TxId> = capped
            .produce_block()
            .receipts
            .iter()
            .map(|r| r.tx_id)
            .collect();
        assert_eq!(third, vec![ids[3]], "overflow drains in later blocks");
        assert_eq!(capped.mempool_len(), 0);
    }

    #[test]
    fn fee_process_scales_receipt_gas_per_block() {
        let fee = grub_gas::FeeProcess::step(5);
        let mut chain = Blockchain::with_config(ChainConfig::default().fee(fee));
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        let mut flat = Blockchain::new();
        flat.deploy(widget, Rc::new(Widget), Layer::Application);
        let mut saw_cheap = false;
        let mut saw_dear = false;
        for v in 0..20 {
            submit_set(&mut chain, widget, user, v);
            submit_set(&mut flat, widget, user, v);
            let price = chain.fee_price_permille(chain.height() + 1);
            let priced = chain.produce_block().receipts[0].gas_used;
            let base = flat.produce_block().receipts[0].gas_used;
            // Charges scale individually (each truncating), so bound the
            // block total instead of demanding one exact product.
            assert!(
                priced <= base * price / 1000 && priced + 8 > base * price / 1000,
                "receipt gas ≈ flat cost × price: {priced} vs {base} × {price}‰"
            );
            assert_eq!(chain.current_fee_permille(), price);
            saw_cheap |= price < 1000;
            saw_dear |= price > 1000;
        }
        assert!(saw_cheap && saw_dear, "the step regime visits both halves");
    }

    #[test]
    fn env_realism_knobs_parse() {
        // Env manipulation is process-wide; run the combinations serially.
        let _guard = grub_fault::injection_lock();
        std::env::set_var("GRUB_REORG", "3:9:4");
        std::env::set_var("GRUB_FEE_SCHEDULE", "step:2");
        std::env::set_var("GRUB_MEMPOOL", "6");
        std::env::set_var("GRUB_CONFIRM_DEPTH", "3");
        std::env::set_var("GRUB_INCLUSION_LATENCY", "2:11");
        let cfg = ChainConfig::default().with_env_realism();
        std::env::remove_var("GRUB_REORG");
        std::env::remove_var("GRUB_FEE_SCHEDULE");
        std::env::remove_var("GRUB_MEMPOOL");
        std::env::remove_var("GRUB_CONFIRM_DEPTH");
        std::env::remove_var("GRUB_INCLUSION_LATENCY");
        assert_eq!(
            cfg.reorg,
            Some(ReorgConfig {
                seed: 3,
                period: 9,
                max_depth: 4,
            })
        );
        assert_eq!(cfg.fee, Some(grub_gas::FeeProcess::step(2)));
        assert_eq!(
            cfg.mempool,
            Some(MempoolConfig {
                max_txs_per_block: 6
            })
        );
        assert_eq!(cfg.confirm_depth, 3);
        assert_eq!(
            cfg.latency,
            Some(LatencyConfig {
                seed: 11,
                max_delay_blocks: 2,
            })
        );
        // A bare max-delay defaults the seed to 0.
        std::env::set_var("GRUB_INCLUSION_LATENCY", "1");
        let bare = ChainConfig::default().with_env_realism();
        std::env::remove_var("GRUB_INCLUSION_LATENCY");
        assert_eq!(
            bare.latency,
            Some(LatencyConfig {
                seed: 0,
                max_delay_blocks: 1,
            })
        );
        let off = ChainConfig::default().with_env_realism();
        assert_eq!(off, ChainConfig::default());
    }

    #[test]
    fn inclusion_latency_gates_mining_deterministically() {
        let run = || {
            let mut chain = Blockchain::with_config(ChainConfig::default().latency(5, 2));
            let widget = Address::derive("widget");
            let user = Address::derive("user");
            chain.deploy(widget, Rc::new(Widget), Layer::Application);
            let mut ids = Vec::new();
            for v in 0..6 {
                ids.push(submit_set(&mut chain, widget, user, v));
            }
            let mut mined_at = Vec::new();
            while chain.mempool_len() > 0 {
                let block = chain.produce_block();
                for r in &block.receipts {
                    mined_at.push((r.tx_id, r.block_number));
                }
            }
            (ids, mined_at, chain.chain_digest())
        };
        let (ids, mined_at, digest) = run();
        assert_eq!(mined_at.len(), ids.len(), "every submission mines");
        assert!(
            mined_at.iter().any(|(_, b)| *b > 1),
            "some transactions straddle into later blocks"
        );
        let (_, mined_again, digest_again) = run();
        assert_eq!(mined_at, mined_again, "the delay schedule is seeded");
        assert_eq!(digest, digest_again);
        // Latency off mines everything in the very next block.
        let (mut flat, widget, user) = setup();
        for v in 0..6 {
            submit_set(&mut flat, widget, user, v);
        }
        assert_eq!(flat.produce_block().receipts.len(), 6);
    }

    #[test]
    fn latency_and_congestion_compose_with_reorgs_digest_transparently() {
        let base = ChainConfig::default().latency(5, 2).mempool(2);
        let mut forked = Blockchain::with_config(base.reorg(7, 3, 2));
        let mut straight = Blockchain::with_config(base);
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        for chain in [&mut forked, &mut straight] {
            chain.deploy(widget, Rc::new(Widget), Layer::Application);
        }
        for round in 0..14 {
            for chain in [&mut forked, &mut straight] {
                submit_set(chain, widget, user, round);
                chain.produce_block();
            }
        }
        // Drain the delayed tails identically.
        for chain in [&mut forked, &mut straight] {
            while chain.mempool_len() > 0 {
                chain.produce_block();
            }
        }
        assert!(!forked.reorg_events().is_empty(), "forks fired");
        for ev in forked.reorg_events() {
            assert_eq!(ev.resubmitted, ev.abandoned, "no lost or extra writes");
        }
        assert_eq!(forked.height(), straight.height());
        assert_eq!(
            forked.chain_digest(),
            straight.chain_digest(),
            "reorg + latency + congestion must still replay byte-identically"
        );
    }

    #[test]
    fn confirmation_ledger_drains_in_order_without_gaps() {
        let mut chain =
            Blockchain::with_config(ChainConfig::default().confirm_depth(3).latency(5, 1));
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        let mut submitted = Vec::new();
        let mut confirmed: Vec<(u64, Vec<TxId>)> = Vec::new();
        for v in 0..10 {
            submitted.push(submit_set(&mut chain, widget, user, v));
            chain.produce_block();
            confirmed.extend(chain.drain_confirmed());
        }
        assert!(
            chain.confirmation_lag() > 0,
            "the tip blocks are not yet three deep"
        );
        chain.await_confirmations().expect("no faults armed");
        confirmed.extend(chain.drain_confirmed());
        assert_eq!(chain.confirmation_lag(), 0);
        assert_eq!(
            chain.confirmed_height(),
            chain.height() - 3,
            "the frontier trails the tip by the configured depth"
        );
        let heights: Vec<u64> = confirmed.iter().map(|(h, _)| *h).collect();
        let mut sorted = heights.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(heights, sorted, "ascending heights, no duplicates");
        let mut all_confirmed: Vec<TxId> = confirmed.into_iter().flat_map(|(_, txs)| txs).collect();
        all_confirmed.sort_unstable_by_key(|id| id.0);
        assert_eq!(
            all_confirmed, submitted,
            "every submitted transaction confirms exactly once"
        );
    }

    #[test]
    fn confirm_depth_clamps_reorg_depth_and_keeps_frontier_monotone() {
        // max_depth 6 would roll back far deeper than the confirmation
        // depth allows; the clamp must keep every fork above the frontier.
        let mut chain =
            Blockchain::with_config(ChainConfig::default().reorg(9, 4, 6).confirm_depth(2));
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        let mut last_frontier = 0;
        for v in 0..20 {
            submit_set(&mut chain, widget, user, v);
            chain.produce_block();
            assert!(
                chain.confirmed_height() >= last_frontier,
                "the confirmation frontier never regresses"
            );
            last_frontier = chain.confirmed_height();
        }
        assert!(!chain.reorg_events().is_empty(), "forks fired");
        for ev in chain.reorg_events() {
            assert!(
                ev.depth <= 2,
                "rollback depth {} crossed the confirmation frontier",
                ev.depth
            );
        }
    }

    #[test]
    fn rollback_past_confirmation_frontier_is_a_typed_error() {
        let mut chain = Blockchain::with_config(
            ChainConfig::default()
                .reorg(1, 1_000_000, 8)
                .confirm_depth(2),
        );
        let widget = Address::derive("widget");
        let user = Address::derive("user");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        for v in 0..8 {
            submit_set(&mut chain, widget, user, v);
            chain.produce_block();
        }
        assert_eq!(
            chain.rollback(5),
            Err(ReorgError::PastConfirmationFrontier {
                requested: 5,
                frontier: 6,
            }),
            "acknowledged blocks can never be undone"
        );
        // Rolling back exactly to the frontier is still legal.
        let replay = chain
            .rollback(2)
            .expect("the unconfirmed window rolls back");
        assert_eq!(replay.len(), 2);
    }

    #[test]
    fn pruned_chain_keeps_absolute_height_and_full_digest() {
        let run = |retain: Option<usize>| {
            let mut chain = Blockchain::with_config(ChainConfig {
                retain_blocks: retain,
                ..ChainConfig::default()
            });
            let widget = Address::derive("widget");
            chain.deploy(widget, Rc::new(Widget), Layer::Application);
            let user = Address::derive("user");
            for v in 0..20u64 {
                let mut enc = Encoder::new();
                enc.u64(v);
                chain.submit(Transaction::new(
                    user,
                    widget,
                    "set",
                    enc.finish(),
                    Layer::User,
                ));
                chain.produce_block();
            }
            chain
        };
        let full = run(None);
        let pruned = run(Some(4));
        // Only the oldest bodies aged out; the ledger itself is unchanged.
        assert_eq!(full.blocks().len(), 20);
        assert_eq!(pruned.blocks().len(), 4);
        assert_eq!(pruned.height(), 20, "pruning never rewinds the height");
        assert_eq!(pruned.blocks()[0].number, 17);
        assert_eq!(
            full.chain_digest(),
            pruned.chain_digest(),
            "the running digest covers every mined block, retained or not"
        );
        // Retained-window queries still work by absolute block number.
        assert_eq!(
            pruned
                .events_since(16, Address::derive("widget"), "ValueSet")
                .len(),
            4
        );
        // State (and static calls against it) is untouched by pruning.
        let out = pruned.static_call(
            Address::derive("user"),
            Address::derive("widget"),
            "get",
            &[],
        );
        assert_eq!(Decoder::new(&out.unwrap()).u64().unwrap(), 19);
    }

    #[test]
    fn digest_checkpoint_passes_on_identical_replay() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(3);
        let payload = enc.finish();
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            payload.clone(),
            Layer::User,
        ));
        chain.produce_block();
        let oracle = (chain.height(), chain.chain_digest());
        // A fresh chain replaying the same stream sails through the oracle.
        let (mut replay, widget, user) = setup();
        replay.expect_digest_at(oracle.0, oracle.1);
        replay.submit(Transaction::new(user, widget, "set", payload, Layer::User));
        replay.produce_block();
        assert_eq!(replay.chain_digest(), oracle.1);
    }

    #[test]
    #[should_panic(expected = "diverged from the surviving chain")]
    fn digest_checkpoint_panics_on_divergent_replay() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(3);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        let oracle = (chain.height(), chain.chain_digest());
        let (mut replay, widget, user) = setup();
        replay.expect_digest_at(oracle.0, oracle.1);
        let mut enc = Encoder::new();
        enc.u64(4); // different payload → different digest at the checkpoint
        replay.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        replay.produce_block();
    }

    #[test]
    fn commit_gate_enforces_canonical_lane_order() {
        let mut gate = CommitGate::new(3);
        gate.claim(0).unwrap();
        gate.claim(2).unwrap();
        let err = gate.claim(1).unwrap_err();
        assert_eq!(err.committed, Some(2));
        assert!(err.to_string().contains("canonical order"));
        // Same lane twice is likewise an ordering violation.
        assert!(gate.claim(2).is_err());
        // Out-of-range lanes are rejected outright.
        assert!(gate.claim(3).is_err());
        // A fresh round resets the order.
        gate.begin_round();
        gate.claim(1).unwrap();
    }
}
