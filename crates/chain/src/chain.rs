//! The single-chain simulator: mempool, blocks, receipts, events, finality.

use std::collections::HashMap;
use std::rc::Rc;

use grub_gas::{GasMeter, GasSnapshot, Layer};

use crate::contract::{CallContext, CallRecord, Contract, Deployed, ExecState, VmError};
use crate::storage::ContractStorage;
use crate::types::{Address, TxId};

/// Chain timing parameters (paper §3.4): block period `B`, finality depth
/// `F`, and transaction propagation delay `Pt` — plus the simulator's
/// block-retention window for streamed-scale runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainConfig {
    /// Average block production period, milliseconds (Ethereum: 10–19 s).
    pub block_period_ms: u64,
    /// Blocks needed before a transaction is considered final (Ethereum: 250).
    pub finality_depth: u64,
    /// Worst-case transaction propagation delay to all nodes, milliseconds.
    pub propagation_ms: u64,
    /// How many mined block bodies to keep resident: `None` (the default)
    /// keeps the whole chain, `Some(n)` drops the oldest bodies past `n` —
    /// what lets a million-op streamed run execute at bounded memory.
    /// Chain state (storage, Gas meter, height) and the running
    /// [`Blockchain::chain_digest`] are unaffected; only the replayable
    /// block *bodies* (receipts, events, call records) age out, so
    /// off-chain monitors polling [`Blockchain::events_since`] /
    /// [`Blockchain::calls_since`] must keep their cursors within the
    /// window (every per-epoch watchdog does — cursors advance each
    /// epoch, and an epoch spans a handful of blocks).
    pub retain_blocks: Option<usize>,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            block_period_ms: 13_000,
            finality_depth: 250,
            propagation_ms: 500,
            retain_blocks: None,
        }
    }
}

/// A transaction submitted to the chain.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// Sender account.
    pub from: Address,
    /// Target contract.
    pub to: Address,
    /// Function name to invoke.
    pub func: String,
    /// Encoded payload (see [`crate::codec`]).
    pub input: Vec<u8>,
    /// Which layer pays the `Ctx` envelope cost.
    pub envelope_layer: Layer,
}

impl Transaction {
    /// Builds a transaction.
    pub fn new(
        from: Address,
        to: Address,
        func: impl Into<String>,
        input: Vec<u8>,
        envelope_layer: Layer,
    ) -> Self {
        Transaction {
            from,
            to,
            func: func.into(),
            input,
            envelope_layer,
        }
    }
}

/// The result of executing one transaction.
#[derive(Clone, Debug)]
pub struct Receipt {
    /// Identifier assigned at submission.
    pub tx_id: TxId,
    /// Block that mined the transaction.
    pub block_number: u64,
    /// Whether execution succeeded (failed txs are rolled back).
    pub success: bool,
    /// Encoded output on success.
    pub output: Vec<u8>,
    /// Error message on failure.
    pub error: Option<String>,
    /// Total Gas consumed (envelope + execution).
    pub gas_used: u64,
}

/// An EVM-log-style event emitted by a contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Emitting contract.
    pub contract: Address,
    /// Event name (stands in for the topic hash).
    pub name: String,
    /// Encoded payload.
    pub data: Vec<u8>,
    /// Block in which the event was recorded.
    pub block_number: u64,
    /// Simulated time of the containing block.
    pub time_ms: u64,
}

/// A mined block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Height of this block.
    pub number: u64,
    /// Simulated production time.
    pub time_ms: u64,
    /// Receipts for the included transactions, in execution order.
    pub receipts: Vec<Receipt>,
    /// Events emitted by the included transactions.
    pub events: Vec<Event>,
    /// Contract invocations (top-level and internal) of successful
    /// transactions — the re-executable call history off-chain monitors read.
    pub call_records: Vec<CallRecord>,
}

/// The Ethereum-like chain simulator.
///
/// Deterministic and single-threaded: transactions execute in submission
/// order when [`Blockchain::produce_block`] is called. Gas is tracked by an
/// embedded [`GasMeter`] with feed/application/user attribution.
pub struct Blockchain {
    config: ChainConfig,
    registry: HashMap<Address, Deployed>,
    storages: HashMap<Address, ContractStorage>,
    meter: GasMeter,
    mempool: Vec<(TxId, Transaction)>,
    /// Retained block bodies — the full chain by default, a sliding window
    /// under [`ChainConfig::retain_blocks`].
    blocks: Vec<Block>,
    /// Blocks mined over the chain's lifetime (the absolute height —
    /// `blocks.len()` only until pruning starts).
    mined: u64,
    /// Running fold of every sealed block (see
    /// [`Blockchain::chain_digest`]), so the digest survives pruning and
    /// stays O(1) to read.
    digest_acc: grub_crypto::Hash32,
    /// Recovery oracle (see [`Blockchain::expect_digest_at`]): when the
    /// chain reaches this height, its digest must equal this value.
    checkpoint: Option<(u64, grub_crypto::Hash32)>,
    next_tx_id: u64,
    now_ms: u64,
}

impl Default for Blockchain {
    fn default() -> Self {
        Self::new()
    }
}

impl Blockchain {
    /// Creates a chain with default parameters.
    pub fn new() -> Self {
        Self::with_config(ChainConfig::default())
    }

    /// Creates a chain with explicit timing parameters.
    pub fn with_config(config: ChainConfig) -> Self {
        Blockchain {
            config,
            registry: HashMap::new(),
            storages: HashMap::new(),
            meter: GasMeter::new(),
            mempool: Vec::new(),
            blocks: Vec::new(),
            mined: 0,
            digest_acc: grub_crypto::Sha256::new().finalize(),
            checkpoint: None,
            next_tx_id: 0,
            now_ms: 0,
        }
    }

    /// The chain's timing parameters.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Deploys contract code at an address with a Gas-attribution layer.
    ///
    /// # Panics
    ///
    /// Panics if a contract is already deployed at `address` — redeploying
    /// over live state is almost certainly a harness bug.
    pub fn deploy(&mut self, address: Address, code: Rc<dyn Contract>, layer: Layer) {
        let prior = self.registry.insert(address, Deployed { code, layer });
        assert!(prior.is_none(), "contract already deployed at {address}");
    }

    /// Whether a contract exists at `address`.
    pub fn is_deployed(&self, address: Address) -> bool {
        self.registry.contains_key(&address)
    }

    /// Queues a transaction; it executes at the next block.
    pub fn submit(&mut self, tx: Transaction) -> TxId {
        let id = TxId(self.next_tx_id);
        self.next_tx_id += 1;
        self.mempool.push((id, tx));
        id
    }

    /// Number of queued transactions.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Advances time by the block period and mines all queued transactions
    /// into a new block, returning it.
    ///
    /// The sealed block is folded into the chain's running digest before it
    /// is retained, and — under [`ChainConfig::retain_blocks`] — the oldest
    /// bodies past the window are dropped.
    pub fn produce_block(&mut self) -> &Block {
        self.now_ms += self.config.block_period_ms;
        self.mined += 1;
        let number = self.mined;
        let pending = std::mem::take(&mut self.mempool);
        let mut receipts = Vec::with_capacity(pending.len());
        let mut events = Vec::new();
        let mut call_records = Vec::new();
        for (tx_id, tx) in pending {
            let receipt = self.execute(tx_id, tx, number, &mut events, &mut call_records);
            receipts.push(receipt);
        }
        let block = Block {
            number,
            time_ms: self.now_ms,
            receipts,
            events,
            call_records,
        };
        self.digest_acc = fold_block_digest(&self.digest_acc, &block);
        if let Some((height, expected)) = self.checkpoint {
            if self.mined == height {
                self.checkpoint = None;
                assert_eq!(
                    self.chain_digest(),
                    expected,
                    "recovery re-execution diverged from the surviving chain \
                     at checkpoint height {height}: the replayed transaction \
                     stream is not byte-identical to the pre-crash run"
                );
            }
        }
        self.blocks.push(block);
        if let Some(retain) = self.config.retain_blocks {
            let retain = retain.max(1);
            if self.blocks.len() > retain {
                self.blocks.drain(..self.blocks.len() - retain);
            }
        }
        self.blocks.last().expect("just pushed")
    }

    fn execute(
        &mut self,
        tx_id: TxId,
        tx: Transaction,
        block_number: u64,
        events_out: &mut Vec<Event>,
        calls_out: &mut Vec<CallRecord>,
    ) -> Receipt {
        let before = self.meter.snapshot();
        self.meter.charge_tx(tx.envelope_layer, tx.input.len());
        let deployed = match self.registry.get(&tx.to) {
            Some(d) => d.clone(),
            None => {
                return Receipt {
                    tx_id,
                    block_number,
                    success: false,
                    output: Vec::new(),
                    error: Some(VmError::UnknownContract(tx.to).to_string()),
                    gas_used: gas_since(&self.meter, before),
                }
            }
        };
        let mut state = ExecState {
            storages: std::mem::take(&mut self.storages),
            meter: std::mem::take(&mut self.meter),
            pending_events: Vec::new(),
            journal: Vec::new(),
            call_records: vec![CallRecord {
                to: tx.to,
                func: tx.func.clone(),
                input: tx.input.clone(),
                block_number,
            }],
        };
        let result = {
            let mut ctx = CallContext {
                state: &mut state,
                registry: &self.registry,
                caller: tx.from,
                this: tx.to,
                origin: tx.from,
                block_number,
                now_ms: self.now_ms,
                layer: deployed.layer,
                depth: 0,
            };
            deployed.code.call(&mut ctx, &tx.func, &tx.input)
        };
        let receipt = match result {
            Ok(output) => {
                events_out.append(&mut state.pending_events);
                calls_out.append(&mut state.call_records);
                Receipt {
                    tx_id,
                    block_number,
                    success: true,
                    output,
                    error: None,
                    gas_used: 0, // patched below once the meter is restored
                }
            }
            Err(err) => {
                // Roll back every storage write this transaction made.
                for entry in state.journal.drain(..).rev() {
                    let storage = state.storages.entry(entry.contract).or_default();
                    match entry.prior {
                        Some(v) => {
                            storage.set(entry.key, v);
                        }
                        None => {
                            storage.remove(&entry.key);
                        }
                    }
                }
                state.pending_events.clear();
                Receipt {
                    tx_id,
                    block_number,
                    success: false,
                    output: Vec::new(),
                    error: Some(err.to_string()),
                    gas_used: 0,
                }
            }
        };
        self.storages = state.storages;
        self.meter = state.meter;
        let mut receipt = receipt;
        receipt.gas_used = gas_since(&self.meter, before);
        receipt
    }

    /// Executes a read-only call against current state without charging Gas
    /// or mutating anything — the equivalent of `eth_call`.
    ///
    /// # Errors
    ///
    /// Propagates the contract's [`VmError`].
    pub fn static_call(
        &self,
        from: Address,
        to: Address,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        let deployed = self
            .registry
            .get(&to)
            .cloned()
            .ok_or(VmError::UnknownContract(to))?;
        let mut state = ExecState {
            storages: self.storages.clone(),
            meter: GasMeter::with_schedule(*self.meter.schedule()),
            pending_events: Vec::new(),
            journal: Vec::new(),
            call_records: Vec::new(),
        };
        let mut ctx = CallContext {
            state: &mut state,
            registry: &self.registry,
            caller: from,
            this: to,
            origin: from,
            block_number: self.mined,
            now_ms: self.now_ms,
            layer: deployed.layer,
            depth: 0,
        };
        deployed.code.call(&mut ctx, func, input)
    }

    /// The retained block bodies — all mined blocks unless
    /// [`ChainConfig::retain_blocks`] trimmed the oldest.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Current block height (absolute: pruning never rewinds it).
    pub fn height(&self) -> u64 {
        self.mined
    }

    /// Simulated current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Height up to which blocks are final (`height - F`, saturating).
    pub fn finalized_height(&self) -> u64 {
        self.height().saturating_sub(self.config.finality_depth)
    }

    /// Guards the documented precondition of the `_since` queries under
    /// [`ChainConfig::retain_blocks`]: every block in `(from_block, ..]`
    /// must still be retained, or the query would silently omit pruned
    /// history. Debug-only, like the workspace's Gas-arithmetic guards —
    /// the production schedulers advance their cursors every epoch, far
    /// inside any sane window.
    fn assert_cursor_in_window(&self, from_block: u64) {
        debug_assert!(
            from_block >= self.mined
                || self
                    .blocks
                    .first()
                    .is_none_or(|b| b.number <= from_block + 1),
            "query cursor {from_block} predates the oldest retained block \
             {:?} (height {}): retain_blocks pruned history this poll still \
             needs — widen the window or poll more often",
            self.blocks.first().map(|b| b.number),
            self.mined,
        );
    }

    /// Events matching `contract` and `name` in blocks `(from_block, ..]`.
    ///
    /// This is what off-chain watchdogs (the SP daemon, the DO monitor) poll,
    /// standing in for Ethereum's `eth_getLogs`.
    pub fn events_since(&self, from_block: u64, contract: Address, name: &str) -> Vec<&Event> {
        self.assert_cursor_in_window(from_block);
        self.blocks
            .iter()
            .filter(|b| b.number > from_block)
            .flat_map(|b| b.events.iter())
            .filter(|e| e.contract == contract && e.name == name)
            .collect()
    }

    /// All events in blocks `(from_block, ..]`, for trace federation.
    pub fn all_events_since(&self, from_block: u64) -> Vec<&Event> {
        self.assert_cursor_in_window(from_block);
        self.blocks
            .iter()
            .filter(|b| b.number > from_block)
            .flat_map(|b| b.events.iter())
            .collect()
    }

    /// Contract invocations of contract `to` in blocks `(from_block, ..]` —
    /// the monitor's view of the call history (paper §3.2).
    pub fn calls_since(&self, from_block: u64, to: Address) -> Vec<&CallRecord> {
        self.assert_cursor_in_window(from_block);
        self.blocks
            .iter()
            .filter(|b| b.number > from_block)
            .flat_map(|b| b.call_records.iter())
            .filter(|c| c.to == to)
            .collect()
    }

    /// The Gas meter (read-only).
    pub fn meter(&self) -> &GasMeter {
        &self.meter
    }

    /// Zeroes the Gas meter — harnesses call this after provisioning so the
    /// reported numbers cover steady-state operation only.
    pub fn meter_reset(&mut self) {
        self.meter.reset();
    }

    /// Snapshot of Gas totals, for epoch-by-epoch reporting.
    pub fn gas_snapshot(&self) -> GasSnapshot {
        self.meter.snapshot()
    }

    /// Unmetered storage inspection, for tests and assertions.
    pub fn storage(&self, contract: Address) -> Option<&ContractStorage> {
        self.storages.get(&contract)
    }

    /// Arms a one-shot recovery oracle: when this chain next reaches
    /// `height`, its [`Blockchain::chain_digest`] must equal `expected`.
    ///
    /// Crash-recovery tests take `(height, digest)` from the chain that
    /// survived an injected crash and arm it on the fresh re-execution
    /// chain, so a divergence is caught *at the crash point* rather than as
    /// an opaque end-of-run digest mismatch.
    ///
    /// # Panics
    ///
    /// [`Blockchain::produce_block`] panics when the checkpoint height is
    /// reached with a different digest. Arming at or below the current
    /// height panics immediately — the oracle could never fire.
    pub fn expect_digest_at(&mut self, height: u64, expected: grub_crypto::Hash32) {
        assert!(
            height > self.mined,
            "checkpoint height {height} is not ahead of current height {}",
            self.mined
        );
        self.checkpoint = Some((height, expected));
    }

    /// Canonical digest of the whole mined chain: every block's number and
    /// time, every receipt (id, success, error, output, Gas), every event,
    /// and every call record, folded block by block into a running SHA-256
    /// chain as blocks are sealed, finalized here with the block count and
    /// the meter's per-layer totals.
    ///
    /// Two runs whose `chain_digest` agree executed byte-for-byte identical
    /// transactions with identical results — the equivalence the parallel
    /// shard executor's deterministic merge is contracted to preserve
    /// against the sequential pipeline (asserted in `tests/engine.rs`).
    /// Because the fold is incremental, the digest is O(1) to read at any
    /// height and survives [`ChainConfig::retain_blocks`] pruning: it
    /// always covers *every* block ever mined, retained or not.
    pub fn chain_digest(&self) -> grub_crypto::Hash32 {
        let mut h = grub_crypto::Sha256::new();
        h.update(self.digest_acc.as_bytes());
        h.update(&self.mined.to_le_bytes());
        let snap = self.meter.snapshot();
        h.update(&snap.feed.to_le_bytes());
        h.update(&snap.app.to_le_bytes());
        h.update(&snap.user.to_le_bytes());
        h.finalize()
    }
}

/// One step of the incremental chain digest: `acc' = SHA-256(acc ‖
/// canonical(block))`, the same per-block encoding the monolithic digest
/// used (number, time, receipts, events, call records, all
/// length-prefixed).
fn fold_block_digest(acc: &grub_crypto::Hash32, block: &Block) -> grub_crypto::Hash32 {
    let mut h = grub_crypto::Sha256::new();
    let u64le = |h: &mut grub_crypto::Sha256, v: u64| h.update(&v.to_le_bytes());
    let bytes = |h: &mut grub_crypto::Sha256, b: &[u8]| {
        h.update(&(b.len() as u64).to_le_bytes());
        h.update(b);
    };
    h.update(acc.as_bytes());
    u64le(&mut h, block.number);
    u64le(&mut h, block.time_ms);
    u64le(&mut h, block.receipts.len() as u64);
    for r in &block.receipts {
        u64le(&mut h, r.tx_id.0);
        h.update(&[u8::from(r.success)]);
        bytes(&mut h, r.error.as_deref().unwrap_or("").as_bytes());
        bytes(&mut h, &r.output);
        u64le(&mut h, r.gas_used);
    }
    u64le(&mut h, block.events.len() as u64);
    for e in &block.events {
        bytes(&mut h, e.contract.as_bytes());
        bytes(&mut h, e.name.as_bytes());
        bytes(&mut h, &e.data);
    }
    u64le(&mut h, block.call_records.len() as u64);
    for c in &block.call_records {
        bytes(&mut h, c.to.as_bytes());
        bytes(&mut h, c.func.as_bytes());
        bytes(&mut h, &c.input);
    }
    h.finalize()
}

/// A commit-ordering gate for multi-lane schedulers: within one round,
/// lanes (shards) must claim their block-commit slots in strictly
/// increasing canonical order.
///
/// A parallel executor stages lanes concurrently, so staging can *finish*
/// in any order; the gate is what the merge stage threads its commits
/// through to turn "finished first" back into "committed in canonical
/// order". Claims out of order — the bug class where an eager lane would
/// interleave its blocks into another lane's round and silently fork the
/// chain layout — are rejected with a typed [`CommitOrderError`] instead of
/// corrupting the run.
///
/// The gate is deliberately chain-agnostic state (it does not borrow the
/// [`Blockchain`]): the merge loop claims the lane first, then performs
/// that lane's submits and block seals.
///
/// ```
/// use grub_chain::CommitGate;
///
/// let mut gate = CommitGate::new(4);
/// gate.claim(1).unwrap(); // lanes may be sparse…
/// gate.claim(3).unwrap(); // …but must increase
/// assert!(gate.claim(2).is_err());
/// gate.begin_round();
/// gate.claim(0).unwrap(); // a new round starts over
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitGate {
    lanes: usize,
    last: Option<usize>,
}

/// A lane claimed its commit slot out of canonical order (or out of range).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOrderError {
    /// The lane that tried to commit.
    pub lane: usize,
    /// The lane that already holds or passed the slot this round, if any.
    pub committed: Option<usize>,
    /// Total number of lanes the gate was opened over.
    pub lanes: usize,
}

impl std::fmt::Display for CommitOrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.committed {
            Some(last) => write!(
                f,
                "lane {} claimed its commit slot out of canonical order \
                 (lane {} already committed this round, {} lanes total)",
                self.lane, last, self.lanes
            ),
            None => write!(
                f,
                "lane {} is out of range ({} lanes total)",
                self.lane, self.lanes
            ),
        }
    }
}

impl std::error::Error for CommitOrderError {}

impl CommitGate {
    /// Opens a gate over `lanes` canonical lanes with no slot claimed.
    pub fn new(lanes: usize) -> Self {
        CommitGate { lanes, last: None }
    }

    /// Starts a new round: every lane may claim again, in order.
    pub fn begin_round(&mut self) {
        self.last = None;
    }

    /// Claims the commit slot for `lane`.
    ///
    /// # Errors
    ///
    /// Rejects a lane at or below the round's last claimed lane, and lanes
    /// outside `0..lanes`.
    pub fn claim(&mut self, lane: usize) -> Result<(), CommitOrderError> {
        if lane >= self.lanes {
            return Err(CommitOrderError {
                lane,
                committed: None,
                lanes: self.lanes,
            });
        }
        if let Some(last) = self.last {
            if lane <= last {
                return Err(CommitOrderError {
                    lane,
                    committed: Some(last),
                    lanes: self.lanes,
                });
            }
        }
        self.last = Some(lane);
        Ok(())
    }
}

fn gas_since(meter: &GasMeter, before: GasSnapshot) -> u64 {
    let now = meter.snapshot();
    let total = |s: &GasSnapshot| {
        grub_gas::checked_add_gas(grub_gas::checked_add_gas(s.feed, s.app), s.user)
    };
    grub_gas::checked_sub_gas(total(&now), total(&before))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Decoder, Encoder};
    use grub_gas::CostKind;

    /// A contract exercising storage, events, calls and reverts.
    struct Widget;

    impl Contract for Widget {
        fn call(
            &self,
            ctx: &mut CallContext<'_>,
            func: &str,
            input: &[u8],
        ) -> Result<Vec<u8>, VmError> {
            match func {
                "set" => {
                    let mut dec = Decoder::new(input);
                    let v = dec.u64()?;
                    ctx.sstore_u64(b"value", v)?;
                    ctx.emit("ValueSet", input.to_vec());
                    Ok(Vec::new())
                }
                "get" => {
                    let v = ctx.sload_u64(b"value")?.unwrap_or(0);
                    let mut enc = Encoder::new();
                    enc.u64(v);
                    Ok(enc.finish())
                }
                "fail_after_write" => {
                    ctx.sstore_u64(b"value", 999)?;
                    Err(VmError::Revert("deliberate".into()))
                }
                "call_self_get" => {
                    let this = ctx.this;
                    ctx.call(this, "get", &[])
                }
                _ => Err(VmError::UnknownFunction(func.to_owned())),
            }
        }
    }

    fn setup() -> (Blockchain, Address, Address) {
        let mut chain = Blockchain::new();
        let widget = Address::derive("widget");
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
        (chain, widget, Address::derive("user"))
    }

    #[test]
    fn set_then_get_round_trips() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(42);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        let out = chain.static_call(user, widget, "get", &[]).unwrap();
        assert_eq!(Decoder::new(&out).u64().unwrap(), 42);
    }

    #[test]
    fn failed_tx_rolls_back_storage() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(1);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        chain.submit(Transaction::new(
            user,
            widget,
            "fail_after_write",
            Vec::new(),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(!block.receipts[0].success);
        assert!(block.receipts[0]
            .error
            .as_deref()
            .unwrap()
            .contains("deliberate"));
        let out = chain.static_call(user, widget, "get", &[]).unwrap();
        assert_eq!(
            Decoder::new(&out).u64().unwrap(),
            1,
            "write must be rolled back"
        );
    }

    #[test]
    fn failed_tx_emits_no_events() {
        let (mut chain, widget, user) = setup();
        chain.submit(Transaction::new(
            user,
            widget,
            "fail_after_write",
            Vec::new(),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(block.events.is_empty());
    }

    #[test]
    fn gas_charges_match_schedule() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(7);
        let payload = enc.finish();
        let payload_len = payload.len();
        chain.submit(Transaction::new(user, widget, "set", payload, Layer::User));
        let schedule = *chain.meter().schedule();
        let block = chain.produce_block();
        // Envelope + one fresh 1-word insert + LOG(1 topic, 8 bytes payload).
        let expected = schedule.tx_cost_bytes(payload_len)
            + schedule.storage_insert(1)
            + schedule.log_cost(1, 8);
        assert_eq!(block.receipts[0].gas_used, expected);
        // Envelope went to User, storage to Application.
        assert_eq!(
            chain
                .meter()
                .kind_total(Layer::User, CostKind::Transaction)
                .amount(),
            schedule.tx_cost_bytes(payload_len)
        );
        assert_eq!(
            chain
                .meter()
                .kind_total(Layer::Application, CostKind::StorageInsert)
                .amount(),
            schedule.storage_insert(1)
        );
    }

    #[test]
    fn update_cheaper_than_insert() {
        let (mut chain, widget, user) = setup();
        let mk = |v: u64| {
            let mut enc = Encoder::new();
            enc.u64(v);
            enc.finish()
        };
        chain.submit(Transaction::new(user, widget, "set", mk(1), Layer::User));
        let g1 = chain.produce_block().receipts[0].gas_used;
        chain.submit(Transaction::new(user, widget, "set", mk(2), Layer::User));
        let g2 = chain.produce_block().receipts[0].gas_used;
        let schedule = *chain.meter().schedule();
        assert_eq!(
            g1 - g2,
            schedule.storage_insert(1) - schedule.storage_update(1)
        );
    }

    #[test]
    fn events_are_queryable_by_name_and_block() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(5);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        let events = chain.events_since(0, widget, "ValueSet");
        assert_eq!(events.len(), 1);
        assert!(chain.events_since(1, widget, "ValueSet").is_empty());
        assert!(chain.events_since(0, widget, "Other").is_empty());
    }

    #[test]
    fn internal_call_works() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(9);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        chain.submit(Transaction::new(
            user,
            widget,
            "call_self_get",
            Vec::new(),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(block.receipts[0].success);
        assert_eq!(Decoder::new(&block.receipts[0].output).u64().unwrap(), 9);
    }

    #[test]
    fn unknown_contract_fails_cleanly() {
        let (mut chain, _widget, user) = setup();
        chain.submit(Transaction::new(
            user,
            Address::derive("nowhere"),
            "set",
            Vec::new(),
            Layer::User,
        ));
        let block = chain.produce_block();
        assert!(!block.receipts[0].success);
    }

    #[test]
    fn block_time_advances_by_period() {
        let (mut chain, _, _) = setup();
        let period = chain.config().block_period_ms;
        chain.produce_block();
        chain.produce_block();
        assert_eq!(chain.now_ms(), 2 * period);
        assert_eq!(chain.height(), 2);
    }

    #[test]
    fn finality_lags_by_depth() {
        let mut chain = Blockchain::with_config(ChainConfig {
            block_period_ms: 1000,
            finality_depth: 3,
            propagation_ms: 100,
            ..ChainConfig::default()
        });
        for _ in 0..5 {
            chain.produce_block();
        }
        assert_eq!(chain.finalized_height(), 2);
    }

    #[test]
    #[should_panic(expected = "already deployed")]
    fn double_deploy_panics() {
        let (mut chain, widget, _) = setup();
        chain.deploy(widget, Rc::new(Widget), Layer::Application);
    }

    #[test]
    fn static_call_charges_no_gas() {
        let (chain, widget, user) = setup();
        let before = chain.meter().total();
        let _ = chain.static_call(user, widget, "get", &[]);
        assert_eq!(chain.meter().total(), before);
    }

    #[test]
    fn chain_digest_tracks_execution_not_time_of_call() {
        let run = || {
            let (mut chain, widget, user) = setup();
            let mut enc = Encoder::new();
            enc.u64(11);
            chain.submit(Transaction::new(
                user,
                widget,
                "set",
                enc.finish(),
                Layer::User,
            ));
            chain.produce_block();
            chain
        };
        let a = run();
        let b = run();
        assert_eq!(a.chain_digest(), b.chain_digest(), "same run, same digest");
        // Any divergence — even an extra empty block — changes the digest.
        let mut c = run();
        c.produce_block();
        assert_ne!(a.chain_digest(), c.chain_digest());
        // Reading the digest is pure.
        assert_eq!(a.chain_digest(), a.chain_digest());
    }

    #[test]
    fn pruned_chain_keeps_absolute_height_and_full_digest() {
        let run = |retain: Option<usize>| {
            let mut chain = Blockchain::with_config(ChainConfig {
                retain_blocks: retain,
                ..ChainConfig::default()
            });
            let widget = Address::derive("widget");
            chain.deploy(widget, Rc::new(Widget), Layer::Application);
            let user = Address::derive("user");
            for v in 0..20u64 {
                let mut enc = Encoder::new();
                enc.u64(v);
                chain.submit(Transaction::new(
                    user,
                    widget,
                    "set",
                    enc.finish(),
                    Layer::User,
                ));
                chain.produce_block();
            }
            chain
        };
        let full = run(None);
        let pruned = run(Some(4));
        // Only the oldest bodies aged out; the ledger itself is unchanged.
        assert_eq!(full.blocks().len(), 20);
        assert_eq!(pruned.blocks().len(), 4);
        assert_eq!(pruned.height(), 20, "pruning never rewinds the height");
        assert_eq!(pruned.blocks()[0].number, 17);
        assert_eq!(
            full.chain_digest(),
            pruned.chain_digest(),
            "the running digest covers every mined block, retained or not"
        );
        // Retained-window queries still work by absolute block number.
        assert_eq!(
            pruned
                .events_since(16, Address::derive("widget"), "ValueSet")
                .len(),
            4
        );
        // State (and static calls against it) is untouched by pruning.
        let out = pruned.static_call(
            Address::derive("user"),
            Address::derive("widget"),
            "get",
            &[],
        );
        assert_eq!(Decoder::new(&out.unwrap()).u64().unwrap(), 19);
    }

    #[test]
    fn digest_checkpoint_passes_on_identical_replay() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(3);
        let payload = enc.finish();
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            payload.clone(),
            Layer::User,
        ));
        chain.produce_block();
        let oracle = (chain.height(), chain.chain_digest());
        // A fresh chain replaying the same stream sails through the oracle.
        let (mut replay, widget, user) = setup();
        replay.expect_digest_at(oracle.0, oracle.1);
        replay.submit(Transaction::new(user, widget, "set", payload, Layer::User));
        replay.produce_block();
        assert_eq!(replay.chain_digest(), oracle.1);
    }

    #[test]
    #[should_panic(expected = "diverged from the surviving chain")]
    fn digest_checkpoint_panics_on_divergent_replay() {
        let (mut chain, widget, user) = setup();
        let mut enc = Encoder::new();
        enc.u64(3);
        chain.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        chain.produce_block();
        let oracle = (chain.height(), chain.chain_digest());
        let (mut replay, widget, user) = setup();
        replay.expect_digest_at(oracle.0, oracle.1);
        let mut enc = Encoder::new();
        enc.u64(4); // different payload → different digest at the checkpoint
        replay.submit(Transaction::new(
            user,
            widget,
            "set",
            enc.finish(),
            Layer::User,
        ));
        replay.produce_block();
    }

    #[test]
    fn commit_gate_enforces_canonical_lane_order() {
        let mut gate = CommitGate::new(3);
        gate.claim(0).unwrap();
        gate.claim(2).unwrap();
        let err = gate.claim(1).unwrap_err();
        assert_eq!(err.committed, Some(2));
        assert!(err.to_string().contains("canonical order"));
        // Same lane twice is likewise an ordering violation.
        assert!(gate.claim(2).is_err());
        // Out-of-range lanes are rejected outright.
        assert!(gate.claim(3).is_err());
        // A fresh round resets the order.
        gate.begin_round();
        gate.claim(1).unwrap();
    }
}
