//! An Ethereum-like blockchain simulator with exact Gas metering.
//!
//! The GRuB paper evaluates every design purely by the Gas it burns under the
//! schedule of its Table 2 (transactions, storage insert/update/read, hash).
//! Gas is a deterministic function of the operations a contract performs, so
//! replaying the same contract logic against the same schedule reproduces the
//! paper's cost behaviour without a real network (see `DESIGN.md` §3).
//!
//! The simulator provides:
//!
//! * [`Blockchain`] — mempool, block production every `B` ms, finality depth
//!   `F`, an event log, and a registry of [`Contract`]s;
//! * Gas-metered contract storage ([`contract::CallContext::sstore`] and
//!   friends) charging exactly `Cinsert`/`Cupdate`/`Cread` per 32-byte word;
//! * transactions charged `Ctx(X) = 21000 + 2176·X` on their payload with the
//!   envelope attributed to a [`grub_gas::Layer`];
//! * internal calls with callbacks, revert journaling, and event emission
//!   (EVM `LOG`-style) that off-chain watchdogs can poll;
//! * [`network`] — a multi-node propagation/finality model used to validate
//!   the paper's consistency theorems (§3.4, Appendix E).
//!
//! # Examples
//!
//! ```
//! use grub_chain::{Blockchain, Transaction, Address};
//! use grub_chain::contract::{CallContext, Contract, VmError};
//! use grub_gas::Layer;
//! use std::rc::Rc;
//!
//! struct Counter;
//! impl Contract for Counter {
//!     fn call(&self, ctx: &mut CallContext<'_>, func: &str, _input: &[u8])
//!         -> Result<Vec<u8>, VmError> {
//!         match func {
//!             "bump" => {
//!                 let n = ctx.sload_u64(b"n")?.unwrap_or(0);
//!                 ctx.sstore_u64(b"n", n + 1)?;
//!                 Ok(Vec::new())
//!             }
//!             _ => Err(VmError::UnknownFunction(func.to_owned())),
//!         }
//!     }
//! }
//!
//! let mut chain = Blockchain::new();
//! let addr = Address::derive("counter");
//! chain.deploy(addr, Rc::new(Counter), Layer::Application);
//! let alice = Address::derive("alice");
//! chain.submit(Transaction::new(alice, addr, "bump", Vec::new(), Layer::User));
//! let block = chain.produce_block();
//! assert!(block.receipts[0].success);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod codec;
pub mod contract;
pub mod network;
pub mod storage;
mod types;

pub use chain::{
    Block, BlockError, Blockchain, ChainConfig, CommitGate, CommitOrderError, Event, LatencyConfig,
    MempoolConfig, Receipt, ReorgConfig, ReorgError, ReorgEvent, Transaction,
};
pub use contract::{CallContext, Contract, VmError};
pub use types::{Address, TxId};
