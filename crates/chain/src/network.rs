//! A multi-node propagation and finality model.
//!
//! The Gas experiments run on the single-node [`crate::Blockchain`]; this
//! module models what that simulator abstracts away — transaction
//! propagation (`Pt`), block production (`B`) and finality (`F`) across many
//! nodes — so the paper's consistency theorems (§3.4, Appendix E) can be
//! validated:
//!
//! * **Theorem 3.1 / E.1** — the ordering of concurrent operations is
//!   non-deterministic (miner-decided) but identical across all nodes once
//!   the involved transactions are final.
//! * **Theorem 3.2 / E.2** — a transaction submitted at `t` is visible and
//!   final on *every* node by `t + Pt + F·B`; GRuB adds its epoch `E` on the
//!   write path, giving the paper's freshness bound `E + Pt + F·B`.
//!
//! The model is deliberately small: one logical miner (standing in for the
//! consensus protocol's serialization decision), per-message random delays
//! bounded by `Pt`, and a deterministic seed so tests are reproducible.

use crate::chain::ChainConfig;

/// A transaction in flight through the network model, identified by label.
#[derive(Clone, Debug, PartialEq, Eq)]
struct PendingTx {
    label: String,
    submit_time_ms: u64,
    arrival_at_miner_ms: u64,
}

/// A mined block in the network model.
#[derive(Clone, Debug)]
pub struct ModelBlock {
    /// Height (1-based).
    pub number: u64,
    /// Production time at the miner.
    pub produced_ms: u64,
    /// Labels of the included transactions, in consensus order.
    pub txs: Vec<String>,
}

/// Multi-node network simulation with bounded propagation delays.
///
/// # Examples
///
/// ```
/// use grub_chain::network::NetworkSim;
/// use grub_chain::ChainConfig;
///
/// let config = ChainConfig { block_period_ms: 1000, finality_depth: 3, propagation_ms: 400,
///     ..ChainConfig::default() };
/// let mut net = NetworkSim::new(4, config, 7);
/// net.submit(0, 100, "putA");
/// net.run_until(10_000);
/// let bound = 100 + config.propagation_ms + config.finality_depth * config.block_period_ms;
/// for node in 0..4 {
///     assert!(net.finalized_view(node, bound).contains(&"putA".to_string()));
/// }
/// ```
pub struct NetworkSim {
    nodes: usize,
    config: ChainConfig,
    rng_state: u64,
    pending: Vec<PendingTx>,
    blocks: Vec<ModelBlock>,
    /// `block_arrival[node][block_index]` = time the block reached the node.
    block_arrival: Vec<Vec<u64>>,
    now_ms: u64,
}

impl NetworkSim {
    /// Creates a network of `nodes` nodes with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize, config: ChainConfig, seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        NetworkSim {
            nodes,
            config,
            rng_state: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
            pending: Vec::new(),
            blocks: Vec::new(),
            block_arrival: vec![Vec::new(); nodes],
            now_ms: 0,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64* — deterministic, no external dependency.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn delay(&mut self) -> u64 {
        if self.config.propagation_ms == 0 {
            0
        } else {
            self.next_rand() % (self.config.propagation_ms + 1)
        }
    }

    /// Submits a transaction from `node` at `time_ms` (absolute sim time).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `time_ms` is in the simulated
    /// past.
    pub fn submit(&mut self, node: usize, time_ms: u64, label: impl Into<String>) {
        assert!(node < self.nodes, "node {node} out of range");
        assert!(
            time_ms >= self.now_ms,
            "cannot submit in the past ({time_ms} < {})",
            self.now_ms
        );
        let delay = self.delay();
        self.pending.push(PendingTx {
            label: label.into(),
            submit_time_ms: time_ms,
            arrival_at_miner_ms: time_ms + delay,
        });
    }

    /// Advances the simulation, producing blocks every `B`, until `t_ms`.
    pub fn run_until(&mut self, t_ms: u64) {
        let period = self.config.block_period_ms;
        while self.now_ms + period <= t_ms {
            self.now_ms += period;
            let produced = self.now_ms;
            // The miner serializes every transaction that reached it; ties in
            // arrival are broken by submission recency *and* a random shuffle
            // of same-time arrivals, modelling consensus non-determinism.
            let mut ready: Vec<PendingTx> = Vec::new();
            let mut rest = Vec::new();
            for tx in self.pending.drain(..) {
                if tx.arrival_at_miner_ms <= produced {
                    ready.push(tx);
                } else {
                    rest.push(tx);
                }
            }
            self.pending = rest;
            ready.sort_by_key(|tx| tx.arrival_at_miner_ms);
            // Shuffle runs of equal arrival times.
            let mut i = 0;
            while i < ready.len() {
                let mut j = i + 1;
                while j < ready.len()
                    && ready[j].arrival_at_miner_ms == ready[i].arrival_at_miner_ms
                {
                    j += 1;
                }
                for k in (i + 1..j).rev() {
                    let swap_with = i + (self.next_rand() as usize) % (k - i + 1);
                    ready.swap(k, swap_with);
                }
                i = j;
            }
            let block = ModelBlock {
                number: self.blocks.len() as u64 + 1,
                produced_ms: produced,
                txs: ready.into_iter().map(|tx| tx.label).collect(),
            };
            for node in 0..self.nodes {
                let d = self.delay();
                self.block_arrival[node].push(produced + d);
            }
            self.blocks.push(block);
        }
        self.now_ms = self.now_ms.max(t_ms);
    }

    /// All blocks mined so far (consensus order).
    pub fn blocks(&self) -> &[ModelBlock] {
        &self.blocks
    }

    /// Transactions visible to `node` at `t_ms` (blocks received by then),
    /// in consensus order.
    pub fn node_view(&self, node: usize, t_ms: u64) -> Vec<String> {
        self.view_impl(node, t_ms, false)
    }

    /// Transactions *finalized* for `node` at `t_ms`: the block is received
    /// and at least `F` blocks (including it) have been produced by `t_ms`.
    pub fn finalized_view(&self, node: usize, t_ms: u64) -> Vec<String> {
        self.view_impl(node, t_ms, true)
    }

    fn view_impl(&self, node: usize, t_ms: u64, finalized_only: bool) -> Vec<String> {
        assert!(node < self.nodes, "node {node} out of range");
        let produced_by_t = self.blocks.iter().filter(|b| b.produced_ms <= t_ms).count() as u64;
        let mut out = Vec::new();
        for (idx, block) in self.blocks.iter().enumerate() {
            if self.block_arrival[node][idx] > t_ms {
                continue;
            }
            if finalized_only {
                // F blocks counted inclusive of the one containing the tx.
                let depth = produced_by_t.saturating_sub(block.number) + 1;
                if depth < self.config.finality_depth {
                    continue;
                }
            }
            out.extend(block.txs.iter().cloned());
        }
        out
    }

    /// The paper's worst-case visibility bound for a transaction submitted at
    /// `submit_ms`: `submit + Pt + F·B`.
    pub fn finality_bound_ms(&self, submit_ms: u64) -> u64 {
        submit_ms
            + self.config.propagation_ms
            + self.config.finality_depth * self.config.block_period_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ChainConfig {
        ChainConfig {
            block_period_ms: 1_000,
            finality_depth: 5,
            propagation_ms: 400,
            ..ChainConfig::default()
        }
    }

    #[test]
    fn tx_final_everywhere_within_paper_bound() {
        // Theorem 3.2/E.2 visibility component: submitted at t, final on all
        // nodes by t + Pt + F·B.
        for seed in 0..20 {
            let mut net = NetworkSim::new(5, config(), seed);
            let submit = 777;
            net.submit(2, submit, "tx");
            let bound = net.finality_bound_ms(submit);
            net.run_until(bound + 10_000);
            for node in 0..5 {
                assert!(
                    net.finalized_view(node, bound).contains(&"tx".to_string()),
                    "seed {seed} node {node}: tx not final by bound {bound}"
                );
            }
        }
    }

    #[test]
    fn concurrent_ordering_identical_across_nodes_after_finality() {
        // Theorem 3.1/E.1: order may vary by seed, but within one execution
        // every node sees the same order once both txs are final.
        let mut orders = std::collections::HashSet::new();
        for seed in 0..30 {
            let mut net = NetworkSim::new(4, config(), seed);
            net.submit(0, 100, "a");
            net.submit(3, 100, "b"); // concurrent with "a"
            let bound = net.finality_bound_ms(100);
            net.run_until(bound + 10_000);
            let reference = net.finalized_view(0, bound + 5_000);
            assert_eq!(reference.len(), 2);
            for node in 1..4 {
                assert_eq!(
                    net.finalized_view(node, bound + 5_000),
                    reference,
                    "seed {seed}: node {node} disagrees"
                );
            }
            orders.insert(reference);
        }
        // Non-determinism: across seeds both orders must occur.
        assert_eq!(orders.len(), 2, "expected both a<b and b<a orderings");
    }

    #[test]
    fn unfinalized_blocks_are_not_in_finalized_view() {
        let mut net = NetworkSim::new(2, config(), 1);
        net.submit(0, 0, "x");
        // Run long enough to mine the tx but not to finalize it (F=5 blocks).
        net.run_until(2_500);
        assert!(net.node_view(0, 2_500).contains(&"x".to_string()));
        assert!(net.finalized_view(0, 2_500).is_empty());
    }

    #[test]
    fn views_respect_block_arrival_delays() {
        let mut net = NetworkSim::new(3, config(), 9);
        net.submit(0, 0, "x");
        net.run_until(1_000);
        // At exactly production time, a node whose delay > 0 may not see it;
        // after Pt it must.
        let late = 1_000 + config().propagation_ms;
        for node in 0..3 {
            assert!(net.node_view(node, late).contains(&"x".to_string()));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let net = NetworkSim::new(2, config(), 0);
        net.node_view(5, 0);
    }
}
