//! A minimal deterministic codec for contract call payloads.
//!
//! The paper's prototype uses Solidity ABI encoding; this simulator uses a
//! simpler length-prefixed binary format with identical information content,
//! so transaction payload sizes (which drive `Ctx(X)`) stay comparable.
//!
//! # Examples
//!
//! ```
//! use grub_chain::codec::{Encoder, Decoder};
//!
//! let mut enc = Encoder::new();
//! enc.u64(7).bytes(b"price").u64(42);
//! let buf = enc.finish();
//!
//! let mut dec = Decoder::new(&buf);
//! assert_eq!(dec.u64().unwrap(), 7);
//! assert_eq!(dec.bytes().unwrap(), b"price");
//! assert_eq!(dec.u64().unwrap(), 42);
//! assert!(dec.is_empty());
//! ```

use grub_crypto::Hash32;

use crate::contract::VmError;
use crate::types::Address;

/// Incrementally builds a call payload.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends a `u64` (8 bytes, little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `bool` (1 byte).
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.buf.push(v as u8);
        self
    }

    /// Appends a length-prefixed byte string (4-byte LE length).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a 32-byte digest (raw).
    pub fn hash(&mut self, v: &Hash32) -> &mut Self {
        self.buf.extend_from_slice(v.as_bytes());
        self
    }

    /// Appends a 20-byte address (raw).
    pub fn address(&mut self, v: &Address) -> &mut Self {
        self.buf.extend_from_slice(v.as_bytes());
        self
    }

    /// Appends a UTF-8 string (length-prefixed).
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Current payload length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads values back out of a payload, in the order they were encoded.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], VmError> {
        if self.pos + n > self.buf.len() {
            return Err(VmError::Decode(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Decode`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, VmError> {
        let b = self.take(8)?;
        // grub-lint: allow(panic) — take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(b.try_into().expect("slice len 8")))
    }

    /// Reads a `bool`.
    pub fn boolean(&mut self) -> Result<bool, VmError> {
        Ok(self.take(1)?[0] != 0)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], VmError> {
        // grub-lint: allow(panic) — take(4) returned exactly 4 bytes
        let len = u32::from_le_bytes(self.take(4)?.try_into().expect("slice len 4")) as usize;
        self.take(len)
    }

    /// Reads a 32-byte digest.
    pub fn hash(&mut self) -> Result<Hash32, VmError> {
        let b = self.take(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(b);
        Ok(Hash32::new(out))
    }

    /// Reads a 20-byte address.
    pub fn address(&mut self) -> Result<Address, VmError> {
        let b = self.take(20)?;
        let mut out = [0u8; 20];
        out.copy_from_slice(b);
        Ok(Address::new(out))
    }

    /// Reads a UTF-8 string.
    pub fn string(&mut self) -> Result<String, VmError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|e| VmError::Decode(e.to_string()))
    }

    /// Whether the payload is fully consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Encodes a batch of per-target call sections — the multi-feed `update`
/// framing used by shard routers: each section names the contract that
/// should receive `payload` as an internal call. Framing overhead is one
/// `u64` count plus an address and a length prefix per section, so batching
/// `n` payloads into one transaction trades `n - 1` transaction base costs
/// for a few words of calldata.
pub fn encode_sections(sections: &[(Address, Vec<u8>)]) -> Vec<u8> {
    debug_assert!(
        sections.len() <= MAX_BATCH_SECTIONS,
        "batch of {} sections exceeds MAX_BATCH_SECTIONS = {MAX_BATCH_SECTIONS}",
        sections.len()
    );
    let mut enc = Encoder::new();
    enc.u64(sections.len() as u64);
    for (target, payload) in sections {
        enc.address(target).bytes(payload);
    }
    enc.finish()
}

/// Upper bound on the section count of one batch payload. Byte-bounded
/// batching keeps real batches around forty sections; the bound exists so a
/// forged count in a hostile payload is rejected with a typed error up
/// front instead of driving allocation and iteration until the truncation
/// check fires.
pub const MAX_BATCH_SECTIONS: usize = 4096;

/// Framing bytes every section carries at minimum: a 20-byte target address
/// plus a 4-byte payload length prefix.
const SECTION_MIN_BYTES: usize = 24;

/// Decodes a batch encoded by [`encode_sections`].
///
/// # Errors
///
/// Returns [`VmError::Decode`] if the payload is malformed or truncated, or
/// if the declared section count exceeds [`MAX_BATCH_SECTIONS`] or could not
/// possibly fit in the remaining bytes.
pub fn decode_sections(input: &[u8]) -> Result<Vec<(Address, Vec<u8>)>, VmError> {
    let mut dec = Decoder::new(input);
    let declared = dec.u64()?;
    if declared > MAX_BATCH_SECTIONS as u64 {
        return Err(VmError::Decode(format!(
            "section count {declared} exceeds the {MAX_BATCH_SECTIONS}-section bound"
        )));
    }
    let n = declared as usize;
    if n.saturating_mul(SECTION_MIN_BYTES) > dec.remaining() {
        return Err(VmError::Decode(format!(
            "payload truncated: {n} sections need at least {} bytes, have {}",
            n * SECTION_MIN_BYTES,
            dec.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let target = dec.address()?;
        let payload = dec.bytes()?.to_vec();
        out.push((target, payload));
    }
    if !dec.is_empty() {
        return Err(VmError::Decode(format!(
            "{} trailing bytes after {} sections",
            dec.remaining(),
            n
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let addr = Address::derive("codec");
        let digest = grub_crypto::sha256(b"d");
        let mut enc = Encoder::new();
        enc.u64(u64::MAX)
            .boolean(true)
            .bytes(b"")
            .bytes(&[1, 2, 3])
            .hash(&digest)
            .address(&addr)
            .string("héllo");
        let buf = enc.finish();

        let mut dec = Decoder::new(&buf);
        assert_eq!(dec.u64().unwrap(), u64::MAX);
        assert!(dec.boolean().unwrap());
        assert_eq!(dec.bytes().unwrap(), b"");
        assert_eq!(dec.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(dec.hash().unwrap(), digest);
        assert_eq!(dec.address().unwrap(), addr);
        assert_eq!(dec.string().unwrap(), "héllo");
        assert!(dec.is_empty());
    }

    #[test]
    fn truncated_payload_errors() {
        let mut enc = Encoder::new();
        enc.u64(1);
        let buf = enc.finish();
        let mut dec = Decoder::new(&buf[..4]);
        assert!(matches!(dec.u64(), Err(VmError::Decode(_))));
    }

    #[test]
    fn sections_round_trip() {
        let sections = vec![
            (Address::derive("m1"), b"payload-one".to_vec()),
            (Address::derive("m2"), Vec::new()),
            (Address::derive("m3"), vec![0u8; 300]),
        ];
        let buf = encode_sections(&sections);
        assert_eq!(decode_sections(&buf).unwrap(), sections);
        assert!(decode_sections(&encode_sections(&[])).unwrap().is_empty());
    }

    #[test]
    fn sections_reject_trailing_garbage() {
        let mut buf = encode_sections(&[(Address::derive("m"), b"p".to_vec())]);
        buf.push(0xAB);
        assert!(matches!(decode_sections(&buf), Err(VmError::Decode(_))));
    }

    #[test]
    fn sections_reject_forged_counts() {
        // A count above the hard bound is rejected before any allocation.
        let mut enc = Encoder::new();
        enc.u64(u64::MAX);
        assert!(matches!(
            decode_sections(&enc.finish()),
            Err(VmError::Decode(_))
        ));
        // An in-bound count that cannot fit the remaining bytes is rejected
        // up front with a typed error.
        let mut enc = Encoder::new();
        enc.u64(100); // claims 100 sections, provides none
        assert!(matches!(
            decode_sections(&enc.finish()),
            Err(VmError::Decode(_))
        ));
    }

    #[test]
    fn sections_reject_truncated_tail() {
        let buf = encode_sections(&[
            (Address::derive("m1"), b"abc".to_vec()),
            (Address::derive("m2"), b"defgh".to_vec()),
        ]);
        // Every proper prefix must fail with a typed decode error, never
        // panic.
        for cut in 0..buf.len() {
            assert!(
                matches!(decode_sections(&buf[..cut]), Err(VmError::Decode(_))),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn bad_length_prefix_errors() {
        // Length prefix claims 100 bytes but only 1 follows.
        let mut buf = 100u32.to_le_bytes().to_vec();
        buf.push(7);
        let mut dec = Decoder::new(&buf);
        assert!(dec.bytes().is_err());
    }
}
