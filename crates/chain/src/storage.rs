//! Gas-metered, journaled contract storage.
//!
//! Each contract owns a map from byte-string slot keys to byte-string values.
//! Costs are charged per 32-byte word exactly as in the paper's Table 2:
//! inserting a fresh slot costs `20000·X`, overwriting costs `5000·X`,
//! reading costs `200·X` (minimum one word). A per-transaction journal allows
//! reverting all writes if execution fails, matching EVM semantics.

use std::collections::HashMap;

/// One contract's persistent storage.
#[derive(Debug, Default, Clone)]
pub struct ContractStorage {
    slots: HashMap<Vec<u8>, Vec<u8>>,
}

impl ContractStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raw read without metering (for assertions and debugging).
    pub fn peek(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.slots.get(key)
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the storage holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub(crate) fn get(&self, key: &[u8]) -> Option<&Vec<u8>> {
        self.slots.get(key)
    }

    /// Sets a slot, returning the previous value (None = fresh insert).
    pub(crate) fn set(&mut self, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        self.slots.insert(key, value)
    }

    pub(crate) fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.slots.remove(key)
    }
}

/// A recorded pre-image of one storage slot, to undo on revert.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Contract index in the chain's address table.
    pub contract: crate::types::Address,
    /// Slot key.
    pub key: Vec<u8>,
    /// Value before the write (`None` = the slot did not exist).
    pub prior: Option<Vec<u8>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_reports_prior_value() {
        let mut s = ContractStorage::new();
        assert_eq!(s.set(b"k".to_vec(), b"v1".to_vec()), None);
        assert_eq!(s.set(b"k".to_vec(), b"v2".to_vec()), Some(b"v1".to_vec()));
        assert_eq!(s.peek(b"k"), Some(&b"v2".to_vec()));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_clears_slot() {
        let mut s = ContractStorage::new();
        s.set(b"k".to_vec(), b"v".to_vec());
        assert_eq!(s.remove(b"k"), Some(b"v".to_vec()));
        assert!(s.is_empty());
        assert_eq!(s.remove(b"k"), None);
    }
}
