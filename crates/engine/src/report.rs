//! Per-tenant and aggregate reporting for multi-tenant runs.

use std::fmt::Write as _;

use grub_core::metrics::RunReport;
use grub_gas::checked_add_gas;
use serde::{Deserialize, Serialize};

/// One tenant's share of a multi-tenant run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Shard the tenant was hashed to.
    pub shard: usize,
    /// The tenant's own epoch-by-epoch report (read path, delivers, and —
    /// when batching is off — its update transactions).
    pub run: RunReport,
    /// The tenant's byte-proportional share of its shard's batched update
    /// transactions (zero when batching is off).
    pub batched_update_gas: u64,
    /// The tenant's byte-proportional share of its shard's batched deliver
    /// transactions (zero when read batching is off).
    pub batched_deliver_gas: u64,
    /// Scheduler rounds in which the tenant's quota parked its next epoch
    /// (zero without a [`TenantBudget`](crate::TenantBudget)).
    pub parked_rounds: usize,
    /// Longest run of *consecutive* parked rounds — by the quota class's
    /// starvation bound, always strictly below
    /// [`QuotaTier::starvation_bound`](crate::QuotaTier::starvation_bound).
    pub max_parked_streak: usize,
}

impl TenantReport {
    /// Total feed-layer Gas the tenant is accountable for: its own epochs
    /// plus its shares of the shard batches.
    pub fn feed_gas_total(&self) -> u64 {
        checked_add_gas(
            checked_add_gas(self.run.feed_gas_total(), self.batched_update_gas),
            self.batched_deliver_gas,
        )
    }

    /// Trace operations the tenant ran.
    pub fn total_ops(&self) -> usize {
        self.run.total_ops()
    }

    /// Feed-layer Gas per operation, batch share included.
    pub fn feed_gas_per_op(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            self.feed_gas_total() as f64 / ops as f64
        }
    }
}

/// Structured per-round (scheduler-epoch) metrics emitted by the engine.
///
/// One entry per scheduler round, in order. Every field except
/// `wall_clock_micros` is a deterministic function of the engine's specs;
/// wall-clock is measured and therefore excluded from
/// [`EngineReport::render_table`] (the determinism artifact) — it feeds the
/// bench harness's throughput baseline instead.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Scheduler round index (0-based).
    pub round: usize,
    /// Trace operations ingested and completed this round, across feeds.
    pub staged_ops: usize,
    /// Feed-layer Gas metered this round (updates, delivers, batches).
    pub feed_gas: u64,
    /// Application-layer Gas metered this round (consumer callbacks).
    pub app_gas: u64,
    /// Engine-submitted update Gas this round, summed over shards.
    pub update_gas: u64,
    /// Engine-submitted deliver Gas this round, summed over shards.
    pub deliver_gas: u64,
    /// Update sections carried by this round's shard batches.
    pub update_sections: usize,
    /// Deliver sections carried by this round's shard batches.
    pub deliver_sections: usize,
    /// Feeds the quota scheduler parked this round.
    pub parked: usize,
    /// Longest consecutive-park streak across feeds, as of this round.
    pub max_parked_streak: usize,
    /// Scrub findings reported at this round's epoch boundary (zero with
    /// scrubbing off).
    pub scrub_findings: usize,
    /// Scrub findings repaired at this round's epoch boundary.
    pub scrub_repaired: usize,
    /// Lowest gas-price multiplier (permille of the schedule's base cost)
    /// among blocks mined this round; [`grub_gas::BASE_PRICE_PERMILLE`]
    /// when no fee process is configured or no block was mined.
    pub fee_low_permille: u64,
    /// Highest gas-price multiplier (permille) among blocks mined this
    /// round; base price when no fee process is configured.
    pub fee_high_permille: u64,
    /// The chain's confirmation frontier ([`ChainConfig::confirm_depth`]
    /// behind the tip) as of the end of this round — monotone
    /// non-decreasing across rounds, the per-round witness the consistency
    /// net asserts.
    ///
    /// [`ChainConfig::confirm_depth`]: grub_chain::ChainConfig::confirm_depth
    pub confirmed_height: u64,
    /// Wall-clock duration of the round, in microseconds. Measured, not
    /// deterministic — never rendered into the determinism table.
    pub wall_clock_micros: u64,
    /// SP store block-cache hits this round, summed across feeds.
    /// Hot-path observability (wall-clock-exempt table rules apply): cache
    /// behaviour depends on capacity knobs, so like `wall_clock_micros`
    /// these counters never enter the determinism table.
    pub cache_hits: u64,
    /// SP store block-cache misses this round, summed across feeds.
    pub cache_misses: u64,
    /// SP store table probes answered by a bloom true negative this round.
    pub bloom_skips: u64,
    /// Merkle nodes rehashed by batched tree updates this round (SP trees
    /// plus DO mirrors).
    pub merkle_nodes_rehashed: u64,
}

/// The aggregate result of one engine run.
///
/// Tenant order is the feed declaration order; all contained quantities are
/// deterministic functions of the engine's specs (the per-round
/// [`EpochMetrics::wall_clock_micros`] excepted), so two identical runs
/// render byte-identical tables.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineReport {
    /// Per-tenant reports, in declaration order.
    pub tenants: Vec<TenantReport>,
    /// Metered Gas of each shard's engine-submitted update transactions
    /// (batches, plus the direct fallback a lone section rides). Tenant
    /// `batched_update_gas` shares sum exactly to these totals.
    pub shard_update_gas: Vec<u64>,
    /// Number of engine-submitted update transactions each shard sent.
    pub shard_update_txs: Vec<usize>,
    /// Metered Gas of each shard's engine-submitted deliver transactions
    /// (batches, plus the direct fallback a lone section rides). Tenant
    /// `batched_deliver_gas` shares sum exactly to these totals.
    pub shard_deliver_gas: Vec<u64>,
    /// Number of engine-submitted deliver transactions each shard sent.
    pub shard_deliver_txs: Vec<usize>,
    /// Scheduler rounds until every trace completed.
    pub rounds: usize,
    /// Whether cross-feed update batching was on.
    pub batching: bool,
    /// Whether shard-level read (deliver) batching was on.
    pub read_batching: bool,
    /// Per-round metrics trajectory, one entry per scheduler round.
    pub metrics: Vec<EpochMetrics>,
}

impl EngineReport {
    /// Total feed-layer Gas across all tenants (shard batches included,
    /// exactly once — the per-tenant shares partition them).
    pub fn feed_gas_total(&self) -> u64 {
        self.tenants
            .iter()
            .fold(0, |acc, t| checked_add_gas(acc, t.feed_gas_total()))
    }

    /// Total application-layer Gas across all tenants.
    pub fn app_gas_total(&self) -> u64 {
        self.tenants
            .iter()
            .fold(0, |acc, t| checked_add_gas(acc, t.run.app_gas_total()))
    }

    /// Total trace operations across all tenants.
    pub fn total_ops(&self) -> usize {
        self.tenants.iter().map(TenantReport::total_ops).sum()
    }

    /// Aggregate feed-layer Gas per operation.
    pub fn feed_gas_per_op(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            self.feed_gas_total() as f64 / ops as f64
        }
    }

    /// Rejected deliver transactions across all tenants (zero under honest
    /// SPs).
    pub fn failed_delivers(&self) -> usize {
        self.tenants.iter().map(|t| t.run.failed_delivers()).sum()
    }

    /// Renders the run as a fixed-width table — the artifact the multifeed
    /// example and the determinism test compare byte for byte.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14}{:>6}  {:<30}{:>8}{:>14}{:>12}{:>10}{:>10}{:>8}",
            "tenant",
            "shard",
            "policy",
            "ops",
            "feed gas",
            "gas/op",
            "upd gas",
            "dlv gas",
            "parked"
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "{:<14}{:>6}  {:<30}{:>8}{:>14}{:>12.1}{:>10}{:>10}{:>8}",
                t.tenant,
                t.shard,
                t.run.policy,
                t.total_ops(),
                t.feed_gas_total(),
                t.feed_gas_per_op(),
                t.batched_update_gas,
                t.batched_deliver_gas,
                t.parked_rounds,
            );
        }
        let mode = match (self.batching, self.read_batching) {
            (true, true) => "batched (upd+dlv)",
            (true, false) => "batched (upd)",
            _ => "unbatched",
        };
        let _ = writeln!(
            out,
            "{:<14}{:>6}  {:<30}{:>8}{:>14}{:>12.1}{:>10}{:>10}{:>8}",
            "TOTAL",
            "-",
            mode,
            self.total_ops(),
            self.feed_gas_total(),
            self.feed_gas_per_op(),
            self.shard_update_gas.iter().sum::<u64>(),
            self.shard_deliver_gas.iter().sum::<u64>(),
            self.tenants.iter().map(|t| t.parked_rounds).sum::<usize>(),
        );
        let _ = writeln!(
            out,
            "rounds: {}; shard update txs: {:?}; shard update gas: {:?}",
            self.rounds, self.shard_update_txs, self.shard_update_gas
        );
        let _ = writeln!(
            out,
            "shard deliver txs: {:?}; shard deliver gas: {:?}",
            self.shard_deliver_txs, self.shard_deliver_gas
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_core::metrics::EpochReport;

    fn tenant(name: &str, feed: u64, batch: u64, ops: usize) -> TenantReport {
        TenantReport {
            tenant: name.into(),
            shard: 0,
            run: RunReport {
                policy: "test".into(),
                epochs: vec![EpochReport {
                    epoch: 0,
                    ops,
                    feed_gas: feed,
                    app_gas: 7,
                    replications: 0,
                    evictions: 0,
                    failed_delivers: 0,
                }],
            },
            batched_update_gas: batch,
            batched_deliver_gas: 5,
            parked_rounds: 0,
            max_parked_streak: 0,
        }
    }

    #[test]
    fn aggregates_include_batch_shares_once() {
        let report = EngineReport {
            tenants: vec![tenant("a", 100, 40, 2), tenant("b", 50, 60, 2)],
            shard_update_gas: vec![100],
            shard_update_txs: vec![1],
            shard_deliver_gas: vec![10],
            shard_deliver_txs: vec![1],
            rounds: 1,
            batching: true,
            read_batching: true,
            metrics: vec![EpochMetrics {
                round: 0,
                staged_ops: 4,
                feed_gas: 260,
                update_gas: 100,
                deliver_gas: 10,
                ..EpochMetrics::default()
            }],
        };
        assert_eq!(report.feed_gas_total(), 100 + 40 + 5 + 50 + 60 + 5);
        assert_eq!(report.app_gas_total(), 14);
        assert_eq!(report.total_ops(), 4);
        assert_eq!(report.feed_gas_per_op(), 65.0);
        let table = report.render_table();
        assert!(table.contains("tenant"));
        assert!(table.contains("TOTAL"));
        assert_eq!(table, report.render_table(), "rendering is deterministic");
    }
}
