//! Per-tenant and aggregate reporting for multi-tenant runs.

use std::fmt::Write as _;

use grub_core::metrics::RunReport;
use serde::{Deserialize, Serialize};

/// One tenant's share of a multi-tenant run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Shard the tenant was hashed to.
    pub shard: usize,
    /// The tenant's own epoch-by-epoch report (read path, delivers, and —
    /// when batching is off — its update transactions).
    pub run: RunReport,
    /// The tenant's byte-proportional share of its shard's batched update
    /// transactions (zero when batching is off).
    pub batched_update_gas: u64,
}

impl TenantReport {
    /// Total feed-layer Gas the tenant is accountable for: its own epochs
    /// plus its share of the shard batches.
    pub fn feed_gas_total(&self) -> u64 {
        self.run.feed_gas_total() + self.batched_update_gas
    }

    /// Trace operations the tenant ran.
    pub fn total_ops(&self) -> usize {
        self.run.total_ops()
    }

    /// Feed-layer Gas per operation, batch share included.
    pub fn feed_gas_per_op(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            self.feed_gas_total() as f64 / ops as f64
        }
    }
}

/// The aggregate result of one engine run.
///
/// Tenant order is the feed declaration order; all contained quantities are
/// deterministic functions of the engine's specs, so two identical runs
/// render byte-identical tables.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineReport {
    /// Per-tenant reports, in declaration order.
    pub tenants: Vec<TenantReport>,
    /// Metered Gas of each shard's batched update transactions. Tenant
    /// `batched_update_gas` shares sum exactly to these totals.
    pub shard_update_gas: Vec<u64>,
    /// Number of batched update transactions each shard sent.
    pub shard_update_txs: Vec<usize>,
    /// Scheduler rounds until every trace completed.
    pub rounds: usize,
    /// Whether cross-feed batching was on.
    pub batching: bool,
}

impl EngineReport {
    /// Total feed-layer Gas across all tenants (shard batches included,
    /// exactly once — the per-tenant shares partition them).
    pub fn feed_gas_total(&self) -> u64 {
        self.tenants.iter().map(TenantReport::feed_gas_total).sum()
    }

    /// Total application-layer Gas across all tenants.
    pub fn app_gas_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.run.app_gas_total()).sum()
    }

    /// Total trace operations across all tenants.
    pub fn total_ops(&self) -> usize {
        self.tenants.iter().map(TenantReport::total_ops).sum()
    }

    /// Aggregate feed-layer Gas per operation.
    pub fn feed_gas_per_op(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            self.feed_gas_total() as f64 / ops as f64
        }
    }

    /// Rejected deliver transactions across all tenants (zero under honest
    /// SPs).
    pub fn failed_delivers(&self) -> usize {
        self.tenants.iter().map(|t| t.run.failed_delivers()).sum()
    }

    /// Renders the run as a fixed-width table — the artifact the multifeed
    /// example and the determinism test compare byte for byte.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14}{:>6}  {:<30}{:>8}{:>14}{:>12}{:>10}",
            "tenant", "shard", "policy", "ops", "feed gas", "gas/op", "batch gas"
        );
        for t in &self.tenants {
            let _ = writeln!(
                out,
                "{:<14}{:>6}  {:<30}{:>8}{:>14}{:>12.1}{:>10}",
                t.tenant,
                t.shard,
                t.run.policy,
                t.total_ops(),
                t.feed_gas_total(),
                t.feed_gas_per_op(),
                t.batched_update_gas,
            );
        }
        let _ = writeln!(
            out,
            "{:<14}{:>6}  {:<30}{:>8}{:>14}{:>12.1}{:>10}",
            "TOTAL",
            "-",
            if self.batching {
                "batched"
            } else {
                "unbatched"
            },
            self.total_ops(),
            self.feed_gas_total(),
            self.feed_gas_per_op(),
            self.shard_update_gas.iter().sum::<u64>(),
        );
        let _ = writeln!(
            out,
            "rounds: {}; shard update txs: {:?}; shard update gas: {:?}",
            self.rounds, self.shard_update_txs, self.shard_update_gas
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_core::metrics::EpochReport;

    fn tenant(name: &str, feed: u64, batch: u64, ops: usize) -> TenantReport {
        TenantReport {
            tenant: name.into(),
            shard: 0,
            run: RunReport {
                policy: "test".into(),
                epochs: vec![EpochReport {
                    epoch: 0,
                    ops,
                    feed_gas: feed,
                    app_gas: 7,
                    replications: 0,
                    evictions: 0,
                    failed_delivers: 0,
                }],
            },
            batched_update_gas: batch,
        }
    }

    #[test]
    fn aggregates_include_batch_shares_once() {
        let report = EngineReport {
            tenants: vec![tenant("a", 100, 40, 2), tenant("b", 50, 60, 2)],
            shard_update_gas: vec![100],
            shard_update_txs: vec![1],
            rounds: 1,
            batching: true,
        };
        assert_eq!(report.feed_gas_total(), 100 + 40 + 50 + 60);
        assert_eq!(report.app_gas_total(), 14);
        assert_eq!(report.total_ops(), 4);
        assert_eq!(report.feed_gas_per_op(), 62.5);
        let table = report.render_table();
        assert!(table.contains("tenant"));
        assert!(table.contains("TOTAL"));
        assert_eq!(table, report.render_table(), "rendering is deterministic");
    }
}
