//! The on-chain shard router: one transaction, many feeds' `update()`s.

use grub_chain::codec::{decode_sections, Encoder};
use grub_chain::Address;
use grub_chain::{CallContext, Contract, VmError};

/// A shard's batching contract.
///
/// Both entry points take the [`encode_sections`] framing — a list of
/// `(storage manager address, payload)` pairs — and forward each payload to
/// its manager as an internal call. Internal calls pay no transaction
/// envelope, so the shard's feeds share a single `Ctx` base cost; every
/// storage write, digest update, and proof verification is still executed
/// (and metered) by the target manager exactly as an unbatched call would.
///
/// * `batchUpdate(sections)` forwards each section to its manager's
///   `update()` — the write path (DO epoch updates).
/// * `batchDeliver(sections)` forwards each section to its manager's
///   `deliver()` — the read path (SP proof-carrying deliveries), coalescing
///   what would otherwise be one `deliver` transaction per feed per epoch.
///
/// Only the shard operator account configured at deploy time may call
/// either; each target manager additionally enforces its own authorization
/// on `update()` (the router must be registered as that manager's update
/// delegate), so a compromised router cannot write feeds outside its shard.
/// `deliver()` needs no caller check — it only accepts payloads that verify
/// against the manager's own root digest.
///
/// Malformed section framing (truncated payloads, forged section counts) is
/// rejected by [`decode_sections`] with a typed [`VmError::Decode`], which
/// reverts the batch atomically; nothing panics.
///
/// [`encode_sections`]: grub_chain::codec::encode_sections
/// [`decode_sections`]: grub_chain::codec::decode_sections
#[derive(Debug)]
pub struct ShardRouter {
    operator: Address,
}

impl ShardRouter {
    /// A router accepting batches only from `operator`.
    pub fn new(operator: Address) -> Self {
        ShardRouter { operator }
    }

    /// Decodes and forwards one batch, invoking `func` on every section's
    /// manager.
    fn forward_batch(
        &self,
        ctx: &mut CallContext<'_>,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        if ctx.caller != self.operator {
            return Err(VmError::Unauthorized);
        }
        let sections = decode_sections(input)?;
        if sections.is_empty() {
            return Err(VmError::Revert(format!("empty {func} batch")));
        }
        for (manager, payload) in &sections {
            ctx.call(*manager, func, payload)?;
        }
        let mut out = Encoder::new();
        out.u64(sections.len() as u64);
        Ok(out.finish())
    }
}

impl Contract for ShardRouter {
    fn call(
        &self,
        ctx: &mut CallContext<'_>,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        match func {
            "batchUpdate" => self.forward_batch(ctx, "update", input),
            "batchDeliver" => self.forward_batch(ctx, "deliver", input),
            _ => Err(VmError::UnknownFunction(func.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_chain::codec::{encode_sections, Decoder};
    use grub_chain::{Blockchain, Transaction};
    use grub_core::contract::OnChainTrace;
    use grub_core::contract::{encode_update, StorageManager};
    use grub_gas::Layer;
    use grub_merkle::MerkleKv;
    use std::rc::Rc;

    #[test]
    fn router_forwards_sections_and_rejects_strangers() {
        let mut chain = Blockchain::new();
        let operator = Address::derive("shard-op");
        let router = Address::derive("shard-router");
        let do_a = Address::derive("do-a");
        let mgr_a = Address::derive("mgr-a");
        chain.deploy(router, Rc::new(ShardRouter::new(operator)), Layer::Feed);
        chain.deploy(
            mgr_a,
            Rc::new(StorageManager::with_delegate(
                do_a,
                router,
                OnChainTrace::None,
            )),
            Layer::Feed,
        );
        let digest = MerkleKv::new().root();
        let payload = encode_update(&digest, &[], &[], &[]);
        let batch = encode_sections(&[(mgr_a, payload.clone())]);

        // A stranger's batch reverts.
        chain.submit(Transaction::new(
            Address::derive("mallory"),
            router,
            "batchUpdate",
            batch.clone(),
            Layer::Feed,
        ));
        assert!(!chain.produce_block().receipts[0].success);

        // The operator's batch lands and reports the section count.
        chain.submit(Transaction::new(
            operator,
            router,
            "batchUpdate",
            batch,
            Layer::Feed,
        ));
        let block = chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        let mut dec = Decoder::new(&block.receipts[0].output);
        assert_eq!(dec.u64().expect("batchUpdate returns the section count"), 1);

        // A batch naming a manager that does not trust the router reverts
        // atomically (manager-side authorization).
        let mgr_b = Address::derive("mgr-b");
        chain.deploy(
            mgr_b,
            Rc::new(StorageManager::new(
                Address::derive("do-b"),
                OnChainTrace::None,
            )),
            Layer::Feed,
        );
        let batch = encode_sections(&[(mgr_b, encode_update(&digest, &[], &[], &[]))]);
        chain.submit(Transaction::new(
            operator,
            router,
            "batchUpdate",
            batch,
            Layer::Feed,
        ));
        assert!(!chain.produce_block().receipts[0].success);
    }

    #[test]
    fn empty_batch_reverts() {
        let mut chain = Blockchain::new();
        let operator = Address::derive("shard-op");
        let router = Address::derive("shard-router");
        chain.deploy(router, Rc::new(ShardRouter::new(operator)), Layer::Feed);
        for func in ["batchUpdate", "batchDeliver"] {
            chain.submit(Transaction::new(
                operator,
                router,
                func,
                encode_sections(&[]),
                Layer::Feed,
            ));
            assert!(!chain.produce_block().receipts[0].success);
        }
    }

    /// A stand-in manager whose `deliver` just counts invocations, so the
    /// forwarding test does not need the full proof machinery.
    struct DeliverSink;

    impl Contract for DeliverSink {
        fn call(
            &self,
            ctx: &mut CallContext<'_>,
            func: &str,
            _input: &[u8],
        ) -> Result<Vec<u8>, VmError> {
            match func {
                "deliver" => {
                    let n = ctx.sload_u64(b"delivered")?.unwrap_or(0);
                    ctx.sstore_u64(b"delivered", n + 1)?;
                    Ok(Vec::new())
                }
                "count" => {
                    let n = ctx.sload_u64(b"delivered")?.unwrap_or(0);
                    let mut out = Encoder::new();
                    out.u64(n);
                    Ok(out.finish())
                }
                _ => Err(VmError::UnknownFunction(func.to_owned())),
            }
        }
    }

    #[test]
    fn router_forwards_deliver_sections_to_each_manager() {
        let mut chain = Blockchain::new();
        let operator = Address::derive("shard-op");
        let router = Address::derive("shard-router");
        let sink_a = Address::derive("sink-a");
        let sink_b = Address::derive("sink-b");
        chain.deploy(router, Rc::new(ShardRouter::new(operator)), Layer::Feed);
        chain.deploy(sink_a, Rc::new(DeliverSink), Layer::Feed);
        chain.deploy(sink_b, Rc::new(DeliverSink), Layer::Feed);
        let batch = encode_sections(&[
            (sink_a, b"payload-1".to_vec()),
            (sink_b, b"payload-2".to_vec()),
            (sink_a, b"payload-3".to_vec()),
        ]);

        // A stranger's deliver batch reverts.
        chain.submit(Transaction::new(
            Address::derive("mallory"),
            router,
            "batchDeliver",
            batch.clone(),
            Layer::Feed,
        ));
        assert!(!chain.produce_block().receipts[0].success);

        // The operator's batch fans out one internal deliver per section.
        chain.submit(Transaction::new(
            operator,
            router,
            "batchDeliver",
            batch,
            Layer::Feed,
        ));
        let block = chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        let count = |sink| {
            let out = chain
                .static_call(operator, sink, "count", &[])
                .expect("count view");
            Decoder::new(&out).u64().expect("count output")
        };
        assert_eq!(count(sink_a), 2);
        assert_eq!(count(sink_b), 1);
    }

    #[test]
    fn malformed_batch_payloads_revert_without_panic() {
        let mut chain = Blockchain::new();
        let operator = Address::derive("shard-op");
        let router = Address::derive("shard-router");
        chain.deploy(router, Rc::new(ShardRouter::new(operator)), Layer::Feed);
        let honest = encode_sections(&[(Address::derive("m"), b"payload".to_vec())]);
        let truncated = honest[..honest.len() - 3].to_vec();
        let forged_count = {
            let mut enc = Encoder::new();
            enc.u64(u64::MAX);
            enc.finish()
        };
        let oversized_claim = {
            // In-bound count, but the sections cannot possibly fit.
            let mut enc = Encoder::new();
            enc.u64(1000).bytes(b"junk");
            enc.finish()
        };
        for func in ["batchUpdate", "batchDeliver"] {
            for payload in [
                truncated.clone(),
                forged_count.clone(),
                oversized_claim.clone(),
            ] {
                chain.submit(Transaction::new(
                    operator,
                    router,
                    func,
                    payload,
                    Layer::Feed,
                ));
                let block = chain.produce_block();
                assert!(!block.receipts[0].success, "{func} must reject");
                let err = block.receipts[0].error.as_deref().unwrap_or_default();
                assert!(
                    err.contains("decode") || err.contains("truncated") || err.contains("bound"),
                    "{func} error must be a typed decode error, got: {err}"
                );
            }
        }
    }
}
