//! The on-chain shard router: one transaction, many feeds' `update()`s.

use grub_chain::codec::{decode_sections, Encoder};
use grub_chain::Address;
use grub_chain::{CallContext, Contract, VmError};

/// A shard's batching contract.
///
/// `batchUpdate(sections)` takes the [`encode_sections`] framing — a list of
/// `(storage manager address, update payload)` pairs — and forwards each
/// payload to its manager as an internal call. Internal calls pay no
/// transaction envelope, so the shard's feeds share a single `Ctx` base
/// cost; every storage write and digest update is still executed (and
/// metered) by the target manager exactly as an unbatched `update()` would.
///
/// Only the shard operator account configured at deploy time may call it;
/// each target manager additionally enforces its own authorization (the
/// router must be registered as that manager's update delegate), so a
/// compromised router cannot write feeds outside its shard.
///
/// [`encode_sections`]: grub_chain::codec::encode_sections
#[derive(Debug)]
pub struct ShardRouter {
    operator: Address,
}

impl ShardRouter {
    /// A router accepting batches only from `operator`.
    pub fn new(operator: Address) -> Self {
        ShardRouter { operator }
    }

    fn batch_update(&self, ctx: &mut CallContext<'_>, input: &[u8]) -> Result<Vec<u8>, VmError> {
        if ctx.caller != self.operator {
            return Err(VmError::Unauthorized);
        }
        let sections = decode_sections(input)?;
        if sections.is_empty() {
            return Err(VmError::Revert("empty update batch".into()));
        }
        for (manager, payload) in &sections {
            ctx.call(*manager, "update", payload)?;
        }
        let mut out = Encoder::new();
        out.u64(sections.len() as u64);
        Ok(out.finish())
    }
}

impl Contract for ShardRouter {
    fn call(
        &self,
        ctx: &mut CallContext<'_>,
        func: &str,
        input: &[u8],
    ) -> Result<Vec<u8>, VmError> {
        match func {
            "batchUpdate" => self.batch_update(ctx, input),
            _ => Err(VmError::UnknownFunction(func.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_chain::codec::{encode_sections, Decoder};
    use grub_chain::{Blockchain, Transaction};
    use grub_core::contract::OnChainTrace;
    use grub_core::contract::{encode_update, StorageManager};
    use grub_gas::Layer;
    use grub_merkle::MerkleKv;
    use std::rc::Rc;

    #[test]
    fn router_forwards_sections_and_rejects_strangers() {
        let mut chain = Blockchain::new();
        let operator = Address::derive("shard-op");
        let router = Address::derive("shard-router");
        let do_a = Address::derive("do-a");
        let mgr_a = Address::derive("mgr-a");
        chain.deploy(router, Rc::new(ShardRouter::new(operator)), Layer::Feed);
        chain.deploy(
            mgr_a,
            Rc::new(StorageManager::with_delegate(
                do_a,
                router,
                OnChainTrace::None,
            )),
            Layer::Feed,
        );
        let digest = MerkleKv::new().root();
        let payload = encode_update(&digest, &[], &[], &[]);
        let batch = encode_sections(&[(mgr_a, payload.clone())]);

        // A stranger's batch reverts.
        chain.submit(Transaction::new(
            Address::derive("mallory"),
            router,
            "batchUpdate",
            batch.clone(),
            Layer::Feed,
        ));
        assert!(!chain.produce_block().receipts[0].success);

        // The operator's batch lands and reports the section count.
        chain.submit(Transaction::new(
            operator,
            router,
            "batchUpdate",
            batch,
            Layer::Feed,
        ));
        let block = chain.produce_block();
        assert!(block.receipts[0].success, "{:?}", block.receipts[0].error);
        let mut dec = Decoder::new(&block.receipts[0].output);
        assert_eq!(dec.u64().unwrap(), 1);

        // A batch naming a manager that does not trust the router reverts
        // atomically (manager-side authorization).
        let mgr_b = Address::derive("mgr-b");
        chain.deploy(
            mgr_b,
            Rc::new(StorageManager::new(
                Address::derive("do-b"),
                OnChainTrace::None,
            )),
            Layer::Feed,
        );
        let batch = encode_sections(&[(mgr_b, encode_update(&digest, &[], &[], &[]))]);
        chain.submit(Transaction::new(
            operator,
            router,
            "batchUpdate",
            batch,
            Layer::Feed,
        ));
        assert!(!chain.produce_block().receipts[0].success);
    }

    #[test]
    fn empty_batch_reverts() {
        let mut chain = Blockchain::new();
        let operator = Address::derive("shard-op");
        let router = Address::derive("shard-router");
        chain.deploy(router, Rc::new(ShardRouter::new(operator)), Layer::Feed);
        chain.submit(Transaction::new(
            operator,
            router,
            "batchUpdate",
            encode_sections(&[]),
            Layer::Feed,
        ));
        assert!(!chain.produce_block().receipts[0].success);
    }
}
