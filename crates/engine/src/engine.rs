//! The multi-tenant engine: deployment, scheduling, sharded batching.

use grub_chain::codec::encode_sections;
use grub_chain::{Address, Blockchain, ChainConfig, CommitGate, Transaction, TxId};
use grub_core::scrub::Scrubber;
use grub_core::system::{DriverIdentity, EpochDriver, StagedReads, StagedUpdate, SystemConfig};
use grub_core::{GrubError, Result};
use grub_fault::FaultPoint;
use grub_gas::{checked_add_gas, checked_sub_gas, Layer};
use grub_store::StoreError;
use grub_workload::{OpSource, PeekableSource, Trace};

use crate::executor::{ParallelExecutor, StageTask};
use crate::report::{EngineReport, EpochMetrics, TenantReport};
use crate::router::ShardRouter;

/// A shard batch transaction stays under the same `Ctx` payload bound the
/// single-feed epoch chunking uses ([`grub_core::system::UPDATE_CHUNK_BYTES`]);
/// sections that would overflow it spill into a follow-up transaction in
/// the same block.
const BATCH_CHUNK_BYTES: usize = grub_core::system::UPDATE_CHUNK_BYTES;

/// Calldata the section framing adds per batched payload: a 20-byte target
/// address plus a 4-byte length prefix (see `encode_sections`).
const SECTION_OVERHEAD_BYTES: usize = 24;

/// How a round's shard epochs are staged.
///
/// Both modes produce byte-for-byte identical chains, reports, and Gas
/// accounting on the same specs (asserted in `tests/engine.rs`): staging is
/// purely off-chain, and the parallel merge commits shard blocks in the
/// same canonical shard order the sequential pipeline uses, enforced by a
/// [`CommitGate`]. The only difference is wall-clock: with ≥ 2 shards,
/// parallel staging overlaps the shards' policy/Merkle/encoding work on
/// worker threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// The pipelined single-thread scheduler: shard `s+1` stages off-chain
    /// between shard `s`'s write block and read phase.
    #[default]
    Sequential,
    /// One staging worker thread per shard ([`ParallelExecutor`]), then a
    /// deterministic merge in canonical shard order.
    Parallel,
}

/// When (and whether) the engine cross-checks each feed's SP store against
/// the DO's authoritative records and the on-chain root at scheduler-round
/// boundaries (the background Merkle scrubber,
/// [`grub_core::scrub::Scrubber`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScrubMode {
    /// No scrubbing (the default).
    #[default]
    Off,
    /// Audit every feed after each round; findings land in that round's
    /// [`EpochMetrics`].
    Detect,
    /// Audit and repair: divergent keys are re-synced from the DO.
    Repair,
}

impl ScrubMode {
    /// Parses the `GRUB_SCRUB` environment knob: unset, empty, `0`, or
    /// `off` → [`ScrubMode::Off`]; `repair` → [`ScrubMode::Repair`];
    /// anything else → [`ScrubMode::Detect`].
    pub fn from_env() -> Self {
        match std::env::var("GRUB_SCRUB") {
            Err(_) => ScrubMode::Off,
            Ok(v) => match v.as_str() {
                "" | "0" | "off" => ScrubMode::Off,
                "repair" => ScrubMode::Repair,
                _ => ScrubMode::Detect,
            },
        }
    }
}

/// Kills the run at an armed [`grub_fault`] crash point: the typed error
/// unwinds out of the scheduler mid-pipeline, leaving the chain and every
/// feed's persistent store exactly as a dying process would. Recovery tests
/// then restart from that state.
fn fault_check(point: FaultPoint) -> Result<()> {
    if grub_fault::should_trip(point) {
        return Err(GrubError::Store(StoreError::Injected(point.name())));
    }
    Ok(())
}

/// Engine-wide configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of shards feeds are hashed across (≥ 1).
    pub shards: usize,
    /// How shard epochs are staged: the sequential pipeline or the parallel
    /// executor with deterministic merge. Defaults to
    /// [`ExecMode::Sequential`].
    pub exec: ExecMode,
    /// Whether same-block updates of a shard's feeds are coalesced into one
    /// `batchUpdate` transaction (the engine's reason to exist); disabling
    /// it reproduces N independent single-feed runs on one chain, which is
    /// the baseline the batching savings are measured against.
    pub batching: bool,
    /// Whether a shard's same-round SP deliveries are likewise coalesced
    /// into one `batchDeliver` transaction. Only effective with `batching`
    /// on (the shard router carries both); feeds configured for live-tempo
    /// reads fall back to their own deliver transactions either way. Batch
    /// shares are attributed as feed-layer Gas, so a run whose deliver-time
    /// consumer callbacks burn application-layer Gas is refused with a
    /// typed error rather than misattributed.
    pub read_batching: bool,
    /// Background Merkle scrubbing at round boundaries ([`ScrubMode`]).
    pub scrub: ScrubMode,
    /// Chain timing parameters shared by all feeds.
    pub chain: ChainConfig,
}

impl EngineConfig {
    /// A fully batching engine (writes and reads) with `shards` shards and
    /// default chain timing.
    pub fn new(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            exec: ExecMode::Sequential,
            batching: true,
            read_batching: true,
            scrub: ScrubMode::default(),
            chain: ChainConfig::default(),
        }
    }

    /// Enables background scrubbing at round boundaries.
    pub fn with_scrub(mut self, scrub: ScrubMode) -> Self {
        self.scrub = scrub;
        self
    }

    /// Disables cross-feed batching entirely (the sum-of-singles baseline).
    pub fn unbatched(mut self) -> Self {
        self.batching = false;
        self.read_batching = false;
        self
    }

    /// Keeps update batching but leaves every feed's delivers unbatched —
    /// the write-only batching mode earlier engine versions shipped, used
    /// to isolate what read batching saves on top.
    pub fn without_read_batching(mut self) -> Self {
        self.read_batching = false;
        self
    }

    /// Stages shard epochs on worker threads ([`ExecMode::Parallel`]); the
    /// deterministic merge keeps the chain byte-identical to the sequential
    /// pipeline's.
    pub fn parallel(mut self) -> Self {
        self.exec = ExecMode::Parallel;
        self
    }
}

/// Priority tier of a tenant's Gas quota ([`TenantBudget::tier`]) — the
/// engine's quota classes.
///
/// Tiers order tenants within a scheduler round two ways:
///
/// * **Refill rate** — higher tiers refill faster: per round, `High` earns
///   4 × `gas_per_round`, `Standard` 1 ×, and `Low` 1 × every *other*
///   round.
/// * **Drain order** — within a round, higher tiers run first: their
///   epochs stage first and their sections occupy the front of the shard's
///   batch, so on a spill the high tier rides the first transaction of the
///   block. The ordering is stable, so same-tier feeds keep declaration
///   order and runs stay deterministic.
///
/// Every tier carries a *starvation bound* K
/// ([`QuotaTier::starvation_bound`]): a feed is parked at most K − 1
/// consecutive rounds, after which it is force-run regardless of balance
/// (driving its bucket into debt if needed). Adversarial high-tier
/// pressure can therefore delay a low-tier feed, but never beyond K rounds
/// per epoch — asserted in `tests/engine.rs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum QuotaTier {
    /// Background tier: half-rate refill, drains last, K = 8.
    Low,
    /// The default tier: 1 × refill, K = 4.
    #[default]
    Standard,
    /// Latency-sensitive tier: 4 × refill, drains first, K = 2.
    High,
}

impl QuotaTier {
    /// Feed-layer Gas added to the tier's bucket at scheduler round
    /// `round`, given the budget's base `gas_per_round`.
    pub fn refill(self, round: usize, gas_per_round: u64) -> u64 {
        match self {
            QuotaTier::High => gas_per_round.saturating_mul(4),
            QuotaTier::Standard => gas_per_round,
            // Half rate, deterministically: earns only on even rounds.
            QuotaTier::Low => {
                if round.is_multiple_of(2) {
                    gas_per_round
                } else {
                    0
                }
            }
        }
    }

    /// The starvation bound K: a feed of this tier runs at least once every
    /// K scheduler rounds, no matter how deep its quota debt is.
    pub fn starvation_bound(self) -> usize {
        match self {
            QuotaTier::High => 2,
            QuotaTier::Standard => 4,
            QuotaTier::Low => 8,
        }
    }
}

/// Mempool ordering rank of a quota tier — higher mines first when a
/// bounded mempool ([`grub_chain::MempoolConfig`]) fills a block.
fn tier_priority(tier: QuotaTier) -> u8 {
    match tier {
        QuotaTier::Low => 0,
        QuotaTier::Standard => 1,
        QuotaTier::High => 2,
    }
}

/// A per-tenant feed-layer Gas quota, enforced by the scheduler as a token
/// bucket with deferral.
///
/// Every scheduler round the tenant's balance grows by `gas_per_round`
/// (capped at `burst`); a feed whose next epoch is estimated to cost more
/// than its balance is *parked* — it keeps its trace position and all staged
/// state untouched and is retried next round, by which time the bucket has
/// refilled. Spending is charged at the epoch's actual metered feed-layer
/// cost (the tenant's own transactions plus its byte-proportional share of
/// shard batches) and may drive the balance into debt, parking the feed for
/// proportionally more rounds. The estimate is the previous epoch's actual
/// cost, so a tenant's first epoch always runs.
///
/// Parking never starves, twice over: the balance strictly increases while
/// parked, a feed whose epochs cost more than `burst` (so no amount of
/// waiting would cover them) runs as soon as the bucket is full — and the
/// quota class's starvation bound ([`QuotaTier::starvation_bound`])
/// force-runs any feed parked K − 1 consecutive rounds regardless of
/// balance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantBudget {
    /// Feed-layer Gas granted to the tenant each scheduler round (≥ 1),
    /// before the tier's refill scaling.
    pub gas_per_round: u64,
    /// Cap on the accumulated unspent allowance (≥ `gas_per_round`).
    pub burst: u64,
    /// The quota class: refill scaling, drain priority, and starvation
    /// bound. Defaults to [`QuotaTier::Standard`].
    pub tier: QuotaTier,
}

impl TenantBudget {
    /// A budget granting `gas` per round with a default burst of four
    /// rounds' allowance, in the [`QuotaTier::Standard`] class.
    pub fn per_round(gas: u64) -> Self {
        let gas = gas.max(1);
        TenantBudget {
            gas_per_round: gas,
            burst: gas.saturating_mul(4),
            tier: QuotaTier::Standard,
        }
    }

    /// Overrides the burst cap (clamped to at least one round's allowance).
    pub fn burst(mut self, burst: u64) -> Self {
        self.burst = burst.max(self.gas_per_round);
        self
    }

    /// Assigns the quota class ([`QuotaTier`]).
    pub fn tier(mut self, tier: QuotaTier) -> Self {
        self.tier = tier;
        self
    }
}

/// One tenant's feed: a name, a full single-feed configuration, and the
/// workload *stream* the engine will pull through it.
#[derive(Clone, Debug)]
pub struct FeedSpec {
    /// Unique tenant name; determines the shard and the on-chain address
    /// namespace.
    pub tenant: String,
    /// The feed's own policy/epoch/preload configuration. (`chain` timing
    /// inside it is ignored — the engine's chain is shared.)
    pub config: SystemConfig,
    /// The tenant's workload, pulled one epoch per scheduler round. A
    /// materialized [`Trace`] rides along as a
    /// [`TraceSource`](grub_workload::TraceSource); generator sources
    /// stream at O(1) trace-side memory.
    pub source: Box<dyn OpSource>,
    /// Optional per-tenant Gas quota ([`TenantBudget`]); `None` schedules
    /// the feed every round unconditionally.
    pub budget: Option<TenantBudget>,
}

impl FeedSpec {
    /// Builds a feed spec from a materialized trace (back-compat: the trace
    /// is replayed as a stream).
    pub fn new(tenant: impl Into<String>, config: SystemConfig, trace: Trace) -> Self {
        Self::from_source(tenant, config, Box::new(trace.into_source()))
    }

    /// Builds a feed spec from a streaming operation source.
    pub fn from_source(
        tenant: impl Into<String>,
        config: SystemConfig,
        source: Box<dyn OpSource>,
    ) -> Self {
        FeedSpec {
            tenant: tenant.into(),
            config,
            source,
            budget: None,
        }
    }

    /// Attaches a per-tenant Gas quota.
    pub fn with_budget(mut self, budget: TenantBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Materializes the spec's stream from its current position (cloning
    /// the source, which stays untouched) — for tests and reports that
    /// need op counts up front.
    pub fn materialized(&self) -> Trace {
        let mut fork = self.source.clone_box();
        Trace::from_source(&mut fork)
    }
}

/// Claims a shard's commit slot on the round's [`CommitGate`], mapping an
/// ordering violation into an engine error (it would mean the scheduler is
/// about to interleave shard blocks out of canonical order — a determinism
/// bug, not a recoverable condition).
fn claim_lane(gate: &mut CommitGate, lane: usize) -> Result<()> {
    gate.claim(lane)
        .map_err(|e| GrubError::Chain(e.to_string()))
}

/// Deterministic tenant→shard assignment: FNV-1a over the tenant name.
pub fn tenant_shard(tenant: &str, shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards.max(1) as u64) as usize
}

struct Shard {
    operator: Address,
    router: Address,
    update_gas: u64,
    update_txs: usize,
    deliver_gas: u64,
    deliver_txs: usize,
}

struct FeedSlot {
    tenant: String,
    shard: usize,
    driver: EpochDriver,
    /// The tenant's op stream with a one-op lookahead, so the scheduler's
    /// exhaustion test never consumes an operation.
    source: PeekableSource,
    batched_update_gas: u64,
    batched_deliver_gas: u64,
    budget: Option<TenantBudget>,
    /// Quota balance, in feed-layer Gas. Signed: spending is charged at the
    /// actual metered cost and may run the bucket into debt.
    balance: i128,
    /// Actual feed-layer cost of the most recent epoch — the scheduler's
    /// cost estimate for the next one.
    last_epoch_cost: Option<u64>,
    parked_rounds: usize,
    /// Consecutive rounds parked since the feed last ran — what the tier's
    /// starvation bound caps.
    parked_streak: usize,
    /// Longest park streak observed, surfaced in the tenant report so tests
    /// can assert the starvation bound held.
    max_parked_streak: usize,
}

impl FeedSlot {
    fn exhausted(&self) -> bool {
        self.source.is_exhausted()
    }

    /// Pulls the next epoch's worth of operations from the stream into the
    /// driver — the same
    /// [`EpochStage::ingest`](grub_core::system::EpochStage::ingest) loop
    /// the parallel staging tasks run. A parked feed is simply not pulled,
    /// so its stream position never moves.
    fn ingest_epoch(&mut self) {
        self.driver.stage_mut().ingest(&mut self.source);
    }

    /// The feed's cumulative share of shard batch transactions.
    fn batched_gas(&self) -> u64 {
        checked_add_gas(self.batched_update_gas, self.batched_deliver_gas)
    }

    /// The feed's quota class (Standard when it has no budget at all).
    fn tier(&self) -> QuotaTier {
        self.budget.map_or(QuotaTier::Standard, |b| b.tier)
    }

    /// Refills the quota bucket for round `round` and decides whether the
    /// feed can afford its next epoch. Feeds without a budget always run.
    fn refill_and_decide(&mut self, round: usize) -> bool {
        let Some(budget) = self.budget else {
            return true;
        };
        let per_round = budget.gas_per_round.max(1);
        let burst = i128::from(budget.burst.max(per_round));
        let refill = i128::from(budget.tier.refill(round, per_round));
        self.balance = (self.balance + refill).min(burst);
        let estimate = i128::from(self.last_epoch_cost.unwrap_or(0));
        // Park while the estimated cost exceeds the balance — unless the
        // bucket is already full (waiting cannot help) or the tier's
        // starvation bound is due (a feed parked K−1 consecutive rounds
        // must run on the Kth, debt or not).
        if estimate > self.balance
            && self.balance < burst
            && self.parked_streak + 1 < budget.tier.starvation_bound()
        {
            self.parked_rounds += 1;
            self.parked_streak += 1;
            self.max_parked_streak = self.max_parked_streak.max(self.parked_streak);
            return false;
        }
        self.parked_streak = 0;
        true
    }

    /// Charges an epoch's actual metered feed-layer cost against the quota
    /// (debt allowed) and records it as the next round's estimate.
    fn charge_quota(&mut self, cost: u64) {
        self.last_epoch_cost = Some(cost);
        if self.budget.is_some() {
            self.balance -= i128::from(cost);
        }
    }
}

/// Which router entry point a shard batch goes through, and which accounts
/// its metered Gas books into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BatchKind {
    Update,
    Deliver,
}

impl BatchKind {
    fn func(self) -> &'static str {
        match self {
            BatchKind::Update => "batchUpdate",
            BatchKind::Deliver => "batchDeliver",
        }
    }
}

/// One runnable feed's round-local state as it moves through the pipeline:
/// staged update payloads plus the batch-share baseline for quota charging.
struct RoundFeed {
    idx: usize,
    batched_before: u64,
    update: StagedUpdate,
}

/// The sharded multi-tenant feed engine.
///
/// See the crate docs for the architecture and invariants. Build with
/// [`FeedEngine::new`], then [`FeedEngine::run`] to completion.
pub struct FeedEngine {
    chain: Blockchain,
    shards: Vec<Shard>,
    feeds: Vec<FeedSlot>,
    batching: bool,
    read_batching: bool,
    exec: ExecMode,
    scrub: ScrubMode,
    rounds: usize,
    /// The parallel staging pool, spawned on first use and reused across
    /// rounds (sequential runs never pay for the threads).
    executor: Option<ParallelExecutor>,
    metrics: Vec<EpochMetrics>,
    /// Sections the current round's shard batches carried so far — reset at
    /// the top of every round, snapshotted into its [`EpochMetrics`].
    round_update_sections: usize,
    round_deliver_sections: usize,
}

impl FeedEngine {
    /// Deploys every shard router and every feed onto a fresh chain, then
    /// resets the Gas meter so provisioning (contract setup, preloads) is
    /// excluded from all reports — the same steady-state metering the
    /// single-feed harness uses.
    ///
    /// # Errors
    ///
    /// Rejects empty or duplicate tenant names; propagates store failures
    /// and failed preload transactions.
    pub fn new(config: &EngineConfig, specs: Vec<FeedSpec>) -> Result<Self> {
        let mut chain = Blockchain::with_config(config.chain);
        let shards: Vec<Shard> = (0..config.shards.max(1))
            .map(|i| {
                let operator = Address::derive(&format!("grub-shard-operator/{i}"));
                let router = Address::derive(&format!("grub-shard-router/{i}"));
                chain.deploy(
                    router,
                    std::rc::Rc::new(ShardRouter::new(operator)),
                    Layer::Feed,
                );
                Shard {
                    operator,
                    router,
                    update_gas: 0,
                    update_txs: 0,
                    deliver_gas: 0,
                    deliver_txs: 0,
                }
            })
            .collect();
        let mut feeds = Vec::with_capacity(specs.len());
        let mut seen = std::collections::BTreeSet::new();
        for spec in specs {
            if spec.tenant.is_empty() {
                return Err(GrubError::Chain("tenant name must be non-empty".into()));
            }
            if !seen.insert(spec.tenant.clone()) {
                return Err(GrubError::Chain(format!(
                    "duplicate tenant name: {}",
                    spec.tenant
                )));
            }
            let shard = tenant_shard(&spec.tenant, shards.len());
            let mut identity = DriverIdentity::tenant(format!("tenant/{}", spec.tenant));
            if config.batching {
                identity = identity.with_update_delegate(shards[shard].router);
            }
            let driver = EpochDriver::deploy(&mut chain, &spec.config, &identity)?;
            feeds.push(FeedSlot {
                tenant: spec.tenant,
                shard,
                driver,
                source: PeekableSource::new(spec.source),
                batched_update_gas: 0,
                batched_deliver_gas: 0,
                budget: spec.budget,
                balance: 0,
                last_epoch_cost: None,
                parked_rounds: 0,
                parked_streak: 0,
                max_parked_streak: 0,
            });
        }
        chain.meter_reset();
        Ok(FeedEngine {
            chain,
            shards,
            feeds,
            batching: config.batching,
            read_batching: config.batching && config.read_batching,
            exec: config.exec,
            scrub: config.scrub,
            rounds: 0,
            executor: None,
            metrics: Vec::new(),
            round_update_sections: 0,
            round_deliver_sections: 0,
        })
    }

    /// Convenience: build and run in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`FeedEngine::new`] and [`FeedEngine::run`] failures.
    pub fn run_specs(config: &EngineConfig, specs: Vec<FeedSpec>) -> Result<EngineReport> {
        FeedEngine::new(config, specs)?.run()
    }

    /// Drives every feed's trace to completion, one epoch per feed per
    /// round (quota-parked feeds skip rounds), and returns the per-tenant
    /// + aggregate report.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn run(self) -> Result<EngineReport> {
        self.run_with_chain().map(|(report, _)| report)
    }

    /// Like [`FeedEngine::run`], additionally handing back the final chain
    /// so callers can compare runs byte for byte
    /// ([`Blockchain::chain_digest`]) — the parallel-vs-sequential
    /// determinism contract is asserted this way.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn run_with_chain(self) -> Result<(EngineReport, Blockchain)> {
        let (report, chain) = self.run_surviving();
        Ok((report?, chain))
    }

    /// Like [`FeedEngine::run_with_chain`], but hands the chain back even
    /// when the run dies mid-pipeline — the surviving chain of a crash
    /// (e.g. an armed [`grub_fault`] point) is exactly what a recovery
    /// harness needs to restart from.
    pub fn run_surviving(mut self) -> (Result<EngineReport>, Blockchain) {
        let result = self.run_rounds();
        let chain = std::mem::take(&mut self.chain);
        (result.map(|()| self.into_report()), chain)
    }

    /// Drives scheduler rounds until every feed's stream is exhausted,
    /// without consuming the engine — callers that need to inspect drivers
    /// after the run (recovery harnesses, scrub audits) use this and keep
    /// the engine.
    ///
    /// # Errors
    ///
    /// Propagates store failures, protocol-violating transaction failures,
    /// and injected crash points.
    pub fn run_rounds(&mut self) -> Result<()> {
        while self.feeds.iter().any(|f| !f.exhausted()) {
            self.run_metered_round()?;
            self.rounds += 1;
        }
        Ok(())
    }

    /// One scheduler round wrapped in metrics collection: Gas-meter and
    /// counter snapshots around [`FeedEngine::run_round`], a scrub pass at
    /// the epoch boundary, and one [`EpochMetrics`] entry appended.
    fn run_metered_round(&mut self) -> Result<()> {
        // grub-lint: allow(determinism) — wall-clock timing feeds EpochMetrics reporting only, never the digest
        let started = std::time::Instant::now();
        let gas_before = self.chain.gas_snapshot();
        let ops_before = self.completed_ops();
        let parked_before: usize = self.feeds.iter().map(|f| f.parked_rounds).sum();
        let update_gas_before: u64 = self.shards.iter().map(|s| s.update_gas).sum();
        let deliver_gas_before: u64 = self.shards.iter().map(|s| s.deliver_gas).sum();
        let perf_before = self.perf_totals();
        self.round_update_sections = 0;
        self.round_deliver_sections = 0;
        let height_before = self.chain.height();
        self.run_round()?;
        // Round boundary = acknowledgment boundary: every block this round
        // mined (including shard batchUpdate/batchDeliver blocks sealed
        // after the per-feed epochs closed) must be `confirm_depth` deep
        // before the round's results count. A no-op at depth 0.
        self.chain.await_confirmations().map_err(GrubError::from)?;
        let (scrub_findings, scrub_repaired) = self.run_scrub_pass()?;
        let gas_after = self.chain.gas_snapshot();
        let perf_after = self.perf_totals();
        let (feed_delta, app_delta) = gas_after.since(gas_before);
        // Fee tape over the heights this round mined: the per-round min/max
        // gas-price multiplier, base price when flat or no block sealed.
        let (fee_low, fee_high) = {
            let mut low = grub_gas::BASE_PRICE_PERMILLE;
            let mut high = grub_gas::BASE_PRICE_PERMILLE;
            let mut any = false;
            for h in (height_before + 1)..=self.chain.height() {
                let p = self.chain.fee_price_permille(h);
                if any {
                    low = low.min(p);
                    high = high.max(p);
                } else {
                    low = p;
                    high = p;
                    any = true;
                }
            }
            (low, high)
        };
        self.metrics.push(EpochMetrics {
            round: self.rounds,
            staged_ops: self.completed_ops() - ops_before,
            feed_gas: feed_delta.amount(),
            app_gas: app_delta.amount(),
            update_gas: checked_sub_gas(
                self.shards.iter().map(|s| s.update_gas).sum(),
                update_gas_before,
            ),
            deliver_gas: checked_sub_gas(
                self.shards.iter().map(|s| s.deliver_gas).sum(),
                deliver_gas_before,
            ),
            update_sections: self.round_update_sections,
            deliver_sections: self.round_deliver_sections,
            parked: self.feeds.iter().map(|f| f.parked_rounds).sum::<usize>() - parked_before,
            max_parked_streak: self
                .feeds
                .iter()
                .map(|f| f.parked_streak)
                .max()
                .unwrap_or(0),
            scrub_findings,
            scrub_repaired,
            fee_low_permille: fee_low,
            fee_high_permille: fee_high,
            confirmed_height: self.chain.confirmed_height(),
            wall_clock_micros: started.elapsed().as_micros().try_into().unwrap_or(u64::MAX),
            cache_hits: perf_after.cache_hits - perf_before.cache_hits,
            cache_misses: perf_after.cache_misses - perf_before.cache_misses,
            bloom_skips: perf_after.bloom_skips - perf_before.bloom_skips,
            merkle_nodes_rehashed: perf_after.merkle_nodes_rehashed
                - perf_before.merkle_nodes_rehashed,
        });
        Ok(())
    }

    /// Hot-path counters summed across every feed (cumulative since open).
    fn perf_totals(&self) -> grub_core::system::StagePerf {
        let mut total = grub_core::system::StagePerf::default();
        for feed in &self.feeds {
            let perf = feed.driver.perf();
            total.cache_hits += perf.cache_hits;
            total.cache_misses += perf.cache_misses;
            total.bloom_skips += perf.bloom_skips;
            total.merkle_nodes_rehashed += perf.merkle_nodes_rehashed;
        }
        total
    }

    /// Trace operations completed so far, across all feeds. O(feeds): each
    /// driver keeps a running counter, so the per-round metrics snapshot
    /// never re-walks the growing epoch-report history.
    fn completed_ops(&self) -> usize {
        self.feeds.iter().map(|f| f.driver.completed_ops()).sum()
    }

    /// One scrub pass over every feed at a round boundary (no-op with
    /// scrubbing [`ScrubMode::Off`]). Returns (findings, repaired) totals.
    fn run_scrub_pass(&mut self) -> Result<(usize, usize)> {
        let scrubber = match self.scrub {
            ScrubMode::Off => return Ok((0, 0)),
            ScrubMode::Detect => Scrubber::default(),
            ScrubMode::Repair => Scrubber::repairing(),
        };
        let mut findings = 0;
        let mut repaired = 0;
        let chain = &self.chain;
        for feed in &mut self.feeds {
            let report = feed.driver.scrub(chain, scrubber)?;
            findings += report.findings.len();
            repaired += report.repaired();
        }
        Ok((findings, repaired))
    }

    /// One scheduler round.
    ///
    /// Every feed with trace remaining and quota to spend runs one epoch,
    /// higher quota tiers first. With batching off each feed runs
    /// standalone, one after another (the sum-of-singles baseline). With
    /// batching on the shards run either as the sequential software
    /// pipeline or through the parallel executor with a deterministic
    /// merge — see [`ExecMode`]. All four paths produce byte-identical
    /// chains on the same specs.
    fn run_round(&mut self) -> Result<()> {
        let round = self.rounds;
        let mut runnable: Vec<usize> = Vec::new();
        for idx in 0..self.feeds.len() {
            if !self.feeds[idx].exhausted() && self.feeds[idx].refill_and_decide(round) {
                runnable.push(idx);
            }
        }
        // Priority drain order: higher tiers run (and batch) first within
        // the round. The sort is stable, so same-tier feeds keep their
        // declaration order and the schedule stays deterministic.
        runnable.sort_by_key(|&idx| std::cmp::Reverse(self.feeds[idx].tier()));
        if !self.batching {
            return match self.exec {
                ExecMode::Sequential => self.run_round_unbatched(&runnable),
                ExecMode::Parallel => self.run_round_unbatched_parallel(&runnable),
            };
        }
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for &idx in &runnable {
            by_shard[self.feeds[idx].shard].push(idx);
        }
        let schedule: Vec<usize> = (0..self.shards.len())
            .filter(|&s| !by_shard[s].is_empty())
            .collect();
        if schedule.is_empty() {
            return Ok(()); // every live feed is parked; quota refills next round
        }
        match self.exec {
            ExecMode::Sequential => self.run_round_pipelined(&by_shard, &schedule),
            ExecMode::Parallel => self.run_round_parallel(&by_shard, &schedule),
        }
    }

    /// Sum-of-singles baseline: each feed runs its epoch exactly as a
    /// standalone GrubSystem would (update txs share the epoch's read
    /// block), one feed after another.
    fn run_round_unbatched(&mut self, runnable: &[usize]) -> Result<()> {
        for &idx in runnable {
            self.feeds[idx].ingest_epoch();
            let feed = &mut self.feeds[idx];
            feed.driver.close_epoch(&mut self.chain)?;
            let cost = feed.driver.reports().last().map_or(0, |e| e.feed_gas);
            feed.charge_quota(cost);
        }
        Ok(())
    }

    /// The unbatched baseline under the parallel executor: staging (which
    /// is purely off-chain and touches only the feed's own state) fans out
    /// to one worker per shard, then the chain phases drain in the exact
    /// feed order the sequential baseline uses — so the chain, and every
    /// per-tenant number, is byte-identical to
    /// [`FeedEngine::run_round_unbatched`].
    fn run_round_unbatched_parallel(&mut self, runnable: &[usize]) -> Result<()> {
        let staged = self.stage_parallel(runnable)?;
        fault_check(FaultPoint::PreMerge)?;
        for (idx, update) in staged {
            let feed = &mut self.feeds[idx];
            feed.driver.submit_update(&mut self.chain, &update);
            feed.driver.run_read_phase(&mut self.chain, &update)?;
            let cost = feed.driver.reports().last().map_or(0, |e| e.feed_gas);
            feed.charge_quota(cost);
        }
        Ok(())
    }

    /// The sequential software pipeline: while shard `s`'s write block and
    /// read phase execute on-chain, shard `s+1`'s epochs are already being
    /// staged off-chain — the staging of one shard overlaps the chain
    /// phases of the previous one. The pipeline is plain sequential code
    /// over the canonical shard order (enforced by the [`CommitGate`], the
    /// same contract the parallel merge runs under), so runs stay
    /// byte-for-byte deterministic.
    fn run_round_pipelined(&mut self, by_shard: &[Vec<usize>], schedule: &[usize]) -> Result<()> {
        let mut gate = CommitGate::new(self.shards.len());
        let mut staged_next = self.stage_shard(&by_shard[schedule[0]])?;
        fault_check(FaultPoint::PreMerge)?;
        for (pos, &shard) in schedule.iter().enumerate() {
            if pos > 0 {
                // Between two shard commits of the same round: the previous
                // shard's block is mined, this shard's is not.
                fault_check(FaultPoint::MidShardCommit)?;
            }
            let staged = std::mem::take(&mut staged_next);
            claim_lane(&mut gate, shard)?;
            self.commit_shard(shard, staged, |engine| {
                // Pipeline overlap: stage the next shard's epochs (pure
                // off-chain work) while this shard's write block propagates
                // and before its read phase begins.
                if let Some(&next) = schedule.get(pos + 1) {
                    staged_next = engine.stage_shard(&by_shard[next])?;
                }
                Ok(())
            })?;
        }
        Ok(())
    }

    /// The parallel round: every scheduled shard's staging runs on its own
    /// worker thread ([`ParallelExecutor`]), then the merge commits each
    /// shard's write block and read phase in canonical shard order under
    /// the [`CommitGate`]. Staging never touches the chain, so the block
    /// sequence — and therefore [`Blockchain::chain_digest`] — is identical
    /// to the sequential pipeline's on the same specs.
    fn run_round_parallel(&mut self, by_shard: &[Vec<usize>], schedule: &[usize]) -> Result<()> {
        let order: Vec<usize> = schedule
            .iter()
            .flat_map(|&s| by_shard[s].iter().copied())
            .collect();
        let staged = self.stage_parallel(&order)?;
        fault_check(FaultPoint::PreMerge)?;
        let mut staged = staged.into_iter();
        let mut gate = CommitGate::new(self.shards.len());
        for (pos, &shard) in schedule.iter().enumerate() {
            if pos > 0 {
                fault_check(FaultPoint::MidShardCommit)?;
            }
            claim_lane(&mut gate, shard)?;
            let round_feeds: Vec<RoundFeed> = by_shard[shard]
                .iter()
                .map(|_| {
                    // grub-lint: allow(panic) — stage_all_feeds returns exactly one entry per scheduled feed
                    let (idx, update) = staged.next().expect("one staged epoch per feed");
                    RoundFeed {
                        idx,
                        batched_before: self.feeds[idx].batched_gas(),
                        update,
                    }
                })
                .collect();
            self.commit_shard(shard, round_feeds, |_| Ok(()))?;
        }
        Ok(())
    }

    /// Commits one shard's round: the write block (all staged update chunks
    /// coalesced through the router, spilling past the Ctx payload bound),
    /// a caller-supplied overlap step, then the shard's read phase.
    fn commit_shard(
        &mut self,
        shard: usize,
        mut staged: Vec<RoundFeed>,
        overlap: impl FnOnce(&mut Self) -> Result<()>,
    ) -> Result<()> {
        let mut sections: Vec<(usize, Vec<u8>)> = Vec::new();
        for rf in &mut staged {
            for chunk in std::mem::take(&mut rf.update.chunks) {
                sections.push((rf.idx, chunk));
            }
        }
        self.submit_shard_batch(shard, BatchKind::Update, sections)?;
        // The shard's write block is mined; its read phase has not begun.
        fault_check(FaultPoint::PostWriteBlock)?;
        overlap(self)?;
        self.run_shard_read_phase(shard, staged)
    }

    /// Stages one epoch for each feed in `order` — grouped into one worker
    /// lane per shard, results flattened back into `order` — via the
    /// [`ParallelExecutor`]. Pure off-chain work; the chain stays on the
    /// calling thread.
    fn stage_parallel(&mut self, order: &[usize]) -> Result<Vec<(usize, StagedUpdate)>> {
        let mut lane_of_shard = vec![None; self.shards.len()];
        let mut lanes_order: Vec<Vec<usize>> = Vec::new();
        for &idx in order {
            let shard = self.feeds[idx].shard;
            let lane = *lane_of_shard[shard].get_or_insert_with(|| {
                lanes_order.push(Vec::new());
                lanes_order.len() - 1
            });
            lanes_order[lane].push(idx);
        }
        let mut staging = vec![false; self.feeds.len()];
        for &idx in order {
            staging[idx] = true;
        }
        let mut tasks: Vec<Option<StageTask<'_>>> = self
            .feeds
            .iter_mut()
            .enumerate()
            .map(|(idx, slot)| {
                // Field-wise split: the task borrows only the Send-safe
                // staging half and the feed's own stream, disjointly per
                // feed.
                staging[idx].then(|| {
                    let FeedSlot { driver, source, .. } = slot;
                    StageTask {
                        feed: idx,
                        stage: driver.stage_mut(),
                        source,
                    }
                })
            })
            .collect();
        let lanes: Vec<Vec<StageTask<'_>>> = lanes_order
            .iter()
            .map(|lane| {
                lane.iter()
                    // grub-lint: allow(panic) — every index in lanes_order got a task in the loop above
                    .map(|&idx| tasks[idx].take().expect("staging task built above"))
                    .collect()
            })
            .collect();
        let mut staged_by_lane = Vec::with_capacity(lanes.len());
        let executor = self
            .executor
            .get_or_insert_with(|| ParallelExecutor::new(self.shards.len()));
        for lane_result in executor.stage_round(lanes) {
            staged_by_lane.push(lane_result?);
        }
        // Flatten back into the caller's order: lane l's results are in
        // lane order, and `order` interleaves lanes deterministically.
        let mut cursors = vec![0usize; staged_by_lane.len()];
        let mut out = Vec::with_capacity(order.len());
        for &idx in order {
            // grub-lint: allow(panic) — lane_of_shard covers every shard in `order` by construction
            let lane = lane_of_shard[self.feeds[idx].shard].expect("lane assigned");
            let (feed, update) = std::mem::take(&mut staged_by_lane[lane][cursors[lane]]);
            cursors[lane] += 1;
            debug_assert_eq!(feed, idx, "lane results must align with the order");
            out.push((idx, update));
        }
        fault_check(FaultPoint::PostStage)?;
        Ok(out)
    }

    /// Ingests and stages one epoch for each of a shard's runnable feeds —
    /// off-chain work only, which is what lets the scheduler overlap it
    /// with another shard's on-chain phases.
    fn stage_shard(&mut self, feed_idxs: &[usize]) -> Result<Vec<RoundFeed>> {
        let mut staged = Vec::with_capacity(feed_idxs.len());
        for &idx in feed_idxs {
            self.feeds[idx].ingest_epoch();
            let update = self.feeds[idx].driver.stage_update()?;
            staged.push(RoundFeed {
                idx,
                batched_before: self.feeds[idx].batched_gas(),
                update,
            });
        }
        fault_check(FaultPoint::PostStage)?;
        Ok(staged)
    }

    /// Runs one shard's read phase: each feed seals its own consumer read
    /// block (keeping snapshot-differenced Gas attribution exact), then the
    /// shard's deliver payloads are coalesced into one `batchDeliver`
    /// transaction; finally the epochs are booked and quotas charged.
    /// Live-tempo feeds — and every feed when read batching is off — fall
    /// back to the classic per-feed read phase with their own deliver
    /// transactions.
    fn run_shard_read_phase(&mut self, shard_idx: usize, staged: Vec<RoundFeed>) -> Result<()> {
        let mut sections: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut booked: Vec<(RoundFeed, StagedReads)> = Vec::new();
        for rf in staged {
            let feed = &mut self.feeds[rf.idx];
            if self.read_batching && feed.driver.coalesces_reads() {
                let mut reads = feed.driver.stage_reads(&mut self.chain)?;
                for payload in std::mem::take(&mut reads.delivers) {
                    sections.push((rf.idx, payload));
                }
                booked.push((rf, reads));
            } else {
                feed.driver.run_read_phase(&mut self.chain, &rf.update)?;
                let own = feed.driver.reports().last().map_or(0, |e| e.feed_gas);
                let share = checked_sub_gas(feed.batched_gas(), rf.batched_before);
                feed.charge_quota(checked_add_gas(own, share));
            }
        }
        self.submit_shard_batch(shard_idx, BatchKind::Deliver, sections)?;
        for (rf, reads) in booked {
            let feed = &mut self.feeds[rf.idx];
            feed.driver.finish_staged_epoch(&rf.update, &reads);
            let own = feed.driver.reports().last().map_or(0, |e| e.feed_gas);
            let share = checked_sub_gas(feed.batched_gas(), rf.batched_before);
            feed.charge_quota(checked_add_gas(own, share));
        }
        Ok(())
    }

    /// Coalesces one shard's same-round sections into as few router
    /// transactions as the `Ctx` payload bound allows (overflow spills into
    /// follow-up transactions in the same block), mines that block, and
    /// splits each transaction's metered Gas over its sections
    /// proportionally to payload bytes. The residue of the integer division
    /// goes to the last section, so the per-feed shares always sum exactly
    /// to the metered shard total.
    ///
    /// A planned transaction that would carry exactly one section is sent
    /// as the feed's own direct call instead (the DO's `update()` / the
    /// SP's `deliver()`): a batch of one pays the same envelope plus the
    /// section framing and router forwarding on top, so routing it would
    /// make sparse rounds *more* expensive than not batching at all.
    fn submit_shard_batch(
        &mut self,
        shard_idx: usize,
        kind: BatchKind,
        sections: Vec<(usize, Vec<u8>)>,
    ) -> Result<()> {
        if sections.is_empty() {
            return Ok(());
        }
        match kind {
            BatchKind::Update => self.round_update_sections += sections.len(),
            BatchKind::Deliver => self.round_deliver_sections += sections.len(),
        }
        // Chunk the sections into planned transactions, preserving order.
        type Planned = (Vec<(Address, Vec<u8>)>, Vec<(usize, usize)>);
        let mut planned: Vec<Planned> = Vec::new(); // (sections, (feed, bytes))
        let mut batch: Vec<(Address, Vec<u8>)> = Vec::new();
        let mut parts: Vec<(usize, usize)> = Vec::new();
        let mut bytes = 0usize;
        for (feed_idx, payload) in sections {
            let section_bytes = payload.len() + SECTION_OVERHEAD_BYTES;
            if bytes + section_bytes > BATCH_CHUNK_BYTES && !batch.is_empty() {
                planned.push((std::mem::take(&mut batch), std::mem::take(&mut parts)));
                bytes = 0;
            }
            bytes += section_bytes;
            parts.push((feed_idx, payload.len()));
            batch.push((self.feeds[feed_idx].driver.manager(), payload));
        }
        planned.push((batch, parts));
        let mut submitted: Vec<(TxId, Vec<(usize, usize)>)> = Vec::with_capacity(planned.len());
        for (mut batch, parts) in planned {
            // Under mempool congestion, a transaction's priority is its
            // tenants' quota tier (a batch takes the highest tier aboard),
            // so latency-sensitive feeds keep mining first when blocks fill.
            let priority = parts
                .iter()
                .map(|(feed_idx, _)| tier_priority(self.feeds[*feed_idx].tier()))
                .max()
                .unwrap_or(0);
            let id = if let [(feed_idx, _)] = parts[..] {
                // Lone section: the feed's own transaction is strictly
                // cheaper than a one-section batch.
                // grub-lint: allow(panic) — the match arm proved `parts` has exactly one element
                let (manager, payload) = batch.pop().expect("one section");
                let driver = &self.feeds[feed_idx].driver;
                let (from, func) = match kind {
                    BatchKind::Update => (driver.data_owner(), "update"),
                    BatchKind::Deliver => (driver.provider_address(), "deliver"),
                };
                self.chain.submit(
                    Transaction::new(from, manager, func, payload, Layer::Feed)
                        .with_priority(priority),
                )
            } else {
                self.submit_router_tx(shard_idx, kind, batch, priority)
            };
            submitted.push((id, parts));
        }
        // Seal blocks until every planned transaction has a receipt — one
        // block in the uncongested case, several when a bounded mempool
        // splits or delays the batch. Receipts are matched back by
        // transaction id: under congestion a block's execution order is
        // priority order, not submission order.
        let before = self.chain.gas_snapshot();
        let want: std::collections::HashSet<u64> = submitted.iter().map(|(id, _)| id.0).collect();
        let mut collected: Vec<(TxId, bool, Option<String>, u64)> = Vec::new();
        let mut have = 0usize;
        while have < want.len() {
            if self.chain.mempool_len() == 0 {
                return Err(GrubError::Chain(format!(
                    "shard {shard_idx} {} drained the mempool with {} of {} receipts missing",
                    kind.func(),
                    want.len() - have,
                    want.len()
                )));
            }
            let block = self.chain.try_produce_block().map_err(GrubError::from)?;
            for r in &block.receipts {
                if want.contains(&r.tx_id.0) {
                    have += 1;
                }
                collected.push((r.tx_id, r.success, r.error.clone(), r.gas_used));
            }
        }
        // Guard the receipt↔transaction pairing: a stray mempool entry
        // would silently misattribute Gas shares, so refuse it.
        if collected.len() != submitted.len() {
            return Err(GrubError::Chain(format!(
                "shard {shard_idx} {} blocks mined {} receipts for {} transactions",
                kind.func(),
                collected.len(),
                submitted.len()
            )));
        }
        let mut by_id: std::collections::HashMap<u64, (bool, Option<String>, u64)> = collected
            .into_iter()
            .map(|(id, success, error, gas)| (id.0, (success, error, gas)))
            .collect();
        // The shares booked below are documented — and consumed by every
        // report — as *feed-layer* Gas, but a receipt's `gas_used` spans all
        // meter layers. A consumer whose deliver-time callback did metered
        // application-layer work would silently launder that Gas into the
        // feed column, so refuse the run instead of misattributing it.
        let after = self.chain.gas_snapshot();
        let (_, app_delta) = after.since(before);
        let user_delta = checked_sub_gas(after.user, before.user);
        if app_delta.amount() > 0 || user_delta > 0 {
            return Err(GrubError::Chain(format!(
                "shard {shard_idx} {} burned non-feed-layer gas ({} app, {user_delta} user); \
                 batched attribution would book it as feed-layer — disable read batching \
                 for feeds whose consumer callbacks do metered work",
                kind.func(),
                app_delta.amount()
            )));
        }
        for (id, parts) in submitted {
            let (success, error, gas_used) = by_id.remove(&id.0).ok_or_else(|| {
                GrubError::Chain(format!(
                    "shard {shard_idx} {} transaction {} mined no receipt",
                    kind.func(),
                    id.0
                ))
            })?;
            if !success {
                return Err(GrubError::Chain(format!(
                    "shard {shard_idx} {} failed: {}",
                    kind.func(),
                    error.as_deref().unwrap_or("unknown")
                )));
            }
            let shard = &mut self.shards[shard_idx];
            match kind {
                BatchKind::Update => {
                    shard.update_gas = checked_add_gas(shard.update_gas, gas_used);
                    shard.update_txs += 1;
                }
                BatchKind::Deliver => {
                    shard.deliver_gas = checked_add_gas(shard.deliver_gas, gas_used);
                    shard.deliver_txs += 1;
                }
            }
            let total_bytes: u64 = parts.iter().map(|(_, b)| *b as u64).sum();
            let mut assigned = 0u64;
            let last = parts.len() - 1;
            for (i, (feed_idx, bytes)) in parts.iter().enumerate() {
                let share = if i == last {
                    checked_sub_gas(gas_used, assigned)
                } else {
                    ((u128::from(gas_used) * *bytes as u128) / u128::from(total_bytes.max(1)))
                        as u64
                };
                assigned = checked_add_gas(assigned, share);
                let feed = &mut self.feeds[*feed_idx];
                match kind {
                    BatchKind::Update => {
                        feed.batched_update_gas = checked_add_gas(feed.batched_update_gas, share);
                    }
                    BatchKind::Deliver => {
                        feed.batched_deliver_gas = checked_add_gas(feed.batched_deliver_gas, share);
                    }
                }
            }
        }
        Ok(())
    }

    fn submit_router_tx(
        &mut self,
        shard_idx: usize,
        kind: BatchKind,
        batch: Vec<(Address, Vec<u8>)>,
        priority: u8,
    ) -> TxId {
        let shard = &self.shards[shard_idx];
        self.chain.submit(
            Transaction::new(
                shard.operator,
                shard.router,
                kind.func(),
                encode_sections(&batch),
                Layer::Feed,
            )
            .with_priority(priority),
        )
    }

    /// The shared chain, for assertions.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// Arms the shared chain's recovery checkpoint
    /// ([`Blockchain::expect_digest_at`]): when this engine's re-execution
    /// reaches `height`, its chain digest must equal `digest` or the run
    /// panics — the oracle a recovery run uses to prove it rebuilt the
    /// surviving chain byte for byte before continuing past it.
    pub fn expect_digest_at(&mut self, height: u64, digest: grub_crypto::Hash32) {
        self.chain.expect_digest_at(height, digest);
    }

    /// One tenant's driver, for recovery and scrub harnesses that compare a
    /// feed's DO/SP state across runs.
    pub fn driver(&self, tenant: &str) -> Option<&EpochDriver> {
        self.feeds
            .iter()
            .find(|f| f.tenant == tenant)
            .map(|f| &f.driver)
    }

    fn into_report(self) -> EngineReport {
        let batching = self.batching;
        let read_batching = self.read_batching;
        let rounds = self.rounds;
        let tenants: Vec<TenantReport> = self
            .feeds
            .into_iter()
            .map(|feed| TenantReport {
                tenant: feed.tenant,
                shard: feed.shard,
                batched_update_gas: feed.batched_update_gas,
                batched_deliver_gas: feed.batched_deliver_gas,
                parked_rounds: feed.parked_rounds,
                max_parked_streak: feed.max_parked_streak,
                run: feed.driver.into_report(),
            })
            .collect();
        EngineReport {
            tenants,
            shard_update_gas: self.shards.iter().map(|s| s.update_gas).collect(),
            shard_update_txs: self.shards.iter().map(|s| s.update_txs).collect(),
            shard_deliver_gas: self.shards.iter().map(|s| s.deliver_gas).collect(),
            shard_deliver_txs: self.shards.iter().map(|s| s.deliver_txs).collect(),
            rounds,
            batching,
            read_batching,
            metrics: self.metrics,
        }
    }
}

impl std::fmt::Debug for FeedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedEngine")
            .field("feeds", &self.feeds.len())
            .field("shards", &self.shards.len())
            .field("batching", &self.batching)
            .field("read_batching", &self.read_batching)
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_core::policy::PolicyKind;
    use grub_workload::ratio::RatioWorkload;

    fn spec(tenant: &str, ratio: f64, cycles: usize) -> FeedSpec {
        FeedSpec::new(
            tenant,
            SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
            RatioWorkload::new(format!("{tenant}-key"), ratio).generate(cycles),
        )
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for shards in [1, 2, 7] {
            for tenant in ["alice", "bob", "carol", ""] {
                let s = tenant_shard(tenant, shards);
                assert!(s < shards);
                assert_eq!(s, tenant_shard(tenant, shards));
            }
        }
    }

    #[test]
    fn zero_epoch_ops_cannot_hang_the_scheduler() {
        // epoch_ops is a pub field, so a caller can bypass the clamping
        // builder; the driver clamps again so a round always makes progress.
        let mut cfg = SystemConfig::new(PolicyKind::Memoryless { k: 2 });
        cfg.epoch_ops = 0;
        let trace = RatioWorkload::new("k", 1.0).generate(4);
        let ops = trace.ops.len();
        let specs = vec![FeedSpec::new("zero", cfg, trace)];
        let report = FeedEngine::run_specs(&EngineConfig::new(1), specs).unwrap();
        assert_eq!(report.tenants[0].total_ops(), ops);
    }

    #[test]
    fn duplicate_tenants_rejected() {
        let specs = vec![spec("same", 1.0, 2), spec("same", 2.0, 2)];
        assert!(FeedEngine::new(&EngineConfig::new(2), specs).is_err());
    }

    #[test]
    fn empty_tenant_rejected() {
        let specs = vec![spec("", 1.0, 2)];
        assert!(FeedEngine::new(&EngineConfig::new(2), specs).is_err());
    }

    #[test]
    fn engine_runs_mixed_feeds_to_completion() {
        let specs = vec![spec("a", 4.0, 6), spec("b", 0.0, 6), spec("c", 16.0, 3)];
        let report = FeedEngine::run_specs(&EngineConfig::new(2), specs.clone()).unwrap();
        assert_eq!(report.tenants.len(), 3);
        for (tenant, s) in report.tenants.iter().zip(&specs) {
            assert_eq!(tenant.run.total_ops(), s.materialized().ops.len());
            assert_eq!(tenant.run.failed_delivers(), 0);
        }
        assert!(report.rounds > 0);
        assert!(report.feed_gas_total() > 0);
    }

    #[test]
    fn batch_gas_attribution_is_exact() {
        let specs = vec![spec("a", 0.5, 8), spec("b", 0.5, 8), spec("c", 0.5, 8)];
        let report = FeedEngine::run_specs(&EngineConfig::new(1), specs).unwrap();
        let attributed: u64 = report.tenants.iter().map(|t| t.batched_update_gas).sum();
        let metered: u64 = report.shard_update_gas.iter().sum();
        assert_eq!(attributed, metered, "no update gas lost to rounding");
        assert!(metered > 0, "write-heavy feeds must batch updates");
        let attributed: u64 = report.tenants.iter().map(|t| t.batched_deliver_gas).sum();
        let metered: u64 = report.shard_deliver_gas.iter().sum();
        assert_eq!(attributed, metered, "no deliver gas lost to rounding");
    }

    #[test]
    fn read_batching_coalesces_delivers_and_attributes_exactly() {
        // Read-leaning feeds so every round produces deliveries.
        let specs = vec![spec("a", 4.0, 8), spec("b", 4.0, 8), spec("c", 4.0, 8)];
        let report = FeedEngine::run_specs(&EngineConfig::new(1), specs.clone()).unwrap();
        assert!(
            report.shard_deliver_txs.iter().sum::<usize>() > 0,
            "read-heavy feeds must batch delivers"
        );
        assert!(report.shard_deliver_gas.iter().sum::<u64>() > 0);
        assert_eq!(report.failed_delivers(), 0);
        // Against write-only batching: same work, strictly less total gas.
        let write_only =
            FeedEngine::run_specs(&EngineConfig::new(1).without_read_batching(), specs).unwrap();
        assert_eq!(report.total_ops(), write_only.total_ops());
        assert!(
            report.feed_gas_total() < write_only.feed_gas_total(),
            "read batching {} must undercut write-only batching {}",
            report.feed_gas_total(),
            write_only.feed_gas_total()
        );
    }

    #[test]
    fn unbatched_engine_reports_no_shard_gas() {
        let specs = vec![spec("a", 1.0, 4), spec("b", 1.0, 4)];
        let report = FeedEngine::run_specs(&EngineConfig::new(2).unbatched(), specs).unwrap();
        assert_eq!(report.shard_update_gas.iter().sum::<u64>(), 0);
        assert_eq!(report.shard_deliver_gas.iter().sum::<u64>(), 0);
        assert!(report.tenants.iter().all(|t| t.batched_update_gas == 0));
        assert!(report.tenants.iter().all(|t| t.batched_deliver_gas == 0));
    }

    #[test]
    fn quota_parks_and_never_starves() {
        // A tight budget: one epoch of this workload costs well over 2000
        // gas, so the feed must park between epochs yet still complete.
        // Small epochs (4 ops) so the trace spans several epochs — the
        // first epoch always runs (no cost history), parking starts after.
        let cfg = || SystemConfig::new(PolicyKind::Memoryless { k: 2 }).epoch_ops(4);
        let specs = vec![
            FeedSpec::new(
                "budgeted",
                cfg(),
                RatioWorkload::new("budgeted-key", 1.0).generate(12),
            )
            .with_budget(TenantBudget::per_round(2_000)),
            FeedSpec::new(
                "free",
                cfg(),
                RatioWorkload::new("free-key", 1.0).generate(12),
            ),
        ];
        let total_ops: usize = specs.iter().map(|s| s.materialized().ops.len()).sum();
        let report = FeedEngine::run_specs(&EngineConfig::new(1), specs).unwrap();
        assert_eq!(report.total_ops(), total_ops, "parked feed must complete");
        let budgeted = &report.tenants[0];
        assert!(
            budgeted.parked_rounds > 0,
            "a tight quota must actually defer epochs"
        );
        assert_eq!(report.tenants[1].parked_rounds, 0);
        // The schedule stretched: more rounds than the unhindered feed's
        // epoch count.
        assert!(report.rounds > report.tenants[1].run.epochs.len());
    }

    #[test]
    fn quota_tiers_refill_and_bound_as_documented() {
        assert_eq!(QuotaTier::High.refill(0, 10), 40);
        assert_eq!(QuotaTier::High.refill(1, 10), 40);
        assert_eq!(QuotaTier::Standard.refill(7, 10), 10);
        assert_eq!(QuotaTier::Low.refill(0, 10), 10, "low earns on even rounds");
        assert_eq!(QuotaTier::Low.refill(1, 10), 0, "and skips odd rounds");
        assert!(QuotaTier::High.starvation_bound() < QuotaTier::Standard.starvation_bound());
        assert!(QuotaTier::Standard.starvation_bound() < QuotaTier::Low.starvation_bound());
        // The Ord derive is the drain order: higher tier sorts later, so
        // Reverse puts it first in the schedule.
        assert!(QuotaTier::Low < QuotaTier::Standard && QuotaTier::Standard < QuotaTier::High);
        assert_eq!(TenantBudget::per_round(5).tier, QuotaTier::Standard);
    }

    #[test]
    fn higher_tier_sections_lead_the_shard_batch() {
        // One shard, two write-leaning feeds; the feed declared *second*
        // carries the High tier, so tier — not declaration order — must put
        // its update section first in every shard batch.
        let budget = |tier| TenantBudget::per_round(1_000_000).tier(tier);
        let specs = vec![
            spec("aaa", 0.5, 8).with_budget(budget(QuotaTier::Low)),
            spec("bbb", 0.5, 8).with_budget(budget(QuotaTier::High)),
        ];
        let (_, chain) = FeedEngine::new(&EngineConfig::new(1), specs)
            .unwrap()
            .run_with_chain()
            .unwrap();
        let mgr_low = Address::derive("grub-storage-manager/tenant/aaa");
        let mgr_high = Address::derive("grub-storage-manager/tenant/bbb");
        let mut saw_batched_round = false;
        for block in chain.blocks() {
            let records = &block.call_records;
            if !records.iter().any(|c| c.func == "batchUpdate") {
                continue;
            }
            let pos = |mgr| {
                records
                    .iter()
                    .position(|c| c.to == mgr && c.func == "update")
            };
            if let (Some(high), Some(low)) = (pos(mgr_high), pos(mgr_low)) {
                saw_batched_round = true;
                assert!(
                    high < low,
                    "high tier must drain first within the batch ({high} vs {low})"
                );
            }
        }
        assert!(saw_batched_round, "the feeds must actually share a batch");
    }

    #[test]
    fn spilled_shard_batches_keep_order_and_exact_attribution() {
        // 14 write-heavy BL2 feeds on ONE shard: BL2 replicates every
        // record, so each feed's epoch update carries its full 4 KiB value
        // on-chain. One round's sections (~58 KiB + framing) overflow the
        // 24 000-byte batch payload bound and must spill into follow-up
        // transactions in the same block, round after round.
        let mk_specs = || -> Vec<FeedSpec> {
            (0..14)
                .map(|i| {
                    FeedSpec::new(
                        format!("bulk-{i:02}"),
                        SystemConfig::new(PolicyKind::Bl2).epoch_ops(4),
                        RatioWorkload::new(format!("bulk-{i:02}-key"), 0.0)
                            .value_len(4096)
                            .generate(8),
                    )
                })
                .collect()
        };
        let report = FeedEngine::run_specs(&EngineConfig::new(1), mk_specs()).unwrap();
        let rounds = report.rounds;
        let update_txs = report.shard_update_txs[0];
        assert!(
            update_txs > rounds,
            "{update_txs} update txs over {rounds} rounds — the batch never spilled"
        );
        // Attribution survives the split exactly.
        let attributed: u64 = report.tenants.iter().map(|t| t.batched_update_gas).sum();
        assert_eq!(attributed, report.shard_update_gas[0]);
        // Ordering survives: every feed completed every op, nothing was
        // rejected, and per-feed accounting matches the unbatched baseline's
        // work (same ops, same epochs).
        let unbatched =
            FeedEngine::run_specs(&EngineConfig::new(1).unbatched(), mk_specs()).unwrap();
        assert_eq!(report.total_ops(), unbatched.total_ops());
        assert_eq!(report.failed_delivers(), 0);
        for (b, u) in report.tenants.iter().zip(&unbatched.tenants) {
            assert_eq!(b.run.total_ops(), u.run.total_ops(), "{}", b.tenant);
            assert_eq!(
                b.run.epochs.len(),
                u.run.epochs.len(),
                "{}: epoch structure must survive the spill",
                b.tenant
            );
        }
        // And the whole point: even spilled, batching beats unbatched.
        assert!(report.feed_gas_total() < unbatched.feed_gas_total());
    }
}
