//! The multi-tenant engine: deployment, scheduling, sharded batching.

use grub_chain::codec::encode_sections;
use grub_chain::{Address, Blockchain, ChainConfig, Transaction};
use grub_core::system::{DriverIdentity, EpochDriver, StagedUpdate, SystemConfig};
use grub_core::{GrubError, Result};
use grub_gas::Layer;
use grub_workload::Trace;

use crate::report::{EngineReport, TenantReport};
use crate::router::ShardRouter;

/// A shard batch transaction stays under the same `Ctx` payload bound the
/// single-feed epoch chunking uses ([`grub_core::system::UPDATE_CHUNK_BYTES`]);
/// sections that would overflow it spill into a follow-up transaction in
/// the same block.
const BATCH_CHUNK_BYTES: usize = grub_core::system::UPDATE_CHUNK_BYTES;

/// Calldata the section framing adds per batched payload: a 20-byte target
/// address plus a 4-byte length prefix (see `encode_sections`).
const SECTION_OVERHEAD_BYTES: usize = 24;

/// Engine-wide configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of shards feeds are hashed across (≥ 1).
    pub shards: usize,
    /// Whether same-block updates of a shard's feeds are coalesced into one
    /// `batchUpdate` transaction (the engine's reason to exist); disabling
    /// it reproduces N independent single-feed runs on one chain, which is
    /// the baseline the batching savings are measured against.
    pub batching: bool,
    /// Chain timing parameters shared by all feeds.
    pub chain: ChainConfig,
}

impl EngineConfig {
    /// A batching engine with `shards` shards and default chain timing.
    pub fn new(shards: usize) -> Self {
        EngineConfig {
            shards: shards.max(1),
            batching: true,
            chain: ChainConfig::default(),
        }
    }

    /// Disables cross-feed batching (the sum-of-singles baseline).
    pub fn unbatched(mut self) -> Self {
        self.batching = false;
        self
    }
}

/// One tenant's feed: a name, a full single-feed configuration, and the
/// workload trace the engine will drive through it.
#[derive(Clone, Debug)]
pub struct FeedSpec {
    /// Unique tenant name; determines the shard and the on-chain address
    /// namespace.
    pub tenant: String,
    /// The feed's own policy/epoch/preload configuration. (`chain` timing
    /// inside it is ignored — the engine's chain is shared.)
    pub config: SystemConfig,
    /// The tenant's workload.
    pub trace: Trace,
}

impl FeedSpec {
    /// Builds a feed spec.
    pub fn new(tenant: impl Into<String>, config: SystemConfig, trace: Trace) -> Self {
        FeedSpec {
            tenant: tenant.into(),
            config,
            trace,
        }
    }
}

/// Deterministic tenant→shard assignment: FNV-1a over the tenant name.
pub fn tenant_shard(tenant: &str, shards: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards.max(1) as u64) as usize
}

struct Shard {
    operator: Address,
    router: Address,
    update_gas: u64,
    update_txs: usize,
}

struct FeedSlot {
    tenant: String,
    shard: usize,
    driver: EpochDriver,
    trace: Trace,
    cursor: usize,
    batched_update_gas: u64,
}

impl FeedSlot {
    fn exhausted(&self) -> bool {
        self.cursor >= self.trace.ops.len()
    }

    /// Stages the next epoch's worth of trace operations into the driver.
    fn ingest_epoch(&mut self) {
        while !self.exhausted() && !self.driver.epoch_is_full() {
            self.driver.push_op(&self.trace.ops[self.cursor]);
            self.cursor += 1;
        }
    }
}

/// The sharded multi-tenant feed engine.
///
/// See the crate docs for the architecture and invariants. Build with
/// [`FeedEngine::new`], then [`FeedEngine::run`] to completion.
pub struct FeedEngine {
    chain: Blockchain,
    shards: Vec<Shard>,
    feeds: Vec<FeedSlot>,
    batching: bool,
    rounds: usize,
}

impl FeedEngine {
    /// Deploys every shard router and every feed onto a fresh chain, then
    /// resets the Gas meter so provisioning (contract setup, preloads) is
    /// excluded from all reports — the same steady-state metering the
    /// single-feed harness uses.
    ///
    /// # Errors
    ///
    /// Rejects empty or duplicate tenant names; propagates store failures
    /// and failed preload transactions.
    pub fn new(config: &EngineConfig, specs: Vec<FeedSpec>) -> Result<Self> {
        let mut chain = Blockchain::with_config(config.chain);
        let shards: Vec<Shard> = (0..config.shards.max(1))
            .map(|i| {
                let operator = Address::derive(&format!("grub-shard-operator/{i}"));
                let router = Address::derive(&format!("grub-shard-router/{i}"));
                chain.deploy(
                    router,
                    std::rc::Rc::new(ShardRouter::new(operator)),
                    Layer::Feed,
                );
                Shard {
                    operator,
                    router,
                    update_gas: 0,
                    update_txs: 0,
                }
            })
            .collect();
        let mut feeds = Vec::with_capacity(specs.len());
        let mut seen = std::collections::BTreeSet::new();
        for spec in specs {
            if spec.tenant.is_empty() {
                return Err(GrubError::Chain("tenant name must be non-empty".into()));
            }
            if !seen.insert(spec.tenant.clone()) {
                return Err(GrubError::Chain(format!(
                    "duplicate tenant name: {}",
                    spec.tenant
                )));
            }
            let shard = tenant_shard(&spec.tenant, shards.len());
            let mut identity = DriverIdentity::tenant(format!("tenant/{}", spec.tenant));
            if config.batching {
                identity = identity.with_update_delegate(shards[shard].router);
            }
            let driver = EpochDriver::deploy(&mut chain, &spec.config, &identity)?;
            feeds.push(FeedSlot {
                tenant: spec.tenant,
                shard,
                driver,
                trace: spec.trace,
                cursor: 0,
                batched_update_gas: 0,
            });
        }
        chain.meter_reset();
        Ok(FeedEngine {
            chain,
            shards,
            feeds,
            batching: config.batching,
            rounds: 0,
        })
    }

    /// Convenience: build and run in one call.
    ///
    /// # Errors
    ///
    /// Propagates [`FeedEngine::new`] and [`FeedEngine::run`] failures.
    pub fn run_specs(config: &EngineConfig, specs: Vec<FeedSpec>) -> Result<EngineReport> {
        FeedEngine::new(config, specs)?.run()
    }

    /// Drives every feed's trace to completion, one interleaved epoch per
    /// feed per round, and returns the per-tenant + aggregate report.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn run(mut self) -> Result<EngineReport> {
        while self.feeds.iter().any(|f| !f.exhausted()) {
            self.run_round()?;
            self.rounds += 1;
        }
        Ok(self.into_report())
    }

    /// One scheduler round: every feed with trace remaining ingests and
    /// closes one epoch. With batching on, the round's update payloads are
    /// routed per shard before any read phase runs, so all of a shard's
    /// writes land in one block.
    fn run_round(&mut self) -> Result<()> {
        let live: Vec<usize> = (0..self.feeds.len())
            .filter(|&i| !self.feeds[i].exhausted())
            .collect();
        if !self.batching {
            // Sum-of-singles baseline: each feed runs its epoch exactly as
            // a standalone GrubSystem would (update txs share the epoch's
            // read block), one feed after another.
            for &idx in &live {
                self.feeds[idx].ingest_epoch();
                let feed = &mut self.feeds[idx];
                feed.driver.close_epoch(&mut self.chain)?;
            }
            return Ok(());
        }
        // 1. Ingest + stage every live feed's epoch (off-chain work only).
        let mut staged: Vec<(usize, StagedUpdate)> = Vec::with_capacity(live.len());
        for &idx in &live {
            self.feeds[idx].ingest_epoch();
            let update = self.feeds[idx].driver.stage_update()?;
            staged.push((idx, update));
        }
        // 2. Coalesce the round's update payloads into one batchUpdate per
        //    shard (spilling only past the Ctx payload bound), mine them in
        //    a single block, and attribute the metered Gas back to tenants.
        //    The chunks are moved out; the read phase below only needs the
        //    epoch metadata.
        self.submit_shard_batches(&mut staged)?;
        // 3. Read phases, one feed at a time so snapshot-differenced Gas
        //    attribution stays exact.
        for (idx, update) in &staged {
            let feed = &mut self.feeds[*idx];
            feed.driver.run_read_phase(&mut self.chain, update)?;
        }
        Ok(())
    }

    /// Groups staged update chunks by shard, submits the batch
    /// transactions, seals their block, and splits each transaction's
    /// metered Gas over its sections proportionally to payload bytes.
    /// Takes the chunks out of `staged`; the epoch metadata stays.
    fn submit_shard_batches(&mut self, staged: &mut [(usize, StagedUpdate)]) -> Result<()> {
        // Sections per shard, in scheduler order: (feed index, payload).
        let mut shard_sections: Vec<Vec<(usize, Vec<u8>)>> = vec![Vec::new(); self.shards.len()];
        for (idx, update) in staged {
            for chunk in std::mem::take(&mut update.chunks) {
                shard_sections[self.feeds[*idx].shard].push((*idx, chunk));
            }
        }
        // Submit per-shard batch transactions; remember each transaction's
        // section composition for attribution.
        let mut submitted: Vec<(usize, Vec<(usize, usize)>)> = Vec::new(); // (shard, [(feed, bytes)])
        for (shard_idx, sections) in shard_sections.into_iter().enumerate() {
            if sections.is_empty() {
                continue;
            }
            let mut batch: Vec<(Address, Vec<u8>)> = Vec::new();
            let mut parts: Vec<(usize, usize)> = Vec::new();
            let mut bytes = 0usize;
            for (feed_idx, payload) in sections {
                let section_bytes = payload.len() + SECTION_OVERHEAD_BYTES;
                if bytes + section_bytes > BATCH_CHUNK_BYTES && !batch.is_empty() {
                    self.submit_batch_tx(shard_idx, std::mem::take(&mut batch));
                    submitted.push((shard_idx, std::mem::take(&mut parts)));
                    bytes = 0;
                }
                bytes += section_bytes;
                parts.push((feed_idx, payload.len()));
                batch.push((self.feeds[feed_idx].driver.manager(), payload));
            }
            self.submit_batch_tx(shard_idx, batch);
            submitted.push((shard_idx, parts));
        }
        if submitted.is_empty() {
            return Ok(());
        }
        // One block carries the whole round's writes.
        let receipts: Vec<(bool, Option<String>, u64)> = {
            let block = self.chain.produce_block();
            block
                .receipts
                .iter()
                .map(|r| (r.success, r.error.clone(), r.gas_used))
                .collect()
        };
        for ((shard_idx, parts), (success, error, gas_used)) in submitted.into_iter().zip(receipts)
        {
            if !success {
                return Err(GrubError::Chain(format!(
                    "shard {shard_idx} batch update failed: {}",
                    error.as_deref().unwrap_or("unknown")
                )));
            }
            self.shards[shard_idx].update_gas += gas_used;
            self.shards[shard_idx].update_txs += 1;
            let total_bytes: u64 = parts.iter().map(|(_, b)| *b as u64).sum();
            let mut assigned = 0u64;
            let last = parts.len() - 1;
            for (i, (feed_idx, bytes)) in parts.iter().enumerate() {
                let share = if i == last {
                    gas_used - assigned
                } else {
                    ((u128::from(gas_used) * *bytes as u128) / u128::from(total_bytes.max(1)))
                        as u64
                };
                assigned += share;
                self.feeds[*feed_idx].batched_update_gas += share;
            }
        }
        Ok(())
    }

    fn submit_batch_tx(&mut self, shard_idx: usize, batch: Vec<(Address, Vec<u8>)>) {
        let shard = &self.shards[shard_idx];
        self.chain.submit(Transaction::new(
            shard.operator,
            shard.router,
            "batchUpdate",
            encode_sections(&batch),
            Layer::Feed,
        ));
    }

    /// The shared chain, for assertions.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    fn into_report(self) -> EngineReport {
        let batching = self.batching;
        let rounds = self.rounds;
        let tenants: Vec<TenantReport> = self
            .feeds
            .into_iter()
            .map(|feed| TenantReport {
                tenant: feed.tenant,
                shard: feed.shard,
                batched_update_gas: feed.batched_update_gas,
                run: feed.driver.into_report(),
            })
            .collect();
        EngineReport {
            tenants,
            shard_update_gas: self.shards.iter().map(|s| s.update_gas).collect(),
            shard_update_txs: self.shards.iter().map(|s| s.update_txs).collect(),
            rounds,
            batching,
        }
    }
}

impl std::fmt::Debug for FeedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedEngine")
            .field("feeds", &self.feeds.len())
            .field("shards", &self.shards.len())
            .field("batching", &self.batching)
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_core::policy::PolicyKind;
    use grub_workload::ratio::RatioWorkload;

    fn spec(tenant: &str, ratio: f64, cycles: usize) -> FeedSpec {
        FeedSpec::new(
            tenant,
            SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
            RatioWorkload::new(format!("{tenant}-key"), ratio).generate(cycles),
        )
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for shards in [1, 2, 7] {
            for tenant in ["alice", "bob", "carol", ""] {
                let s = tenant_shard(tenant, shards);
                assert!(s < shards);
                assert_eq!(s, tenant_shard(tenant, shards));
            }
        }
    }

    #[test]
    fn zero_epoch_ops_cannot_hang_the_scheduler() {
        // epoch_ops is a pub field, so a caller can bypass the clamping
        // builder; the driver clamps again so a round always makes progress.
        let mut cfg = SystemConfig::new(PolicyKind::Memoryless { k: 2 });
        cfg.epoch_ops = 0;
        let trace = RatioWorkload::new("k", 1.0).generate(4);
        let ops = trace.ops.len();
        let specs = vec![FeedSpec::new("zero", cfg, trace)];
        let report = FeedEngine::run_specs(&EngineConfig::new(1), specs).unwrap();
        assert_eq!(report.tenants[0].total_ops(), ops);
    }

    #[test]
    fn duplicate_tenants_rejected() {
        let specs = vec![spec("same", 1.0, 2), spec("same", 2.0, 2)];
        assert!(FeedEngine::new(&EngineConfig::new(2), specs).is_err());
    }

    #[test]
    fn empty_tenant_rejected() {
        let specs = vec![spec("", 1.0, 2)];
        assert!(FeedEngine::new(&EngineConfig::new(2), specs).is_err());
    }

    #[test]
    fn engine_runs_mixed_feeds_to_completion() {
        let specs = vec![spec("a", 4.0, 6), spec("b", 0.0, 6), spec("c", 16.0, 3)];
        let report = FeedEngine::run_specs(&EngineConfig::new(2), specs.clone()).unwrap();
        assert_eq!(report.tenants.len(), 3);
        for (tenant, s) in report.tenants.iter().zip(&specs) {
            assert_eq!(tenant.run.total_ops(), s.trace.ops.len());
            assert_eq!(tenant.run.failed_delivers(), 0);
        }
        assert!(report.rounds > 0);
        assert!(report.feed_gas_total() > 0);
    }

    #[test]
    fn batch_gas_attribution_is_exact() {
        let specs = vec![spec("a", 0.5, 8), spec("b", 0.5, 8), spec("c", 0.5, 8)];
        let report = FeedEngine::run_specs(&EngineConfig::new(1), specs).unwrap();
        let attributed: u64 = report.tenants.iter().map(|t| t.batched_update_gas).sum();
        let metered: u64 = report.shard_update_gas.iter().sum();
        assert_eq!(attributed, metered, "no gas lost to rounding");
        assert!(metered > 0, "write-heavy feeds must batch updates");
    }

    #[test]
    fn unbatched_engine_reports_no_shard_gas() {
        let specs = vec![spec("a", 1.0, 4), spec("b", 1.0, 4)];
        let report = FeedEngine::run_specs(&EngineConfig::new(2).unbatched(), specs).unwrap();
        assert_eq!(report.shard_update_gas.iter().sum::<u64>(), 0);
        assert!(report.tenants.iter().all(|t| t.batched_update_gas == 0));
    }
}
