//! Canned multi-tenant spec builders shared by the example, the bench
//! experiment, and the acceptance tests — one place for the
//! ratio-cycle arithmetic so the three surfaces measure the same workload.

use grub_core::policy::PolicyKind;
use grub_core::system::SystemConfig;
use grub_workload::multiplex::Multiplex;
use grub_workload::ratio::RatioWorkload;
use grub_workload::OpSource;

use crate::FeedSpec;

/// The default read/write-ratio rotation for demo fleets: write-heavy,
/// read-leaning, very write-heavy, balanced.
pub const DEMO_RATIOS: &[f64] = &[0.5, 4.0, 0.125, 2.0];

/// The default policy rotation for demo fleets.
pub fn demo_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Memoryless { k: 2 },
        PolicyKind::Memorizing {
            k_prime: 2.3,
            d: 2.0,
        },
        PolicyKind::SelfTuning { window: 16 },
        PolicyKind::Bl1,
    ]
}

/// Builds a Zipfian-skewed fleet of ratio-workload feeds: `total_ops` is
/// apportioned over `tenants` tenants by [`Multiplex`] with θ = 0.99
/// (tenant 0 hottest), and tenant `i` runs a [`RatioWorkload`] with
/// `ratios[i % len]` under `policies[i % len]`. Each feed carries a
/// *streaming* source — the engine pulls it one epoch per round, never
/// materializing the trace.
///
/// # Panics
///
/// Panics if `tenants`, `ratios`, or `policies` is empty.
pub fn zipfian_ratio_specs(
    tenants: usize,
    total_ops: usize,
    ratios: &[f64],
    policies: &[PolicyKind],
) -> Vec<FeedSpec> {
    assert!(
        !ratios.is_empty() && !policies.is_empty(),
        "need at least one ratio and one policy"
    );
    Multiplex::new(tenants, total_ops)
        .zipfian(0.99)
        .sources(|tenant, ops| {
            let ratio = ratios[tenant % ratios.len()];
            // Ops per write/read cycle of the ratio shape (see
            // RatioWorkload::cycle_shape): 0 → write-only.
            let per_cycle = if ratio == 0.0 {
                1
            } else if ratio >= 1.0 {
                1 + ratio.round() as usize
            } else {
                (1.0 / ratio).round() as usize + 1
            };
            Box::new(
                RatioWorkload::new(format!("feed-{tenant}"), ratio)
                    .seed(tenant as u64 + 1)
                    .source((ops / per_cycle).max(1)),
            ) as Box<dyn OpSource>
        })
        .into_iter()
        .enumerate()
        .map(|(i, (tenant, source))| {
            FeedSpec::from_source(
                tenant,
                SystemConfig::new(policies[i % policies.len()].clone()),
                source,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_handles_every_ratio_class_including_write_only() {
        let specs = zipfian_ratio_specs(6, 300, &[0.0, 0.25, 1.0, 16.0], &demo_policies());
        assert_eq!(specs.len(), 6);
        let traces: Vec<_> = specs.iter().map(|s| s.materialized()).collect();
        // Tenant 0 uses ratio 0.0 (write-only) without dividing by zero.
        assert_eq!(traces[0].read_count(), 0);
        assert!(traces[0].write_count() > 0);
        // Zipfian skew: the hot tenant out-traffics the tail.
        assert!(traces[0].ops.len() >= traces[5].ops.len());
        // Deterministic.
        let again = zipfian_ratio_specs(6, 300, &[0.0, 0.25, 1.0, 16.0], &demo_policies());
        for (a, b) in specs.iter().zip(&again) {
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.materialized(), b.materialized());
        }
    }
}
