//! Parallel shard staging: the worker-thread fan-out behind
//! [`ExecMode::Parallel`](crate::ExecMode).
//!
//! A scheduler round's off-chain work — trace ingestion through the policy,
//! DO mirror flush, SP sync with Merkle-tree recomputation, `update()`
//! section encoding — never touches the shared
//! [`Blockchain`](grub_chain::Blockchain), so shards can stage it
//! concurrently. [`ParallelExecutor::stage_round`] runs each shard's
//! staging on a long-lived [`grub_pool::WorkerPool`] worker (the feeds'
//! `Send`-safe [`EpochStage`] halves move to the workers; the chain never
//! does) and returns the results *in lane order*, not completion order.
//! The engine's merge stage then commits each shard's blocks in canonical
//! shard order under a [`CommitGate`](grub_chain::CommitGate), which is
//! what makes the resulting chain byte-for-byte identical to the
//! sequential pipeline's.
//!
//! The workers are spawned once and reused across rounds: per-round
//! `thread::scope` spawns made parallel staging slower than sequential on
//! small epochs (spawn/join cost outweighed the staged work).

use grub_core::system::{EpochStage, StagedUpdate};
use grub_core::Result;
use grub_pool::WorkerPool;
use grub_workload::PeekableSource;

/// One feed's staging slice: disjoint `&mut` borrows of the feed's
/// `Send`-safe staging half plus its op stream. Building a round's tasks
/// splits every runnable [`FeedSlot`](crate::FeedEngine) field-wise, so
/// the borrow checker proves the lanes are disjoint — no locks, no unsafe.
/// (Sources are `Send` by the `OpSource` contract, so a feed's stream
/// travels to the worker with its staging half.)
pub(crate) struct StageTask<'a> {
    /// Index of the feed in the engine's declaration-ordered slot table.
    pub(crate) feed: usize,
    pub(crate) stage: &'a mut EpochStage,
    pub(crate) source: &'a mut PeekableSource,
}

impl StageTask<'_> {
    /// Pulls one epoch's worth of operations from the feed's stream and
    /// closes the epoch's write path off-chain — the exact work the
    /// sequential pipeline's staging step performs (same
    /// [`EpochStage::ingest`] loop), on whichever thread the task was
    /// moved to.
    fn ingest_and_stage(&mut self) -> Result<StagedUpdate> {
        self.stage.ingest(self.source);
        self.stage.stage_update()
    }
}

/// One lane's staging outcome: the `(feed index, staged update)` pairs in
/// drain order, or the first error the lane hit.
pub(crate) type LaneResult = Result<Vec<(usize, StagedUpdate)>>;

/// Fans a round's shard staging out to a persistent worker pool and
/// collects the per-shard results in deterministic lane order.
///
/// Determinism comes from *where results go* (lane-indexed slots), never
/// from *when workers finish*. Worker panics propagate to the caller;
/// worker errors abort the round exactly where the sequential pipeline
/// would.
#[derive(Debug)]
pub struct ParallelExecutor {
    pool: WorkerPool,
}

impl ParallelExecutor {
    /// Creates an executor whose pool holds `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        ParallelExecutor {
            pool: WorkerPool::new(threads),
        }
    }

    /// Stages every lane's feeds concurrently — one pool job per lane, each
    /// processing its feeds in the given (priority drain) order — and
    /// returns one result per lane, in input order.
    pub(crate) fn stage_round(&mut self, lanes: Vec<Vec<StageTask<'_>>>) -> Vec<LaneResult> {
        // Lane-indexed result slots: each job owns exactly one slot, so the
        // output order is pinned regardless of completion order.
        let mut results: Vec<Option<LaneResult>> = (0..lanes.len()).map(|_| None).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = lanes
            .into_iter()
            .zip(results.iter_mut())
            .map(|(mut lane, slot)| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    *slot = Some(
                        lane.iter_mut()
                            .map(|task| Ok((task.feed, task.ingest_and_stage()?)))
                            .collect::<Result<Vec<_>>>(),
                    );
                });
                job
            })
            .collect();
        self.pool.run_scoped(jobs);
        results
            .into_iter()
            // grub-lint: allow(panic) — run_scoped returns only after every job filled its slot
            .map(|slot| slot.expect("staging job completed"))
            .collect()
    }
}
