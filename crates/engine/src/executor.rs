//! Parallel shard staging: the worker-thread fan-out behind
//! [`ExecMode::Parallel`](crate::ExecMode).
//!
//! A scheduler round's off-chain work — trace ingestion through the policy,
//! DO mirror flush, SP sync with Merkle-tree recomputation, `update()`
//! section encoding — never touches the shared
//! [`Blockchain`](grub_chain::Blockchain), so shards can stage it
//! concurrently. [`ParallelExecutor::stage_round`] runs each shard's
//! staging on its own scoped worker thread (the feeds' `Send`-safe
//! [`EpochStage`] halves move to the workers; the chain never does) and
//! returns the results *in lane order*, not completion order. The engine's
//! merge stage then commits each shard's blocks in canonical shard order
//! under a [`CommitGate`](grub_chain::CommitGate), which is what makes the
//! resulting chain byte-for-byte identical to the sequential pipeline's.

use grub_core::system::{EpochStage, StagedUpdate};
use grub_core::Result;
use grub_workload::PeekableSource;

/// One feed's staging slice: disjoint `&mut` borrows of the feed's
/// `Send`-safe staging half plus its op stream. Building a round's tasks
/// splits every runnable [`FeedSlot`](crate::FeedEngine) field-wise, so
/// the borrow checker proves the lanes are disjoint — no locks, no unsafe.
/// (Sources are `Send` by the `OpSource` contract, so a feed's stream
/// travels to the worker with its staging half.)
pub(crate) struct StageTask<'a> {
    /// Index of the feed in the engine's declaration-ordered slot table.
    pub(crate) feed: usize,
    pub(crate) stage: &'a mut EpochStage,
    pub(crate) source: &'a mut PeekableSource,
}

impl StageTask<'_> {
    /// Pulls one epoch's worth of operations from the feed's stream and
    /// closes the epoch's write path off-chain — the exact work the
    /// sequential pipeline's staging step performs (same
    /// [`EpochStage::ingest`] loop), on whichever thread the task was
    /// moved to.
    fn ingest_and_stage(&mut self) -> Result<StagedUpdate> {
        self.stage.ingest(self.source);
        self.stage.stage_update()
    }
}

/// Fans a round's shard staging out to scoped worker threads and collects
/// the per-shard results in deterministic lane order.
///
/// The executor is intentionally stateless: determinism comes from *where
/// results go* (lane-indexed), never from *when workers finish*. Worker
/// panics propagate to the caller; worker errors abort the round exactly
/// where the sequential pipeline would.
#[derive(Debug)]
pub struct ParallelExecutor;

impl ParallelExecutor {
    /// Stages every lane's feeds concurrently — one worker thread per lane,
    /// each processing its feeds in the given (priority drain) order — and
    /// returns one result per lane, in input order.
    pub(crate) fn stage_round(
        lanes: Vec<Vec<StageTask<'_>>>,
    ) -> Vec<Result<Vec<(usize, StagedUpdate)>>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .into_iter()
                .map(|mut lane| {
                    scope.spawn(move || {
                        lane.iter_mut()
                            .map(|task| Ok((task.feed, task.ingest_and_stage()?)))
                            .collect::<Result<Vec<_>>>()
                    })
                })
                .collect();
            // Joining in spawn order is what pins the output to lane order;
            // a worker that finished early simply waits here.
            handles
                .into_iter()
                // grub-lint: allow(panic) — re-raises a worker panic on the coordinator thread; join only fails if the worker panicked
                .map(|h| h.join().expect("shard staging worker panicked"))
                .collect()
        })
    }
}
