//! `grub-engine` — a sharded multi-tenant feed engine with cross-feed
//! epoch batching.
//!
//! The paper (and `grub-core`'s [`GrubSystem`](grub_core::system::GrubSystem))
//! meters *one* data feed at a time: one key-space, one policy, one trace.
//! Production data-feed operators serve many tenants — price feeds, block
//! relays, IoT streams — over one chain and one Gas budget, and the
//! interesting system behavior (fixed-cost amortization, cross-subsidization
//! between skewed and uniform tenants) only appears when those feeds share
//! infrastructure. This crate runs N independent feeds over a single shared
//! [`Blockchain`](grub_chain::Blockchain).
//!
//! # Architecture
//!
//! ```text
//!           FeedEngine (deterministic pipelined shard scheduler)
//!   round r:  shard 0 stage → shard 0 write ┐ shard 0 reads ┐
//!                            shard 1 stage ─┘ shard 1 write ┘ shard 1 reads …
//!                  │              │                    │
//!            EpochDriver    EpochDriver          EpochDriver     (grub-core)
//!             DO + SP        DO + SP              DO + SP
//!                  │              │                    │
//!              ┌── shard 0 ──┐       ┌────── shard 1 ──────┐
//!              │ ShardRouter │       │     ShardRouter     │    (on-chain)
//!              │ batchUpdate │       │     batchUpdate     │
//!              │ batchDeliver│       │     batchDeliver    │
//!              └─┬─────────┬─┘       └──┬───────────────┬──┘
//!            manager A  manager B    manager C  ...  manager N
//!                        one shared Gas-metered Blockchain
//! ```
//!
//! * **Tenancy** — every feed is a full, independent GRuB deployment: its
//!   own [`EpochDriver`](grub_core::system::EpochDriver) (data owner with
//!   private policy state, storage provider with private store and Merkle
//!   tree) and its own namespaced storage-manager + consumer contracts.
//!   Feeds cannot observe each other's keys, decisions, or replicas.
//! * **Scheduling** — the engine runs feeds in *rounds*: round `r` lets
//!   every feed with trace left (and quota to spend, see below) ingest one
//!   epoch's worth of operations and close that epoch. With batching on,
//!   the shards run as a software pipeline: while shard `s`'s write block
//!   and read phase execute on-chain, shard `s+1`'s epochs are staged
//!   off-chain, so the off-chain work of one shard overlaps the on-chain
//!   phases of the previous one. The pipeline is plain sequential code over
//!   a fixed shard order and the stable feed declaration order, so a run
//!   is a deterministic function of its specs; no wall clock, threads, or
//!   map iteration order is involved.
//! * **Sharding** — each tenant is assigned to one of a fixed set of shards
//!   by FNV-1a hash of its name ([`tenant_shard`]). A shard owns an
//!   on-chain [`ShardRouter`] contract and a shard-operator account.
//! * **Cross-feed epoch batching** — within a round, all DO `update()`
//!   payloads of a shard's feeds land in the same block. Instead of paying
//!   one transaction envelope (`Ctx` base = 21000 Gas) per feed, the engine
//!   coalesces them into one `batchUpdate` transaction per shard
//!   (§5.1's batching observation applied across feeds, not just within
//!   one): the router forwards each section to the right storage manager as
//!   an internal call, which pays no envelope. Batching `n` same-block
//!   updates saves `(n-1)·21000` minus a few words of section framing.
//! * **Shard-level read batching** — the same amortization on the read
//!   path: instead of one SP `deliver` transaction per feed per epoch, each
//!   feed stages its watchdog's deliver payloads
//!   ([`EpochDriver::stage_reads`](grub_core::system::EpochDriver::stage_reads))
//!   and the engine coalesces a shard's round into one `batchDeliver`
//!   transaction. Proof verification, replica installation, and callback
//!   dispatch run unchanged inside the internal calls. Disable with
//!   [`EngineConfig::without_read_batching`] to isolate the write-only
//!   savings; live-tempo feeds fall back to their own deliver transactions
//!   automatically.
//! * **Per-tenant Gas quotas** — an optional [`TenantBudget`] per feed
//!   turns the scheduler into a token bucket with deferral. Knobs:
//!   `gas_per_round` (feed-layer Gas granted per scheduler round, ≥ 1) and
//!   `burst` (cap on accumulated unspent allowance, default 4 rounds'
//!   worth). A feed whose next epoch is estimated (by its previous epoch's
//!   actual metered cost: own transactions plus byte-proportional batch
//!   shares) to exceed its balance is *parked* — trace position and staged
//!   state untouched — and retried next round; spending may run the bucket
//!   into debt, parking proportionally longer. A full bucket always runs
//!   (no starvation), and deferral never changes what an epoch computes,
//!   only when it runs.
//!
//! # Invariants
//!
//! 1. **Unbatched equivalence** — with batching disabled the engine submits
//!    exactly the transactions N single-feed `GrubSystem` runs would: total
//!    feed-layer Gas equals the sum of the N standalone runs (checked in
//!    `tests/engine.rs`), quota deferral included.
//! 2. **Batching only removes envelopes** — the batched paths change *who
//!    carries* the update and deliver payloads, never their content:
//!    replica storage writes, digests, proofs, and callbacks are
//!    byte-identical, so batched total Gas is strictly lower whenever any
//!    shard coalesces ≥ 2 updates (or deliveries) into one block.
//! 3. **Exact attribution** — per-tenant reports are measured by Gas-meter
//!    snapshots around each feed's own epoch work; a shard's batched update
//!    and deliver Gas is split over its sections proportionally to payload
//!    bytes (the residue of integer division goes to the last section) and
//!    the shares sum exactly to the metered shard totals — spilled batches
//!    included — so the aggregate report loses nothing to rounding.
//! 4. **Determinism** — two runs with identical specs produce byte-identical
//!    [`EngineReport::render_table`] output, quotas and parking included.
//!
//! # Example
//!
//! ```
//! use grub_core::policy::PolicyKind;
//! use grub_core::system::SystemConfig;
//! use grub_engine::{EngineConfig, FeedEngine, FeedSpec};
//! use grub_workload::ratio::RatioWorkload;
//!
//! let specs = vec![
//!     FeedSpec::new(
//!         "prices",
//!         SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
//!         RatioWorkload::new("ETH-USD", 8.0).generate(8),
//!     ),
//!     FeedSpec::new(
//!         "telemetry",
//!         SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
//!         RatioWorkload::new("sensor", 0.5).generate(8),
//!     ),
//! ];
//! let report = FeedEngine::new(&EngineConfig::new(2), specs)
//!     .expect("engine builds")
//!     .run()
//!     .expect("engine runs");
//! assert_eq!(report.tenants.len(), 2);
//! assert!(report.feed_gas_total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod report;
mod router;
pub mod specs;

pub use engine::{tenant_shard, EngineConfig, FeedEngine, FeedSpec, TenantBudget};
pub use report::{EngineReport, TenantReport};
pub use router::ShardRouter;
