//! `grub-engine` — a sharded multi-tenant feed engine with cross-feed
//! epoch batching.
//!
//! The paper (and `grub-core`'s [`GrubSystem`](grub_core::system::GrubSystem))
//! meters *one* data feed at a time: one key-space, one policy, one trace.
//! Production data-feed operators serve many tenants — price feeds, block
//! relays, IoT streams — over one chain and one Gas budget, and the
//! interesting system behavior (fixed-cost amortization, cross-subsidization
//! between skewed and uniform tenants) only appears when those feeds share
//! infrastructure. This crate runs N independent feeds over a single shared
//! [`Blockchain`](grub_chain::Blockchain).
//!
//! # Architecture
//!
//! ```text
//!               FeedEngine (deterministic shard scheduler, two ExecModes)
//!
//!   STAGE (off-chain, Send-safe EpochStage halves)
//!     Sequential: shard s+1 stages while shard s's blocks execute (pipeline)
//!     Parallel:   one ParallelExecutor worker thread per shard
//!        worker 0: [feed a ingest→flush→encode] [feed b …]      (shard 0)
//!        worker 1: [feed c ingest→flush→encode] [feed d …]      (shard 1)
//!                     │ staged update/deliver sections, lane-ordered
//!   MERGE (single thread, canonical shard order, CommitGate-enforced)
//!        shard 0 write block → shard 0 read phase →
//!                      shard 1 write block → shard 1 read phase → …
//!                     │
//!   COMMIT (on-chain)      ┌── shard 0 ──┐       ┌── shard 1 ───┐
//!                          │ ShardRouter │       │ ShardRouter  │
//!                          │ batchUpdate │       │ batchUpdate  │
//!                          │ batchDeliver│       │ batchDeliver │
//!                          └─┬─────────┬─┘       └─┬──────────┬─┘
//!                        manager A  manager B   manager C … manager N
//!                           one shared Gas-metered Blockchain
//! ```
//!
//! * **Tenancy** — every feed is a full, independent GRuB deployment: its
//!   own [`EpochDriver`](grub_core::system::EpochDriver) (data owner with
//!   private policy state, storage provider with private store and Merkle
//!   tree) and its own namespaced storage-manager + consumer contracts.
//!   Feeds cannot observe each other's keys, decisions, or replicas.
//! * **Scheduling** — the engine runs feeds in *rounds*: round `r` lets
//!   every feed with trace left (and quota to spend, see below) ingest one
//!   epoch's worth of operations and close that epoch, higher quota tiers
//!   first. Two execution modes ([`ExecMode`]) schedule the shards:
//!   [`ExecMode::Sequential`] is the software pipeline — while shard `s`'s
//!   write block and read phase execute on-chain, shard `s+1`'s epochs are
//!   staged off-chain — and [`ExecMode::Parallel`]
//!   ([`EngineConfig::parallel`]) fans each shard's staging out to its own
//!   worker thread ([`ParallelExecutor`]) before a single-threaded merge
//!   commits shard blocks in canonical shard order.
//! * **Determinism contract** — a run is a deterministic function of its
//!   specs in *both* modes, and the modes are interchangeable: staging
//!   never touches the chain, results are consumed in lane order rather
//!   than completion order, and the merge claims shard commit slots through
//!   a [`CommitGate`](grub_chain::CommitGate) in the same canonical order
//!   the pipeline uses — so the mined chain is byte-for-byte identical
//!   (equal [`Blockchain::chain_digest`](grub_chain::Blockchain::chain_digest))
//!   across modes, quotas and parking included. No wall clock, thread
//!   timing, or map iteration order ever reaches the schedule.
//! * **Sharding** — each tenant is assigned to one of a fixed set of shards
//!   by FNV-1a hash of its name ([`tenant_shard`]). A shard owns an
//!   on-chain [`ShardRouter`] contract and a shard-operator account.
//! * **Cross-feed epoch batching** — within a round, all DO `update()`
//!   payloads of a shard's feeds land in the same block. Instead of paying
//!   one transaction envelope (`Ctx` base = 21000 Gas) per feed, the engine
//!   coalesces them into one `batchUpdate` transaction per shard
//!   (§5.1's batching observation applied across feeds, not just within
//!   one): the router forwards each section to the right storage manager as
//!   an internal call, which pays no envelope. Batching `n` same-block
//!   updates saves `(n-1)·21000` minus a few words of section framing.
//! * **Shard-level read batching** — the same amortization on the read
//!   path: instead of one SP `deliver` transaction per feed per epoch, each
//!   feed stages its watchdog's deliver payloads
//!   ([`EpochDriver::stage_reads`](grub_core::system::EpochDriver::stage_reads))
//!   and the engine coalesces a shard's round into one `batchDeliver`
//!   transaction. Proof verification, replica installation, and callback
//!   dispatch run unchanged inside the internal calls. Disable with
//!   [`EngineConfig::without_read_batching`] to isolate the write-only
//!   savings; live-tempo feeds fall back to their own deliver transactions
//!   automatically.
//! * **Per-tenant Gas quotas** — an optional [`TenantBudget`] per feed
//!   turns the scheduler into a token bucket with deferral. Knobs:
//!   `gas_per_round` (feed-layer Gas granted per scheduler round, ≥ 1),
//!   `burst` (cap on accumulated unspent allowance, default 4 rounds'
//!   worth), and `tier` (the quota class, default
//!   [`QuotaTier::Standard`]). A feed whose next epoch is estimated (by its
//!   previous epoch's actual metered cost: own transactions plus
//!   byte-proportional batch shares) to exceed its balance is *parked* —
//!   trace position and staged state untouched — and retried next round;
//!   spending may run the bucket into debt, parking proportionally longer.
//!   A full bucket always runs, and deferral never changes what an epoch
//!   computes, only when it runs.
//! * **Priority tiers** — [`QuotaTier`] classes the quota three ways:
//!   `High` refills 4 × `gas_per_round` per round, `Standard` 1 ×, `Low`
//!   1 × every other round; within a round higher tiers run first and
//!   their sections lead the shard batch (on a spill the high tier rides
//!   the first transaction); and each tier carries a starvation bound K
//!   (High 2, Standard 4, Low 8) — a feed parked K − 1 consecutive rounds
//!   is force-run on the Kth regardless of balance, so adversarial
//!   high-tier pressure can delay a low-tier epoch by at most K rounds.
//!
//! # Invariants
//!
//! 1. **Unbatched equivalence** — with batching disabled the engine submits
//!    exactly the transactions N single-feed `GrubSystem` runs would: total
//!    feed-layer Gas equals the sum of the N standalone runs (checked in
//!    `tests/engine.rs`), quota deferral included.
//! 2. **Batching only removes envelopes** — the batched paths change *who
//!    carries* the update and deliver payloads, never their content:
//!    replica storage writes, digests, proofs, and callbacks are
//!    byte-identical, so batched total Gas is strictly lower whenever any
//!    shard coalesces ≥ 2 updates (or deliveries) into one block.
//! 3. **Exact attribution** — per-tenant reports are measured by Gas-meter
//!    snapshots around each feed's own epoch work; a shard's batched update
//!    and deliver Gas is split over its sections proportionally to payload
//!    bytes (the residue of integer division goes to the last section) and
//!    the shares sum exactly to the metered shard totals — spilled batches
//!    included — so the aggregate report loses nothing to rounding.
//! 4. **Determinism** — two runs with identical specs produce byte-identical
//!    [`EngineReport::render_table`] output *and* equal chain digests,
//!    quotas and parking included — even when one run staged its shards on
//!    worker threads ([`ExecMode::Parallel`]) and the other used the
//!    sequential pipeline.
//!
//! # Example
//!
//! ```
//! use grub_core::policy::PolicyKind;
//! use grub_core::system::SystemConfig;
//! use grub_engine::{EngineConfig, FeedEngine, FeedSpec};
//! use grub_workload::ratio::RatioWorkload;
//!
//! let specs = vec![
//!     FeedSpec::new(
//!         "prices",
//!         SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
//!         RatioWorkload::new("ETH-USD", 8.0).generate(8),
//!     ),
//!     FeedSpec::new(
//!         "telemetry",
//!         SystemConfig::new(PolicyKind::Memoryless { k: 2 }),
//!         RatioWorkload::new("sensor", 0.5).generate(8),
//!     ),
//! ];
//! let report = FeedEngine::new(&EngineConfig::new(2), specs)
//!     .expect("engine builds")
//!     .run()
//!     .expect("engine runs");
//! assert_eq!(report.tenants.len(), 2);
//! assert!(report.feed_gas_total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod executor;
mod report;
mod router;
pub mod specs;

pub use engine::{
    tenant_shard, EngineConfig, ExecMode, FeedEngine, FeedSpec, QuotaTier, ScrubMode, TenantBudget,
};
pub use executor::ParallelExecutor;
pub use report::{EngineReport, EpochMetrics, TenantReport};
pub use router::ShardRouter;
