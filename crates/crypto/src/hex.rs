//! Dependency-free hex encoding and decoding.

use std::error::Error;
use std::fmt;

/// Error returned when parsing hex input fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseHexError {
    /// A character outside `[0-9a-fA-F]` was found at the given offset.
    BadCharacter {
        /// Byte offset of the offending character.
        offset: usize,
    },
    /// Input length was odd or did not match the expected digest length.
    BadLength {
        /// Expected number of hex characters.
        expected: usize,
        /// Actual number of hex characters supplied.
        actual: usize,
    },
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHexError::BadCharacter { offset } => {
                write!(f, "invalid hex character at offset {offset}")
            }
            ParseHexError::BadLength { expected, actual } => {
                write!(f, "invalid hex length: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for ParseHexError {}

/// Encodes bytes as lowercase hex.
///
/// # Examples
///
/// ```
/// assert_eq!(grub_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hex string (upper or lower case) into bytes.
///
/// # Errors
///
/// Returns [`ParseHexError::BadLength`] for odd-length input and
/// [`ParseHexError::BadCharacter`] for non-hex characters.
///
/// # Examples
///
/// ```
/// assert_eq!(grub_crypto::hex::decode("DEad").unwrap(), vec![0xde, 0xad]);
/// assert!(grub_crypto::hex::decode("zz").is_err());
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, ParseHexError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(ParseHexError::BadLength {
            expected: bytes.len() + 1,
            actual: bytes.len(),
        });
    }
    let nibble = |c: u8, offset: usize| -> Result<u8, ParseHexError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(ParseHexError::BadCharacter { offset }),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        out.push((nibble(bytes[i], i)? << 4) | nibble(bytes[i + 1], i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_odd_length() {
        assert!(matches!(
            decode("abc"),
            Err(ParseHexError::BadLength { .. })
        ));
    }

    #[test]
    fn rejects_bad_character() {
        assert_eq!(decode("0g"), Err(ParseHexError::BadCharacter { offset: 1 }));
    }

    #[test]
    fn empty_is_ok() {
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn mixed_case() {
        assert_eq!(decode("AbCd").unwrap(), vec![0xab, 0xcd]);
    }
}
