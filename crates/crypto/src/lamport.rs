//! Lamport one-time signatures built on SHA-256.
//!
//! The GRuB protocol requires the data owner (DO) to sign the Merkle root
//! digest so that neither the storage provider nor a blockchain observer can
//! forge it. The production system would use ECDSA; this reproduction offers
//! two substitutes (documented in `DESIGN.md` §3):
//!
//! * [`crate::hmac_sha256`] when verifier and signer can share a key (the
//!   simulator's storage-manager contract is instantiated by the DO, so this
//!   mirrors a contract constructor embedding the feed's verification key);
//! * this module's [`SigningKey`]/[`VerifyingKey`] when a true public-key
//!   signature is wanted. Lamport signatures are hash-only and unconditionally
//!   unforgeable for a single message per key.
//!
//! # Examples
//!
//! ```
//! use grub_crypto::lamport::SigningKey;
//!
//! let sk = SigningKey::from_seed(b"epoch-42");
//! let vk = sk.verifying_key();
//! let sig = sk.sign(b"root digest");
//! assert!(vk.verify(b"root digest", &sig));
//! assert!(!vk.verify(b"forged digest", &sig));
//! ```

use crate::{sha256, Hash32, Sha256};

/// Number of message digest bits each key can sign.
const BITS: usize = 256;

/// A Lamport one-time signing key: 2×256 secret preimages.
#[derive(Clone)]
pub struct SigningKey {
    secrets: Box<[[Hash32; 2]; BITS]>,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningKey").finish_non_exhaustive()
    }
}

/// The corresponding public key: hashes of every secret preimage.
#[derive(Clone, PartialEq, Eq)]
pub struct VerifyingKey {
    digests: Box<[[Hash32; 2]; BITS]>,
}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({}..)", &self.commitment().to_hex()[..12])
    }
}

/// A Lamport signature: one revealed preimage per message-digest bit.
#[derive(Clone, PartialEq, Eq)]
pub struct Signature {
    reveals: Box<[Hash32; BITS]>,
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Signature").finish_non_exhaustive()
    }
}

impl SigningKey {
    /// Derives a signing key deterministically from a seed.
    ///
    /// Each secret is `H(seed || bit_index || side)` — standard deterministic
    /// key expansion, adequate for the simulator (no OS entropy needed).
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut secrets = Box::new([[Hash32::ZERO; 2]; BITS]);
        for bit in 0..BITS {
            for side in 0..2 {
                let mut h = Sha256::new();
                h.update(b"lamport-secret");
                h.update(seed);
                h.update(&(bit as u16).to_be_bytes());
                h.update(&[side as u8]);
                secrets[bit][side] = h.finalize();
            }
        }
        SigningKey { secrets }
    }

    /// Computes the verifying key by hashing every secret.
    pub fn verifying_key(&self) -> VerifyingKey {
        let mut digests = Box::new([[Hash32::ZERO; 2]; BITS]);
        for bit in 0..BITS {
            for side in 0..2 {
                digests[bit][side] = sha256(self.secrets[bit][side].as_bytes());
            }
        }
        VerifyingKey { digests }
    }

    /// Signs a message by revealing, for each digest bit, the matching secret.
    ///
    /// A key must sign only one message; reusing it leaks secrets for both
    /// bit values, which is inherent to Lamport signatures.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let digest = sha256(message);
        let mut reveals = Box::new([Hash32::ZERO; BITS]);
        for bit in 0..BITS {
            let side = bit_of(&digest, bit);
            reveals[bit] = self.secrets[bit][side];
        }
        Signature { reveals }
    }
}

impl VerifyingKey {
    /// Checks `signature` against `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let digest = sha256(message);
        for bit in 0..BITS {
            let side = bit_of(&digest, bit);
            if sha256(signature.reveals[bit].as_bytes()) != self.digests[bit][side] {
                return false;
            }
        }
        true
    }

    /// A single 32-byte commitment to the whole key (hash of all digests),
    /// convenient to embed in contract storage.
    pub fn commitment(&self) -> Hash32 {
        let mut h = Sha256::new();
        for pair in self.digests.iter() {
            h.update(pair[0].as_bytes());
            h.update(pair[1].as_bytes());
        }
        h.finalize()
    }
}

fn bit_of(digest: &Hash32, index: usize) -> usize {
    let byte = digest.as_bytes()[index / 8];
    ((byte >> (7 - (index % 8))) & 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_round_trip() {
        let sk = SigningKey::from_seed(b"seed");
        let vk = sk.verifying_key();
        let sig = sk.sign(b"hello");
        assert!(vk.verify(b"hello", &sig));
    }

    #[test]
    fn rejects_wrong_message() {
        let sk = SigningKey::from_seed(b"seed");
        let vk = sk.verifying_key();
        let sig = sk.sign(b"hello");
        assert!(!vk.verify(b"hellp", &sig));
    }

    #[test]
    fn rejects_signature_from_other_key() {
        let sk1 = SigningKey::from_seed(b"one");
        let sk2 = SigningKey::from_seed(b"two");
        let vk1 = sk1.verifying_key();
        let sig = sk2.sign(b"hello");
        assert!(!vk1.verify(b"hello", &sig));
    }

    #[test]
    fn rejects_tampered_signature() {
        let sk = SigningKey::from_seed(b"seed");
        let vk = sk.verifying_key();
        let mut sig = sk.sign(b"msg");
        sig.reveals[3] = sha256(b"garbage");
        assert!(!vk.verify(b"msg", &sig));
    }

    #[test]
    fn deterministic_keys() {
        let a = SigningKey::from_seed(b"s").verifying_key();
        let b = SigningKey::from_seed(b"s").verifying_key();
        assert_eq!(a.commitment(), b.commitment());
        let c = SigningKey::from_seed(b"t").verifying_key();
        assert_ne!(a.commitment(), c.commitment());
    }
}
