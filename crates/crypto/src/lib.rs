//! From-scratch cryptographic primitives for the GRuB reproduction.
//!
//! The paper's prototype relies on standard hash-based authentication
//! (Merkle trees over SHA-256 style digests) plus digital signatures by the
//! data owner on the root digest. This crate provides:
//!
//! * [`sha256`] — a FIPS 180-4 SHA-256 implementation, validated against the
//!   official test vectors (see the unit tests).
//! * [`hmac_sha256`] — HMAC (RFC 2104) over SHA-256, used as the data owner's
//!   digest authenticator in the simulator (see `DESIGN.md` §3 for the
//!   substitution rationale).
//! * [`lamport`] — a Lamport one-time signature scheme, the hash-only "real"
//!   signature alternative.
//! * [`Hash32`] — the 32-byte digest newtype shared by every crate.
//! * [`hex`] — dependency-free hex encoding/decoding.
//!
//! # Examples
//!
//! ```
//! use grub_crypto::{sha256, Hash32};
//!
//! let digest: Hash32 = sha256(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hex;
pub mod lamport;
mod sha2;

use std::fmt;

use serde::{Deserialize, Serialize};

pub use sha2::Sha256;

/// A 32-byte digest, the unit of authentication throughout the workspace.
///
/// `Hash32` is deliberately a thin newtype (`C-NEWTYPE`): it keeps digests
/// from being confused with other 32-byte quantities such as storage words.
///
/// # Examples
///
/// ```
/// use grub_crypto::Hash32;
///
/// let zero = Hash32::ZERO;
/// assert_eq!(zero.as_bytes(), &[0u8; 32]);
/// let parsed: Hash32 = Hash32::from_hex(&zero.to_hex()).unwrap();
/// assert_eq!(parsed, zero);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Hash32([u8; 32]);

impl Hash32 {
    /// The all-zero digest, used as a sentinel for "no data".
    pub const ZERO: Hash32 = Hash32([0u8; 32]);

    /// Wraps raw bytes as a digest.
    pub const fn new(bytes: [u8; 32]) -> Self {
        Hash32(bytes)
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Returns `true` if this is the all-zero sentinel digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 32]
    }

    /// Lowercase hex rendering of the digest (64 characters).
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Parses a 64-character hex string into a digest.
    ///
    /// # Errors
    ///
    /// Returns [`hex::ParseHexError`] when the input is not exactly 64 hex
    /// characters.
    pub fn from_hex(s: &str) -> Result<Self, hex::ParseHexError> {
        let bytes = hex::decode(s)?;
        if bytes.len() != 32 {
            return Err(hex::ParseHexError::BadLength {
                expected: 64,
                actual: s.len(),
            });
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Ok(Hash32(out))
    }
}

impl fmt::Debug for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash32({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 32]> for Hash32 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash32(bytes)
    }
}

impl AsRef<[u8]> for Hash32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Computes the SHA-256 digest of `data` in one shot.
///
/// # Examples
///
/// ```
/// let d = grub_crypto::sha256(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Hash32 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Computes SHA-256 over the concatenation of two byte strings.
///
/// This is the Merkle-tree inner-node combiner used by `grub-merkle`:
/// `parent = H(left || right)`.
pub fn sha256_pair(left: &Hash32, right: &Hash32) -> Hash32 {
    let mut h = Sha256::new();
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// HMAC-SHA256 per RFC 2104.
///
/// Used as the data owner's authenticator on the signed root digest in the
/// simulation (substituting for ECDSA; see `DESIGN.md` §3). Verified against
/// RFC 4231 test vectors in the unit tests.
///
/// # Examples
///
/// ```
/// let tag = grub_crypto::hmac_sha256(b"key", b"message");
/// assert_eq!(tag, grub_crypto::hmac_sha256(b"key", b"message"));
/// assert_ne!(tag, grub_crypto::hmac_sha256(b"other", b"message"));
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Hash32 {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(sha256(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Derives a deterministic 20-byte style account address (zero-padded into 32
/// bytes) from a label, mimicking how test accounts are minted on devnets.
pub fn derive_address(label: &str) -> Hash32 {
    let mut h = Sha256::new();
    h.update(b"grub-address:");
    h.update(label.as_bytes());
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 / standard SHA-256 test vectors.
    #[test]
    fn sha256_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha256(&data));
    }

    // RFC 4231 test case 1.
    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn hmac_rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn hmac_rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn hmac_rfc4231_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn hash32_hex_round_trip() {
        let d = sha256(b"round trip");
        let parsed = Hash32::from_hex(&d.to_hex()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn hash32_from_hex_rejects_bad_length() {
        assert!(Hash32::from_hex("abcd").is_err());
    }

    #[test]
    fn hash32_zero_sentinel() {
        assert!(Hash32::ZERO.is_zero());
        assert!(!sha256(b"x").is_zero());
    }

    #[test]
    fn derive_address_is_deterministic_and_distinct() {
        assert_eq!(derive_address("alice"), derive_address("alice"));
        assert_ne!(derive_address("alice"), derive_address("bob"));
    }

    #[test]
    fn sha256_pair_is_order_sensitive() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_ne!(sha256_pair(&a, &b), sha256_pair(&b, &a));
    }
}
