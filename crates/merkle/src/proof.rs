//! Proof objects and their verification.
//!
//! Verification is pure (no tree access): given only the trusted root digest
//! — which the storage-manager contract keeps on chain — a verifier can
//! check membership of a single record or the completeness of a range
//! result. Proof sizes and hash counts are exposed so the Gas layer can
//! charge `Ctx` for proof bytes moved on chain and `Chash` for every digest
//! recomputed during verification, exactly as the paper's cost model does.

use std::error::Error;
use std::fmt;

use grub_crypto::Hash32;
use serde::{Deserialize, Serialize};

use crate::{inner_hash, leaf_hash, ProofKey};

/// One step of a Merkle authentication path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathStep {
    /// Digest of the sibling subtree.
    pub sibling: Hash32,
    /// Whether the sibling is the *left* child (target on the right).
    pub sibling_is_left: bool,
}

/// Proof that a single record is committed under a root.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipProof {
    /// Authentication path from the leaf (first) to the root (last).
    pub path: Vec<PathStep>,
    /// The proven leaf's key.
    pub leaf_pkey: ProofKey,
    /// The proven leaf's value hash.
    pub leaf_vhash: Hash32,
    /// The proven leaf's validity flag.
    pub leaf_valid: bool,
}

impl MembershipProof {
    /// Verifies that `(pkey, vhash)` is a live record under `root`.
    pub fn verify(&self, root: &Hash32, pkey: &ProofKey, vhash: &Hash32) -> bool {
        if self.leaf_pkey != *pkey || self.leaf_vhash != *vhash || !self.leaf_valid {
            return false;
        }
        self.computed_root() == *root
    }

    /// Recomputes the root implied by this proof's leaf and path.
    pub fn computed_root(&self) -> Hash32 {
        let mut acc = leaf_hash(&self.leaf_pkey, &self.leaf_vhash, self.leaf_valid);
        for step in &self.path {
            acc = if step.sibling_is_left {
                inner_hash(&step.sibling, &acc)
            } else {
                inner_hash(&acc, &step.sibling)
            };
        }
        acc
    }

    /// Number of hash evaluations a verifier performs (leaf + path).
    pub fn hash_count(&self) -> usize {
        1 + self.path.len()
    }

    /// Serialized size in bytes: per step 32+1, plus leaf key, value hash
    /// and flag.
    pub fn encoded_len(&self) -> usize {
        self.path.len() * 33 + self.leaf_pkey.encoded_len() + 32 + 1
    }
}

/// A node of a pruned-subtree range proof.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProofNode {
    /// A subtree entirely outside the (extended) range, collapsed to its
    /// digest.
    Opaque(Hash32),
    /// A revealed leaf (tombstones are revealed too — their keys order the
    /// run; verifiers exclude them from results).
    Leaf {
        /// Leaf key.
        pkey: ProofKey,
        /// Leaf value hash.
        vhash: Hash32,
        /// Validity flag (false = tombstone).
        valid: bool,
    },
    /// An inner node with both children present.
    Inner {
        /// Left child.
        left: Box<ProofNode>,
        /// Right child.
        right: Box<ProofNode>,
    },
}

impl ProofNode {
    fn root(&self) -> Hash32 {
        match self {
            ProofNode::Opaque(h) => *h,
            ProofNode::Leaf { pkey, vhash, valid } => leaf_hash(pkey, vhash, *valid),
            ProofNode::Inner { left, right } => inner_hash(&left.root(), &right.root()),
        }
    }

    fn walk<'a>(&'a self, out: &mut Vec<InOrderItem<'a>>) {
        match self {
            ProofNode::Opaque(_) => out.push(InOrderItem::Opaque),
            ProofNode::Leaf { pkey, vhash, valid } => {
                out.push(InOrderItem::Leaf(pkey, vhash, *valid))
            }
            ProofNode::Inner { left, right } => {
                left.walk(out);
                right.walk(out);
            }
        }
    }

    fn count_hashes(&self) -> usize {
        match self {
            ProofNode::Opaque(_) => 0,
            ProofNode::Leaf { .. } => 1,
            ProofNode::Inner { left, right } => 1 + left.count_hashes() + right.count_hashes(),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            ProofNode::Opaque(_) => 1 + 32,
            ProofNode::Leaf { pkey, .. } => 1 + pkey.encoded_len() + 32 + 1,
            ProofNode::Inner { left, right } => 1 + left.encoded_len() + right.encoded_len(),
        }
    }
}

enum InOrderItem<'a> {
    Opaque,
    Leaf(&'a ProofKey, &'a Hash32, bool),
}

/// Reasons a range proof fails verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// Recomputed root does not match the trusted root.
    RootMismatch,
    /// Revealed leaves are not a single contiguous in-order run.
    NonContiguousReveal,
    /// Revealed leaf keys are not strictly increasing.
    UnsortedLeaves,
    /// A hidden subtree could contain in-range keys (missing boundary).
    IncompleteBoundary,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            VerifyError::RootMismatch => "recomputed root does not match trusted root",
            VerifyError::NonContiguousReveal => "revealed leaves are not contiguous in order",
            VerifyError::UnsortedLeaves => "revealed leaf keys are not strictly increasing",
            VerifyError::IncompleteBoundary => "hidden subtree may contain in-range keys",
        };
        f.write_str(msg)
    }
}

impl Error for VerifyError {}

/// A completeness-checkable proof for a key range.
///
/// Produced by [`crate::MerkleKv::prove_range`]; verified with only the
/// trusted root. Soundness argument: the recomputed root pins the committed
/// structure, whose in-order leaves are sorted; the verifier requires the
/// revealed leaves to form one contiguous in-order run whose end leaves lie
/// strictly outside the queried range (or touch the tree's ends), so every
/// hidden leaf is provably outside the range.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeProof {
    /// Pruned tree (None ⇔ the whole tree is empty).
    pub tree: Option<ProofNode>,
}

impl RangeProof {
    /// Proof for a query against an empty tree.
    pub fn empty() -> Self {
        RangeProof { tree: None }
    }

    /// Verifies the proof against `root` for the query `[lo, hi]`, returning
    /// the live matching records in key order.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] describing the first check that failed.
    pub fn verify(
        &self,
        root: &Hash32,
        lo: &ProofKey,
        hi: &ProofKey,
    ) -> Result<Vec<(ProofKey, Hash32)>, VerifyError> {
        let Some(tree) = &self.tree else {
            return if *root == crate::empty_root() {
                Ok(Vec::new())
            } else {
                Err(VerifyError::RootMismatch)
            };
        };
        if tree.root() != *root {
            return Err(VerifyError::RootMismatch);
        }
        let mut items = Vec::new();
        tree.walk(&mut items);
        // Pattern check: Opaque* Leaf+ Opaque*.
        let first_leaf = items
            .iter()
            .position(|i| matches!(i, InOrderItem::Leaf(..)));
        let last_leaf = items
            .iter()
            .rposition(|i| matches!(i, InOrderItem::Leaf(..)));
        let (Some(first), Some(last)) = (first_leaf, last_leaf) else {
            return Err(VerifyError::IncompleteBoundary);
        };
        if items[first..=last]
            .iter()
            .any(|i| matches!(i, InOrderItem::Opaque))
        {
            return Err(VerifyError::NonContiguousReveal);
        }
        let leaves: Vec<(&ProofKey, &Hash32, bool)> = items[first..=last]
            .iter()
            .map(|i| match i {
                InOrderItem::Leaf(k, v, valid) => (*k, *v, *valid),
                InOrderItem::Opaque => unreachable!("checked contiguous"),
            })
            .collect();
        for pair in leaves.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err(VerifyError::UnsortedLeaves);
            }
        }
        // Boundary checks: anything hidden before the run must be < lo, which
        // holds iff the run either starts at the global first leaf (no opaque
        // before it) or its first leaf is itself below the range. Dually for
        // the high side.
        let opaque_before = first > 0;
        if opaque_before && leaves[0].0 >= lo {
            return Err(VerifyError::IncompleteBoundary);
        }
        let opaque_after = last + 1 < items.len();
        if opaque_after && leaves[leaves.len() - 1].0 <= hi {
            return Err(VerifyError::IncompleteBoundary);
        }
        Ok(leaves
            .into_iter()
            .filter(|(k, _, valid)| *valid && *k >= lo && *k <= hi)
            .map(|(k, v, _)| (k.clone(), *v))
            .collect())
    }

    /// Number of hash evaluations a verifier performs.
    pub fn hash_count(&self) -> usize {
        self.tree.as_ref().map(|t| t.count_hashes()).unwrap_or(0)
    }

    /// Serialized size in bytes, for transaction-payload Gas accounting.
    pub fn encoded_len(&self) -> usize {
        1 + self.tree.as_ref().map(|t| t.encoded_len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_value_hash, MerkleKv, ReplState};

    fn nr(key: &str) -> ProofKey {
        ProofKey::new(ReplState::NotReplicated, key.as_bytes().to_vec())
    }

    fn r(key: &str) -> ProofKey {
        ProofKey::new(ReplState::Replicated, key.as_bytes().to_vec())
    }

    fn vh(v: &str) -> Hash32 {
        record_value_hash(v.as_bytes())
    }

    fn figure_4b_tree() -> MerkleKv {
        // ⟨w,NR,100⟩ ⟨y,NR,200⟩ ⟨x,R,300⟩ ⟨z,R,400⟩ — the paper's example.
        MerkleKv::from_sorted(vec![
            (nr("w"), vh("100")),
            (nr("y"), vh("200")),
            (r("x"), vh("300")),
            (r("z"), vh("400")),
        ])
    }

    #[test]
    fn membership_proof_verifies() {
        let t = figure_4b_tree();
        let root = t.root();
        let p = t.prove(&nr("y")).unwrap();
        assert!(p.verify(&root, &nr("y"), &vh("200")));
        assert_eq!(p.hash_count(), 3); // leaf + 2 levels
    }

    #[test]
    fn membership_proof_rejects_wrong_value_or_key() {
        let t = figure_4b_tree();
        let root = t.root();
        let p = t.prove(&nr("y")).unwrap();
        assert!(!p.verify(&root, &nr("y"), &vh("999")));
        assert!(!p.verify(&root, &nr("w"), &vh("200")));
    }

    #[test]
    fn membership_proof_rejects_stale_root() {
        let mut t = figure_4b_tree();
        let p = t.prove(&nr("y")).unwrap();
        t.insert(nr("y"), vh("201"));
        let new_root = t.root();
        assert!(
            !p.verify(&new_root, &nr("y"), &vh("200")),
            "old proof must not verify against the new root"
        );
    }

    #[test]
    fn tampered_path_is_rejected() {
        let t = figure_4b_tree();
        let root = t.root();
        let mut p = t.prove(&r("x")).unwrap();
        p.path[0].sibling = vh("evil");
        assert!(!p.verify(&root, &r("x"), &vh("300")));
    }

    #[test]
    fn no_proof_for_missing_or_tombstoned_keys() {
        let mut t = figure_4b_tree();
        assert!(t.prove(&nr("nope")).is_none());
        t.invalidate(&nr("w"));
        assert!(t.prove(&nr("w")).is_none());
    }

    #[test]
    fn range_proof_returns_exact_matches() {
        let t = figure_4b_tree();
        let root = t.root();
        // Query the whole NR group, as the read path does.
        let lo = ProofKey::new(ReplState::NotReplicated, Vec::new());
        let hi = ProofKey::new(ReplState::NotReplicated, vec![0xff; 8]);
        let proof = t.prove_range(&lo, &hi);
        let got = proof.verify(&root, &lo, &hi).unwrap();
        assert_eq!(got, vec![(nr("w"), vh("100")), (nr("y"), vh("200"))]);
    }

    #[test]
    fn range_proof_paper_example() {
        // Appendix B.2.2: query [x, z] over NR records reveals ⟨y,NR,200⟩
        // with boundary records around it.
        let t = figure_4b_tree();
        let root = t.root();
        let lo = nr("x");
        let hi = nr("z");
        let proof = t.prove_range(&lo, &hi);
        let got = proof.verify(&root, &lo, &hi).unwrap();
        assert_eq!(got, vec![(nr("y"), vh("200"))]);
    }

    #[test]
    fn empty_range_still_verifies() {
        let t = figure_4b_tree();
        let root = t.root();
        let lo = nr("aa");
        let hi = nr("ab");
        let proof = t.prove_range(&lo, &hi);
        assert_eq!(proof.verify(&root, &lo, &hi).unwrap(), Vec::new());
    }

    #[test]
    fn empty_tree_range_proof() {
        let t = MerkleKv::new();
        let proof = t.prove_range(&nr("a"), &nr("z"));
        assert_eq!(
            proof.verify(&t.root(), &nr("a"), &nr("z")).unwrap(),
            Vec::new()
        );
        // But not against some other root.
        assert_eq!(
            proof.verify(&vh("other"), &nr("a"), &nr("z")),
            Err(VerifyError::RootMismatch)
        );
    }

    #[test]
    fn omission_attack_is_detected() {
        // The SP tries to answer the full-NR query while hiding ⟨y⟩ by
        // collapsing it into an opaque digest. The pruned tree still hashes
        // to the correct root, but the boundary check must fail.
        let t = figure_4b_tree();
        let root = t.root();
        let lo = ProofKey::new(ReplState::NotReplicated, Vec::new());
        let hi = ProofKey::new(ReplState::NotReplicated, vec![0xff; 8]);
        let honest = t.prove_range(&lo, &hi);
        // Build a dishonest proof: replace the revealed ⟨y⟩ leaf with its
        // opaque digest.
        fn hide_leaf(node: &ProofNode, target: &ProofKey) -> ProofNode {
            match node {
                ProofNode::Leaf { pkey, vhash, valid } if pkey == target => {
                    ProofNode::Opaque(crate::leaf_hash(pkey, vhash, *valid))
                }
                ProofNode::Inner { left, right } => ProofNode::Inner {
                    left: Box::new(hide_leaf(left, target)),
                    right: Box::new(hide_leaf(right, target)),
                },
                other => other.clone(),
            }
        }
        let dishonest = RangeProof {
            tree: honest.tree.as_ref().map(|t| hide_leaf(t, &nr("y"))),
        };
        let err = dishonest.verify(&root, &lo, &hi).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::NonContiguousReveal | VerifyError::IncompleteBoundary
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn forged_value_fails_root_check() {
        let t = figure_4b_tree();
        let root = t.root();
        let lo = nr("x");
        let hi = nr("z");
        let mut proof = t.prove_range(&lo, &hi);
        fn forge(node: &mut ProofNode) {
            match node {
                ProofNode::Leaf { vhash, .. } => *vhash = vh("forged"),
                ProofNode::Inner { left, right } => {
                    forge(left);
                    forge(right);
                }
                ProofNode::Opaque(_) => {}
            }
        }
        forge(proof.tree.as_mut().unwrap());
        assert_eq!(
            proof.verify(&root, &lo, &hi),
            Err(VerifyError::RootMismatch)
        );
    }

    #[test]
    fn tombstones_are_revealed_but_excluded_from_results() {
        let mut t = figure_4b_tree();
        t.invalidate(&nr("y"));
        let root = t.root();
        let lo = ProofKey::new(ReplState::NotReplicated, Vec::new());
        let hi = ProofKey::new(ReplState::NotReplicated, vec![0xff; 8]);
        let proof = t.prove_range(&lo, &hi);
        let got = proof.verify(&root, &lo, &hi).unwrap();
        assert_eq!(got, vec![(nr("w"), vh("100"))]);
    }

    #[test]
    fn proof_sizes_are_positive_and_scale() {
        let small = figure_4b_tree();
        let records: Vec<_> = (0..256)
            .map(|i| (nr(&format!("k{i:04}")), vh(&i.to_string())))
            .collect();
        let big = MerkleKv::from_sorted(records);
        let ps = small.prove(&nr("w")).unwrap();
        let pb = big.prove(&nr("k0100")).unwrap();
        assert!(pb.encoded_len() > ps.encoded_len());
        assert!(pb.hash_count() > ps.hash_count());
    }
}
