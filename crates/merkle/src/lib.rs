//! The authenticated data structure (ADS) of GRuB.
//!
//! Per the paper (§3.3, Appendix B), the storage provider (SP) maintains a
//! binary Merkle tree over the key-value records, laid out by *replication
//! state first, then key*: all `NR` (not-replicated) records sorted by key,
//! followed by all `R` (replicated) records sorted by key (Figure 4b). The
//! data owner (DO) keeps only the root digest; every SP response carries a
//! proof that the DO (on update) or the storage-manager contract (on
//! `deliver`) verifies.
//!
//! The tree follows the paper's own update algebra (Appendix B.2.1):
//!
//! * value updates replace a leaf hash in place;
//! * state transitions (R↔NR) **invalidate** the old leaf in place and graft
//!   a fresh leaf next to its sorted neighbour (the paper's
//!   `h9 = H(h4 ‖ h8)` example);
//! * range queries over the NR group are answered with pruned-subtree proofs
//!   whose completeness the verifier checks structurally.
//!
//! # Examples
//!
//! ```
//! use grub_merkle::{MerkleKv, ProofKey, ReplState, record_value_hash};
//!
//! let mut tree = MerkleKv::new();
//! let key = ProofKey::new(ReplState::NotReplicated, b"eth-usd".to_vec());
//! tree.insert(key.clone(), record_value_hash(b"150"));
//! let root = tree.root();
//!
//! let proof = tree.prove(&key).expect("key exists");
//! assert!(proof.verify(&root, &key, &record_value_hash(b"150")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod proof;
mod tree;

pub use proof::{MembershipProof, PathStep, ProofNode, RangeProof, VerifyError};
pub use tree::{MerkleKv, TreeOp};

use grub_crypto::{sha256, Hash32, Sha256};
use serde::{Deserialize, Serialize};

/// Whether a record currently has an on-chain replica.
///
/// The replication state is part of the authenticated key ("the record's key
/// is prefixed with an extra bit", §3.2), so the SP cannot lie to the
/// contract about whether a record should have been served from the replica.
///
/// `NotReplicated` orders before `Replicated`, giving the paper's layout of
/// the NR group first (range queries on the read path only touch NR records).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ReplState {
    /// The record lives only on the SP; reads need a `deliver` transaction.
    NotReplicated,
    /// The record has a replica in smart-contract storage.
    Replicated,
}

impl ReplState {
    /// One-byte encoding used inside leaf hashes.
    pub fn as_byte(self) -> u8 {
        match self {
            ReplState::NotReplicated => 0,
            ReplState::Replicated => 1,
        }
    }

    /// Decodes the one-byte encoding.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ReplState::NotReplicated),
            1 => Some(ReplState::Replicated),
            _ => None,
        }
    }

    /// The paper's shorthand: `R` / `NR`.
    pub fn shorthand(self) -> &'static str {
        match self {
            ReplState::NotReplicated => "NR",
            ReplState::Replicated => "R",
        }
    }
}

/// The authenticated key of a record: replication state, then data key.
///
/// Ordering is state-major, matching the tree layout of Figure 4b.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProofKey {
    /// Replication state prefix.
    pub state: ReplState,
    /// Application data key.
    pub key: Vec<u8>,
}

impl ProofKey {
    /// Builds a proof key.
    pub fn new(state: ReplState, key: impl Into<Vec<u8>>) -> Self {
        ProofKey {
            state,
            key: key.into(),
        }
    }

    /// Serialized size in bytes (state byte + 4-byte length + key).
    pub fn encoded_len(&self) -> usize {
        1 + 4 + self.key.len()
    }
}

/// Hash of a record value, committed to by the leaf.
pub fn record_value_hash(value: &[u8]) -> Hash32 {
    let mut h = Sha256::new();
    h.update(b"grub-value");
    h.update(value);
    h.finalize()
}

/// Leaf digest: commits to state, key, value hash and validity flag.
///
/// Domain-separated from inner nodes (`0x00` prefix) so a leaf can never be
/// confused with an inner node — the standard second-preimage defence.
pub fn leaf_hash(pkey: &ProofKey, vhash: &Hash32, valid: bool) -> Hash32 {
    let mut h = Sha256::new();
    h.update(&[0x00, pkey.state.as_byte()]);
    h.update(&(pkey.key.len() as u32).to_le_bytes());
    h.update(&pkey.key);
    h.update(vhash.as_bytes());
    h.update(&[valid as u8]);
    h.finalize()
}

/// Inner-node digest: `H(0x01 ‖ left ‖ right)`.
pub fn inner_hash(left: &Hash32, right: &Hash32) -> Hash32 {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// Digest of the empty tree.
pub fn empty_root() -> Hash32 {
    sha256(b"grub-empty-tree")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_state_orders_nr_first() {
        assert!(ReplState::NotReplicated < ReplState::Replicated);
    }

    #[test]
    fn proof_key_ordering_is_state_major() {
        let nr_z = ProofKey::new(ReplState::NotReplicated, b"z".to_vec());
        let r_a = ProofKey::new(ReplState::Replicated, b"a".to_vec());
        assert!(nr_z < r_a, "all NR keys precede all R keys");
        let nr_a = ProofKey::new(ReplState::NotReplicated, b"a".to_vec());
        assert!(nr_a < nr_z);
    }

    #[test]
    fn repl_state_byte_round_trip() {
        for s in [ReplState::NotReplicated, ReplState::Replicated] {
            assert_eq!(ReplState::from_byte(s.as_byte()), Some(s));
        }
        assert_eq!(ReplState::from_byte(9), None);
    }

    #[test]
    fn leaf_hash_binds_all_fields() {
        let k = ProofKey::new(ReplState::NotReplicated, b"k".to_vec());
        let v = record_value_hash(b"v");
        let base = leaf_hash(&k, &v, true);
        assert_ne!(base, leaf_hash(&k, &v, false), "validity flag");
        assert_ne!(
            base,
            leaf_hash(
                &ProofKey::new(ReplState::Replicated, b"k".to_vec()),
                &v,
                true
            ),
            "state"
        );
        assert_ne!(base, leaf_hash(&k, &record_value_hash(b"w"), true), "value");
    }

    #[test]
    fn leaf_and_inner_domains_are_separated() {
        let a = record_value_hash(b"a");
        let b = record_value_hash(b"b");
        // No accidental structural collision between the two node kinds.
        assert_ne!(
            inner_hash(&a, &b),
            leaf_hash(
                &ProofKey::new(ReplState::NotReplicated, b"".to_vec()),
                &a,
                true
            )
        );
    }
}
