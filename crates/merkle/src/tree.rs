//! The SP-side Merkle tree over state-prefixed, key-sorted records.

use grub_crypto::Hash32;

use crate::proof::{MembershipProof, PathStep, ProofNode, RangeProof};
use crate::{empty_root, inner_hash, leaf_hash, ProofKey};

#[derive(Clone, Debug)]
pub(crate) struct LeafData {
    pub pkey: ProofKey,
    pub vhash: Hash32,
    pub valid: bool,
    pub hash: Hash32,
    /// `hash` is stale; recomputed by the batch rehash pass. Never true
    /// outside [`MerkleKv::apply_batch`].
    pub dirty: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct InnerData {
    pub hash: Hash32,
    /// `hash` is stale; recomputed by the batch rehash pass. Never true
    /// outside [`MerkleKv::apply_batch`].
    pub dirty: bool,
    pub min: ProofKey,
    pub max: ProofKey,
    pub count: usize,
    pub left: Box<Node>,
    pub right: Box<Node>,
}

#[derive(Clone, Debug)]
pub(crate) enum Node {
    Leaf(LeafData),
    Inner(InnerData),
}

impl Node {
    /// A fresh live leaf. With `defer` the hash is left stale (and the leaf
    /// marked dirty) for the batch rehash pass, so shared root-to-leaf
    /// paths pay for hashing once per round rather than once per op.
    fn new_leaf(pkey: ProofKey, vhash: Hash32, defer: bool) -> Node {
        let hash = if defer {
            Hash32::default()
        } else {
            leaf_hash(&pkey, &vhash, true)
        };
        Node::Leaf(LeafData {
            pkey,
            vhash,
            valid: true,
            hash,
            dirty: defer,
        })
    }

    fn hash(&self) -> Hash32 {
        match self {
            Node::Leaf(l) => l.hash,
            Node::Inner(i) => i.hash,
        }
    }

    fn min(&self) -> &ProofKey {
        match self {
            Node::Leaf(l) => &l.pkey,
            Node::Inner(i) => &i.min,
        }
    }

    fn max(&self) -> &ProofKey {
        match self {
            Node::Leaf(l) => &l.pkey,
            Node::Inner(i) => &i.max,
        }
    }

    /// Physical leaf count (tombstones included).
    fn count(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Inner(i) => i.count,
        }
    }

    /// Joins two subtrees into an inner node. With `defer` the parent hash
    /// is left stale (dirty) for the batch rehash pass; min/max/count — the
    /// only inputs shape decisions read — are always maintained eagerly.
    fn join(left: Box<Node>, right: Box<Node>, defer: bool) -> Node {
        let hash = if defer {
            Hash32::default()
        } else {
            inner_hash(&left.hash(), &right.hash())
        };
        Node::Inner(InnerData {
            hash,
            dirty: defer,
            min: left.min().clone(),
            max: right.max().clone(),
            count: left.count() + right.count(),
            left,
            right,
        })
    }

    /// Joins two subtrees, locally rebuilding (scapegoat style) when one
    /// side dominates. Deterministic — and a pure function of key order and
    /// leaf counts, never hashes — so the SP tree, the DO mirror, and the
    /// deferred-hash batch path all make identical shape decisions and
    /// their roots agree.
    fn balanced_join(left: Box<Node>, right: Box<Node>, defer: bool) -> Node {
        let total = left.count() + right.count();
        let lopsided = total > 8 && (left.count() * 4 > total * 3 || right.count() * 4 > total * 3);
        if !lopsided {
            return Node::join(left, right, defer);
        }
        let mut leaves = Vec::with_capacity(total);
        flatten(*left, &mut leaves);
        flatten(*right, &mut leaves);
        *rebuild_leaves(leaves, defer)
    }
}

fn flatten(node: Node, out: &mut Vec<LeafData>) {
    match node {
        Node::Leaf(l) => out.push(l),
        Node::Inner(i) => {
            flatten(*i.left, out);
            flatten(*i.right, out);
        }
    }
}

fn rebuild_leaves(mut leaves: Vec<LeafData>, defer: bool) -> Box<Node> {
    fn build(leaves: &mut [Option<LeafData>], defer: bool) -> Box<Node> {
        match leaves.len() {
            0 => unreachable!("rebuild_leaves requires at least one leaf"),
            // grub-lint: allow(panic) — each slot starts Some and is taken exactly once across the recursion
            1 => Box::new(Node::Leaf(leaves[0].take().expect("present"))),
            n => {
                let (l, r) = leaves.split_at_mut(n / 2);
                Node::join(build(l, defer), build(r, defer), defer).into()
            }
        }
    }
    assert!(!leaves.is_empty());
    let mut slots: Vec<Option<LeafData>> = leaves.drain(..).map(Some).collect();
    build(&mut slots, defer)
}

/// The authenticated KV index: a binary Merkle tree whose in-order leaves
/// are sorted by [`ProofKey`] (NR group first, then R group — Figure 4b).
///
/// Mutations follow the paper's Appendix B.2.1: updates replace a leaf hash
/// in place; fresh keys split the adjacent leaf into an inner node; state
/// transitions tombstone the old leaf and graft a new one. The structure
/// deterministically rebalances itself (dropping tombstones) once grafts or
/// tombstones dominate, so proof depth stays `O(log n)` — both the SP and
/// the DO's mirror apply the same rule, keeping their roots in lock-step.
#[derive(Clone, Debug, Default)]
pub struct MerkleKv {
    root: Option<Box<Node>>,
    live: usize,
    tombstones: usize,
}

impl MerkleKv {
    /// Creates an empty tree.
    pub fn new() -> Self {
        MerkleKv::default()
    }

    /// Builds a balanced tree from records sorted by `ProofKey`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not strictly sorted by key.
    pub fn from_sorted(records: Vec<(ProofKey, Hash32)>) -> Self {
        for pair in records.windows(2) {
            assert!(pair[0].0 < pair[1].0, "records must be strictly sorted");
        }
        let live = records.len();
        let root = build_balanced(&records, false);
        MerkleKv {
            root,
            live,
            tombstones: 0,
        }
    }

    /// The root digest ([`empty_root`] when the tree holds nothing).
    pub fn root(&self) -> Hash32 {
        self.root
            .as_ref()
            .map(|n| n.hash())
            .unwrap_or_else(empty_root)
    }

    /// Number of live (non-tombstoned) records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the tree holds no live records.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of tombstoned leaves awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Looks up a key, returning its value hash if present and live.
    pub fn get(&self, pkey: &ProofKey) -> Option<Hash32> {
        let mut node = self.root.as_deref()?;
        loop {
            match node {
                Node::Leaf(l) => {
                    return (l.pkey == *pkey && l.valid).then_some(l.vhash);
                }
                Node::Inner(i) => {
                    node = if *pkey <= *i.left.max() {
                        &i.left
                    } else {
                        &i.right
                    };
                }
            }
        }
    }

    /// Inserts a key or updates it in place (reviving a tombstone if one
    /// exists for the same key).
    pub fn insert(&mut self, pkey: ProofKey, vhash: Hash32) {
        self.insert_with(pkey, vhash, false);
    }

    fn insert_with(&mut self, pkey: ProofKey, vhash: Hash32, defer: bool) {
        match self.root.take() {
            None => {
                self.root = Some(Box::new(Node::new_leaf(pkey, vhash, defer)));
                self.live += 1;
            }
            Some(node) => {
                let (node, outcome) = insert_rec(node, pkey, vhash, defer);
                self.root = Some(node);
                match outcome {
                    InsertOutcome::Grafted => {
                        self.live += 1;
                    }
                    InsertOutcome::Revived => {
                        self.live += 1;
                        self.tombstones -= 1;
                    }
                    InsertOutcome::Updated => {}
                }
            }
        }
        self.maybe_rebalance(defer);
    }

    /// Tombstones a key (the paper's "mark invalid"); returns whether it was
    /// live.
    pub fn invalidate(&mut self, pkey: &ProofKey) -> bool {
        self.invalidate_with(pkey, false)
    }

    fn invalidate_with(&mut self, pkey: &ProofKey, defer: bool) -> bool {
        let Some(node) = self.root.take() else {
            return false;
        };
        let (node, removed) = invalidate_rec(node, pkey, defer);
        self.root = Some(node);
        if removed {
            self.live -= 1;
            self.tombstones += 1;
        }
        self.maybe_rebalance(defer);
        removed
    }

    /// Applies a whole sync round of mutations in one pass, with hashing
    /// deferred: every structural decision (graft order, scapegoat joins,
    /// the tombstone-compaction trigger) is made exactly as the equivalent
    /// sequence of [`MerkleKv::insert`]/[`MerkleKv::invalidate`] calls
    /// would make it — shape depends only on keys and counts, never hashes
    /// — but dirty nodes are rehashed once, bottom-up, at the end of the
    /// round. Root-to-leaf paths shared by several ops (and subtrees churned
    /// by a mid-round compaction) therefore pay for hashing once instead of
    /// once per op, while the resulting root is byte-identical to the
    /// sequential one.
    ///
    /// Returns the number of nodes rehashed — the per-round
    /// `merkle_nodes_rehashed` observability counter.
    pub fn apply_batch(&mut self, ops: Vec<TreeOp>) -> usize {
        if ops.is_empty() {
            return 0;
        }
        for op in ops {
            match op {
                TreeOp::Insert(pkey, vhash) => self.insert_with(pkey, vhash, true),
                TreeOp::Invalidate(pkey) => {
                    self.invalidate_with(&pkey, true);
                }
            }
        }
        self.root.as_deref_mut().map(rehash).unwrap_or(0)
    }

    /// [`MerkleKv::apply_batch`] over inserts only — the bulk-load shape
    /// (`open_at` recovery, preloads). Returns the number of nodes
    /// rehashed.
    pub fn insert_batch(&mut self, records: Vec<(ProofKey, Hash32)>) -> usize {
        self.apply_batch(
            records
                .into_iter()
                .map(|(pkey, vhash)| TreeOp::Insert(pkey, vhash))
                .collect(),
        )
    }

    /// Deterministic compaction rule shared by SP and DO mirror: rebuild
    /// (dropping tombstones) once tombstones exceed half the live set.
    /// Shape balance itself is maintained incrementally by the scapegoat
    /// joins in [`Node::balanced_join`].
    fn maybe_rebalance(&mut self, defer: bool) {
        if self.tombstones > (self.live / 2).max(64) {
            self.rebuild_with(defer);
        }
    }

    /// Rebuilds a balanced tree from the live records, dropping tombstones.
    pub fn rebuild(&mut self) {
        self.rebuild_with(false);
    }

    fn rebuild_with(&mut self, defer: bool) {
        let mut records = Vec::with_capacity(self.live);
        if let Some(root) = &self.root {
            collect_live(root, &mut records);
        }
        self.root = build_balanced(&records, defer);
        self.live = records.len();
        self.tombstones = 0;
    }

    /// In-order live records, for tests and SP-side iteration.
    pub fn iter_live(&self) -> Vec<(ProofKey, Hash32)> {
        let mut out = Vec::with_capacity(self.live);
        if let Some(root) = &self.root {
            collect_live(root, &mut out);
        }
        out
    }

    /// Membership proof for a live key.
    pub fn prove(&self, pkey: &ProofKey) -> Option<MembershipProof> {
        let root = self.root.as_deref()?;
        let mut path = Vec::new();
        let mut node = root;
        loop {
            match node {
                Node::Leaf(l) => {
                    if l.pkey != *pkey || !l.valid {
                        return None;
                    }
                    path.reverse();
                    return Some(MembershipProof {
                        path,
                        leaf_pkey: l.pkey.clone(),
                        leaf_vhash: l.vhash,
                        leaf_valid: l.valid,
                    });
                }
                Node::Inner(i) => {
                    if *pkey <= *i.left.max() {
                        path.push(PathStep {
                            sibling: i.right.hash(),
                            sibling_is_left: false,
                        });
                        node = &i.left;
                    } else {
                        path.push(PathStep {
                            sibling: i.left.hash(),
                            sibling_is_left: true,
                        });
                        node = &i.right;
                    }
                }
            }
        }
    }

    /// Range proof over `[lo, hi]` (by full [`ProofKey`] order): a pruned
    /// tree revealing every leaf in range plus one boundary leaf on each
    /// side, with everything else collapsed to opaque digests.
    pub fn prove_range(&self, lo: &ProofKey, hi: &ProofKey) -> RangeProof {
        let Some(root) = self.root.as_deref() else {
            return RangeProof::empty();
        };
        // Extend the range to the immediate neighbours so the verifier can
        // check completeness (the paper's boundary records, Appendix B.2.2).
        let pred = find_predecessor(root, lo);
        let succ = find_successor(root, hi);
        let lo_ext = pred.unwrap_or_else(|| root.min().clone());
        let hi_ext = succ.unwrap_or_else(|| root.max().clone());
        RangeProof {
            tree: Some(prune(root, &lo_ext, &hi_ext)),
        }
    }

    /// Maximum leaf depth (proof length); exposed for gas modelling and the
    /// rebalance tests.
    pub fn depth(&self) -> usize {
        fn d(node: &Node) -> usize {
            match node {
                Node::Leaf(_) => 1,
                Node::Inner(i) => 1 + d(&i.left).max(d(&i.right)),
            }
        }
        self.root.as_deref().map(d).unwrap_or(0)
    }
}

/// One mutation in a deferred-hash [`MerkleKv::apply_batch`] round: the
/// batch analog of [`MerkleKv::insert`] / [`MerkleKv::invalidate`].
#[derive(Clone, Debug)]
pub enum TreeOp {
    /// Insert the key or update it in place (reviving a tombstone).
    Insert(ProofKey, Hash32),
    /// Tombstone the key (the paper's "mark invalid").
    Invalidate(ProofKey),
}

enum InsertOutcome {
    Updated,
    Revived,
    Grafted,
}

#[allow(clippy::boxed_local)] // tree nodes live boxed; unboxing here just re-boxes
fn insert_rec(
    node: Box<Node>,
    pkey: ProofKey,
    vhash: Hash32,
    defer: bool,
) -> (Box<Node>, InsertOutcome) {
    match *node {
        Node::Leaf(mut l) => {
            if l.pkey == pkey {
                let outcome = if l.valid {
                    InsertOutcome::Updated
                } else {
                    InsertOutcome::Revived
                };
                l.vhash = vhash;
                l.valid = true;
                if defer {
                    l.dirty = true;
                } else {
                    l.hash = leaf_hash(&l.pkey, &l.vhash, true);
                }
                (Box::new(Node::Leaf(l)), outcome)
            } else {
                // Graft: split this leaf into an inner node holding both, in
                // key order (the paper's h9 = H(h4 ‖ h8) step).
                let new_leaf = Box::new(Node::new_leaf(pkey.clone(), vhash, defer));
                let old_leaf = Box::new(Node::Leaf(l));
                let joined = if *new_leaf.max() < *old_leaf.min() {
                    Node::join(new_leaf, old_leaf, defer)
                } else {
                    Node::join(old_leaf, new_leaf, defer)
                };
                (Box::new(joined), InsertOutcome::Grafted)
            }
        }
        Node::Inner(i) => {
            let (left, right, outcome) = if pkey <= *i.left.max() {
                let (l, o) = insert_rec(i.left, pkey, vhash, defer);
                (l, i.right, o)
            } else {
                let (r, o) = insert_rec(i.right, pkey, vhash, defer);
                (i.left, r, o)
            };
            (Box::new(Node::balanced_join(left, right, defer)), outcome)
        }
    }
}

#[allow(clippy::boxed_local)] // tree nodes live boxed; unboxing here just re-boxes
fn invalidate_rec(node: Box<Node>, pkey: &ProofKey, defer: bool) -> (Box<Node>, bool) {
    match *node {
        Node::Leaf(mut l) => {
            if l.pkey == *pkey && l.valid {
                l.valid = false;
                if defer {
                    l.dirty = true;
                } else {
                    l.hash = leaf_hash(&l.pkey, &l.vhash, false);
                }
                (Box::new(Node::Leaf(l)), true)
            } else {
                (Box::new(Node::Leaf(l)), false)
            }
        }
        Node::Inner(i) => {
            let (left, right, removed) = if *pkey <= *i.left.max() {
                let (l, r) = invalidate_rec(i.left, pkey, defer);
                (l, i.right, r)
            } else {
                let (r, rm) = invalidate_rec(i.right, pkey, defer);
                (i.left, r, rm)
            };
            (Box::new(Node::join(left, right, defer)), removed)
        }
    }
}

fn build_balanced(records: &[(ProofKey, Hash32)], defer: bool) -> Option<Box<Node>> {
    match records.len() {
        0 => None,
        1 => Some(Box::new(Node::new_leaf(
            records[0].0.clone(),
            records[0].1,
            defer,
        ))),
        n => {
            let mid = n / 2;
            // grub-lint: allow(panic) — n >= 2 so both halves are non-empty
            let left = build_balanced(&records[..mid], defer).expect("non-empty");
            // grub-lint: allow(panic) — n >= 2 so both halves are non-empty
            let right = build_balanced(&records[mid..], defer).expect("non-empty");
            Some(Box::new(Node::join(left, right, defer)))
        }
    }
}

/// The batch finalizer: recomputes every dirty hash bottom-up and returns
/// the number of nodes rehashed. Clean subtrees are skipped whole — a dirty
/// node's ancestors are always dirty (every deferred mutation rebuilds its
/// root-to-leaf path with deferred joins), so the early return never strands
/// a stale hash below a clean one.
fn rehash(node: &mut Node) -> usize {
    match node {
        Node::Leaf(l) => {
            if !l.dirty {
                return 0;
            }
            l.hash = leaf_hash(&l.pkey, &l.vhash, l.valid);
            l.dirty = false;
            1
        }
        Node::Inner(i) => {
            if !i.dirty {
                return 0;
            }
            let below = rehash(&mut i.left) + rehash(&mut i.right);
            i.hash = inner_hash(&i.left.hash(), &i.right.hash());
            i.dirty = false;
            below + 1
        }
    }
}

fn collect_live(node: &Node, out: &mut Vec<(ProofKey, Hash32)>) {
    match node {
        Node::Leaf(l) => {
            if l.valid {
                out.push((l.pkey.clone(), l.vhash));
            }
        }
        Node::Inner(i) => {
            collect_live(&i.left, out);
            collect_live(&i.right, out);
        }
    }
}

/// Largest leaf key strictly below `bound` (any validity), if one exists.
fn find_predecessor(node: &Node, bound: &ProofKey) -> Option<ProofKey> {
    match node {
        Node::Leaf(l) => (l.pkey < *bound).then(|| l.pkey.clone()),
        Node::Inner(i) => {
            if *i.right.min() < *bound {
                find_predecessor(&i.right, bound).or_else(|| find_predecessor(&i.left, bound))
            } else {
                find_predecessor(&i.left, bound)
            }
        }
    }
}

/// Smallest leaf key strictly above `bound` (any validity), if one exists.
fn find_successor(node: &Node, bound: &ProofKey) -> Option<ProofKey> {
    match node {
        Node::Leaf(l) => (l.pkey > *bound).then(|| l.pkey.clone()),
        Node::Inner(i) => {
            if *i.left.max() > *bound {
                find_successor(&i.left, bound).or_else(|| find_successor(&i.right, bound))
            } else {
                find_successor(&i.right, bound)
            }
        }
    }
}

fn prune(node: &Node, lo: &ProofKey, hi: &ProofKey) -> ProofNode {
    match node {
        Node::Leaf(l) => {
            if l.pkey < *lo || l.pkey > *hi {
                ProofNode::Opaque(l.hash)
            } else {
                ProofNode::Leaf {
                    pkey: l.pkey.clone(),
                    vhash: l.vhash,
                    valid: l.valid,
                }
            }
        }
        Node::Inner(i) => {
            if i.max < *lo || i.min > *hi {
                ProofNode::Opaque(i.hash)
            } else {
                ProofNode::Inner {
                    left: Box::new(prune(&i.left, lo, hi)),
                    right: Box::new(prune(&i.right, lo, hi)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{record_value_hash, ReplState};

    fn nr(key: &str) -> ProofKey {
        ProofKey::new(ReplState::NotReplicated, key.as_bytes().to_vec())
    }

    fn r(key: &str) -> ProofKey {
        ProofKey::new(ReplState::Replicated, key.as_bytes().to_vec())
    }

    fn vh(v: &str) -> Hash32 {
        record_value_hash(v.as_bytes())
    }

    #[test]
    fn empty_tree_has_sentinel_root() {
        let t = MerkleKv::new();
        assert_eq!(t.root(), empty_root());
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn insert_get_round_trip() {
        let mut t = MerkleKv::new();
        t.insert(nr("w"), vh("100"));
        t.insert(nr("y"), vh("200"));
        t.insert(r("x"), vh("300"));
        t.insert(r("z"), vh("400"));
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(&nr("w")), Some(vh("100")));
        assert_eq!(t.get(&r("z")), Some(vh("400")));
        assert_eq!(t.get(&nr("missing")), None);
        // Same key under the other state is a different record.
        assert_eq!(t.get(&r("w")), None);
    }

    #[test]
    fn in_order_leaves_are_sorted_regardless_of_insert_order() {
        let mut t = MerkleKv::new();
        for k in ["m", "c", "z", "a", "q", "f"] {
            t.insert(nr(k), vh(k));
        }
        t.insert(r("b"), vh("b"));
        let live = t.iter_live();
        let mut sorted = live.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(live, sorted);
        // NR group strictly precedes R group.
        assert_eq!(live.last().unwrap().0, r("b"));
    }

    #[test]
    fn update_in_place_changes_root_only() {
        let mut t = MerkleKv::new();
        t.insert(nr("a"), vh("1"));
        t.insert(nr("b"), vh("2"));
        let root1 = t.root();
        let len1 = t.len();
        t.insert(nr("a"), vh("1'"));
        assert_ne!(t.root(), root1);
        assert_eq!(t.len(), len1);
        assert_eq!(t.get(&nr("a")), Some(vh("1'")));
    }

    #[test]
    fn root_is_history_independent_after_rebuild() {
        // Two trees with the same live set have the same root after rebuild,
        // regardless of insertion order (needed for SP/DO root agreement).
        let mut t1 = MerkleKv::new();
        let mut t2 = MerkleKv::new();
        for k in ["a", "b", "c", "d"] {
            t1.insert(nr(k), vh(k));
        }
        for k in ["d", "b", "a", "c"] {
            t2.insert(nr(k), vh(k));
        }
        t1.rebuild();
        t2.rebuild();
        assert_eq!(t1.root(), t2.root());
    }

    #[test]
    fn invalidate_tombstones_and_revive() {
        let mut t = MerkleKv::new();
        t.insert(nr("a"), vh("1"));
        t.insert(nr("b"), vh("2"));
        assert!(t.invalidate(&nr("a")));
        assert!(!t.invalidate(&nr("a")), "already tombstoned");
        assert_eq!(t.get(&nr("a")), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.tombstone_count(), 1);
        // Re-inserting the key revives the tombstone in place.
        t.insert(nr("a"), vh("3"));
        assert_eq!(t.get(&nr("a")), Some(vh("3")));
        assert_eq!(t.tombstone_count(), 0);
    }

    #[test]
    fn relocation_changes_membership_under_both_states() {
        // The paper's R→NR transition: invalidate ⟨x,R⟩, graft ⟨x,NR⟩.
        let mut t = MerkleKv::new();
        t.insert(r("x"), vh("300"));
        t.insert(nr("w"), vh("100"));
        t.invalidate(&r("x"));
        t.insert(nr("x"), vh("310"));
        assert_eq!(t.get(&r("x")), None);
        assert_eq!(t.get(&nr("x")), Some(vh("310")));
    }

    #[test]
    fn from_sorted_matches_incremental_content() {
        let records: Vec<_> = (0..100)
            .map(|i| (nr(&format!("k{i:03}")), vh(&format!("v{i}"))))
            .collect();
        let bulk = MerkleKv::from_sorted(records.clone());
        let mut inc = MerkleKv::new();
        for (k, v) in records.iter().rev() {
            inc.insert(k.clone(), *v);
        }
        assert_eq!(bulk.iter_live(), inc.iter_live());
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn from_sorted_rejects_unsorted() {
        MerkleKv::from_sorted(vec![(nr("b"), vh("1")), (nr("a"), vh("2"))]);
    }

    #[test]
    fn sequential_appends_stay_logarithmic() {
        // BtcRelay-style append-only keys would degrade an unbalanced graft
        // chain to O(n) depth; the deterministic rebuild must prevent that.
        let mut t = MerkleKv::new();
        for i in 0..5000u32 {
            t.insert(nr(&format!("blk{i:08}")), vh(&i.to_string()));
        }
        assert_eq!(t.len(), 5000);
        assert!(
            t.depth() <= 4 * 13, // generous bound vs log2(5000) ≈ 12.3
            "depth {} is not logarithmic",
            t.depth()
        );
    }

    /// Replays `ops` sequentially into one tree and as a single batch into
    /// another, asserting byte-identical roots and bookkeeping.
    fn assert_batch_matches_sequential(ops: Vec<TreeOp>) {
        let mut seq = MerkleKv::new();
        for op in &ops {
            match op {
                TreeOp::Insert(k, v) => seq.insert(k.clone(), *v),
                TreeOp::Invalidate(k) => {
                    seq.invalidate(k);
                }
            }
        }
        let mut batch = MerkleKv::new();
        batch.apply_batch(ops);
        assert_eq!(batch.root(), seq.root(), "batch root != sequential root");
        assert_eq!(batch.len(), seq.len());
        assert_eq!(batch.tombstone_count(), seq.tombstone_count());
        assert_eq!(
            batch.depth(),
            seq.depth(),
            "batch shape != sequential shape"
        );
    }

    #[test]
    fn batch_root_equals_sequential_root() {
        let ops: Vec<TreeOp> = (0..200u32)
            .map(|i| TreeOp::Insert(nr(&format!("k{:03}", i % 60)), vh(&i.to_string())))
            .chain((0..50u32).map(|i| TreeOp::Invalidate(nr(&format!("k{:03}", i % 60)))))
            .collect();
        assert_batch_matches_sequential(ops);
    }

    #[test]
    fn batch_matches_sequential_through_compaction() {
        // Enough tombstones to trip the deterministic rebuild mid-batch:
        // the deferred path must compact at the exact same op boundary.
        let mut ops: Vec<TreeOp> = (0..200u32)
            .map(|i| TreeOp::Insert(nr(&format!("k{i:03}")), vh(&i.to_string())))
            .collect();
        ops.extend((0..130u32).map(|i| TreeOp::Invalidate(nr(&format!("k{i:03}")))));
        ops.extend((0..40u32).map(|i| TreeOp::Insert(nr(&format!("k{i:03}")), vh("revived"))));
        assert_batch_matches_sequential(ops);
    }

    #[test]
    fn batch_relocation_mix_matches_sequential() {
        // The provider's Relocate shape: invalidate under one state, insert
        // under the other, interleaved with plain writes.
        let mut ops = Vec::new();
        for i in 0..80u32 {
            let key = format!("rec{:02}", i % 20);
            ops.push(TreeOp::Insert(nr(&key), vh(&i.to_string())));
            if i % 3 == 0 {
                ops.push(TreeOp::Invalidate(nr(&key)));
                ops.push(TreeOp::Insert(r(&key), vh(&i.to_string())));
            }
        }
        assert_batch_matches_sequential(ops);
    }

    #[test]
    fn batch_counts_rehashed_nodes() {
        let mut t = MerkleKv::new();
        t.insert_batch(
            (0..64u32)
                .map(|i| (nr(&format!("k{i:02}")), vh("v")))
                .collect(),
        );
        let root_before = t.root();
        // A single in-place update dirties one root-to-leaf path; with 64
        // balanced leaves that is well under the whole tree (127 nodes).
        let rehashed = t.apply_batch(vec![TreeOp::Insert(nr("k00"), vh("v'"))]);
        assert!(rehashed >= 2, "path must be rehashed, got {rehashed}");
        assert!(
            rehashed <= 8,
            "rehash must not touch the whole tree: {rehashed}"
        );
        assert_ne!(t.root(), root_before);
        // An empty batch touches nothing.
        assert_eq!(t.apply_batch(Vec::new()), 0);
    }

    #[test]
    fn batch_shares_path_hashing_across_ops() {
        let mut t = MerkleKv::new();
        t.insert_batch(
            (0..64u32)
                .map(|i| (nr(&format!("k{i:02}")), vh("v")))
                .collect(),
        );
        // 32 updates as one batch: every node is rehashed at most once, so
        // the count is bounded by the whole tree, not ops × path length.
        let rehashed = t.apply_batch(
            (0..32u32)
                .map(|i| TreeOp::Insert(nr(&format!("k{i:02}")), vh("v'")))
                .collect(),
        );
        assert!(
            rehashed < 32 * t.depth(),
            "shared paths must be rehashed once: {rehashed}"
        );
    }

    #[test]
    fn depth_bound_under_churn() {
        let mut t = MerkleKv::new();
        for i in 0..2000u32 {
            t.insert(nr(&format!("k{:04}", i % 500)), vh(&i.to_string()));
            if i % 3 == 0 {
                t.invalidate(&nr(&format!("k{:04}", (i / 2) % 500)));
            }
        }
        assert!(t.depth() <= 40, "depth {}", t.depth());
    }
}
