//! Trace statistics matching the paper's workload tables and figures.

use std::collections::BTreeMap;

use crate::Trace;

/// Distribution of writes by the number of reads that follow them before the
/// next write — the quantity tabulated in the paper's Table 1 and Table 6
/// and plotted in Figures 2 and 16a.
///
/// Scans count as one read of their start key's feed.
pub fn reads_after_write_distribution(trace: &Trace) -> BTreeMap<usize, usize> {
    let mut dist = BTreeMap::new();
    let series = reads_after_write_series(trace);
    for reads in series {
        *dist.entry(reads).or_insert(0) += 1;
    }
    dist
}

/// Per-write series of reads-following counts (the Y values of Figure 2).
///
/// Consecutive writes (a batch) are attributed the same following-read count
/// only for the final write of the batch; earlier writes in the batch get 0,
/// matching how the paper's X axis indexes every `poke()`.
pub fn reads_after_write_series(trace: &Trace) -> Vec<usize> {
    let mut series = Vec::new();
    let mut current: Option<usize> = None;
    for op in &trace.ops {
        if op.is_write() {
            if let Some(count) = current.take() {
                series.push(count);
            }
            current = Some(0);
        } else if let Some(count) = current.as_mut() {
            *count += 1;
        }
    }
    if let Some(count) = current {
        series.push(count);
    }
    series
}

/// Renders the distribution as percentage rows, like the paper's tables.
pub fn distribution_rows(dist: &BTreeMap<usize, usize>) -> Vec<(usize, f64)> {
    let total: usize = dist.values().sum();
    if total == 0 {
        return Vec::new();
    }
    dist.iter()
        .map(|(&reads, &count)| (reads, 100.0 * count as f64 / total as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, ValueSpec};

    fn w(key: &str) -> Op {
        Op::Write {
            key: key.into(),
            value: ValueSpec::new(8, 0),
        }
    }

    fn r(key: &str) -> Op {
        Op::Read { key: key.into() }
    }

    #[test]
    fn series_counts_reads_between_writes() {
        let trace: Trace = vec![w("k"), r("k"), r("k"), w("k"), w("k"), r("k")]
            .into_iter()
            .collect();
        assert_eq!(reads_after_write_series(&trace), vec![2, 0, 1]);
    }

    #[test]
    fn distribution_aggregates_series() {
        let trace: Trace = vec![w("k"), r("k"), w("k"), r("k"), w("k")]
            .into_iter()
            .collect();
        let dist = reads_after_write_distribution(&trace);
        assert_eq!(dist.get(&1), Some(&2));
        assert_eq!(dist.get(&0), Some(&1));
    }

    #[test]
    fn rows_are_percentages() {
        let trace: Trace = vec![w("k"), w("k"), r("k")].into_iter().collect();
        let rows = distribution_rows(&reads_after_write_distribution(&trace));
        let total: f64 = rows.iter().map(|(_, pct)| pct).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_empty() {
        let trace = Trace::new();
        assert!(reads_after_write_series(&trace).is_empty());
        assert!(distribution_rows(&reads_after_write_distribution(&trace)).is_empty());
    }

    #[test]
    fn leading_reads_before_any_write_are_ignored() {
        let trace: Trace = vec![r("k"), r("k"), w("k"), r("k")].into_iter().collect();
        assert_eq!(reads_after_write_series(&trace), vec![1]);
    }
}
