//! Repeating read/write-ratio workloads (paper §2.3 and §5.1).
//!
//! Each workload is "a repeated sequence of X1 writes followed by X2 reads"
//! under a single key. Ratios below one mean several writes per read (the
//! paper sweeps 0, 0.125, 0.5, 1, 4, 16, 64, 256).
//!
//! Both generators here are *sources first*: [`RatioWorkload::source`] and
//! [`MultiKeyRatio::source`] stream their operations lazily under the
//! [`OpSource`] contract, and the `generate()` vector APIs are thin
//! [`Trace::from_source`] adapters over them — so streamed and materialized
//! runs are byte-identical by construction.

use crate::source::OpSource;
use crate::{Op, Trace, ValueSpec};

/// Generator for fixed-ratio single-key workloads.
#[derive(Clone, Debug)]
pub struct RatioWorkload {
    key: String,
    ratio: f64,
    value_len: usize,
    seed: u64,
}

impl RatioWorkload {
    /// A ratio workload on `key` with `ratio` reads per write and one-word
    /// (32-byte) values.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or not finite.
    pub fn new(key: impl Into<String>, ratio: f64) -> Self {
        assert!(ratio.is_finite() && ratio >= 0.0, "ratio must be ≥ 0");
        RatioWorkload {
            key: key.into(),
            ratio,
            value_len: 32,
            seed: 1,
        }
    }

    /// Sets the record size in bytes (paper Figure 8b sweeps 32–512).
    pub fn value_len(mut self, len: usize) -> Self {
        self.value_len = len;
        self
    }

    /// Sets the value seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The `(writes, reads)` shape of one repetition: ratio ≥ 1 is one write
    /// followed by `ratio` reads; ratio < 1 is `1/ratio` writes then one
    /// read; ratio 0 is write-only.
    pub fn cycle_shape(&self) -> (usize, usize) {
        if self.ratio == 0.0 {
            (1, 0)
        } else if self.ratio >= 1.0 {
            (1, self.ratio.round() as usize)
        } else {
            ((1.0 / self.ratio).round() as usize, 1)
        }
    }

    /// Generates `cycles` repetitions (materialized view of
    /// [`RatioWorkload::source`]).
    pub fn generate(&self, cycles: usize) -> Trace {
        Trace::from_source(&mut self.source(cycles))
    }

    /// Streams `cycles` repetitions lazily: O(1) state regardless of trace
    /// length.
    pub fn source(&self, cycles: usize) -> RatioSource {
        RatioSource {
            workload: self.clone(),
            cycles,
            cycle: 0,
            pos: 0,
            version: 0,
        }
    }
}

/// The streaming form of [`RatioWorkload`]: one `(cycle, position)` cursor
/// and a write-version counter — constant memory for any trace length.
#[derive(Clone, Debug)]
pub struct RatioSource {
    workload: RatioWorkload,
    cycles: usize,
    cycle: usize,
    pos: usize,
    version: u64,
}

impl OpSource for RatioSource {
    fn next_op(&mut self) -> Option<Op> {
        let (writes, reads) = self.workload.cycle_shape();
        if self.cycle >= self.cycles {
            return None;
        }
        let op = if self.pos < writes {
            self.version += 1;
            Op::Write {
                key: self.workload.key.clone(),
                value: ValueSpec::new(
                    self.workload.value_len,
                    self.workload.seed.wrapping_add(self.version),
                ),
            }
        } else {
            Op::Read {
                key: self.workload.key.clone(),
            }
        };
        self.pos += 1;
        if self.pos == writes + reads {
            self.pos = 0;
            self.cycle += 1;
        }
        Some(op)
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let (writes, reads) = self.workload.cycle_shape();
        let per_cycle = writes + reads;
        let total = self.cycles * per_cycle;
        let emitted = self.cycle * per_cycle + self.pos;
        let n = total - emitted;
        (n, Some(n))
    }

    fn reset(&mut self) {
        self.cycle = 0;
        self.pos = 0;
        self.version = 0;
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

/// A multi-key ratio mix: each key in a set runs its *own* read/write
/// ratio, and the merged stream interleaves them one operation per key per
/// turn (keys whose cycles complete drop out of the rotation once they
/// finish their budget).
///
/// This is the first workload dimension native to the ingestion layer: the
/// per-key cycle cursors are the entire state, so a mix over thousands of
/// keys streams at O(keys) memory where the vector API would materialize
/// the full cross-product.
#[derive(Clone, Debug)]
pub struct MultiKeyRatio {
    entries: Vec<(String, f64)>,
    value_len: usize,
    seed: u64,
}

impl MultiKeyRatio {
    /// A mix over `(key, ratio)` pairs with 32-byte values.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any ratio is negative/non-finite.
    pub fn new(entries: Vec<(String, f64)>) -> Self {
        assert!(!entries.is_empty(), "need at least one key");
        for (key, ratio) in &entries {
            assert!(
                ratio.is_finite() && *ratio >= 0.0,
                "ratio for {key} must be ≥ 0"
            );
        }
        MultiKeyRatio {
            entries,
            value_len: 32,
            seed: 1,
        }
    }

    /// Sets the record size in bytes.
    pub fn value_len(mut self, len: usize) -> Self {
        self.value_len = len;
        self
    }

    /// Sets the value seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Streams `cycles` full cycles *per key*, interleaved round-robin one
    /// op per live key.
    pub fn source(&self, cycles: usize) -> MultiKeyRatioSource {
        let lanes = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, (key, ratio))| {
                RatioWorkload::new(key.clone(), *ratio)
                    .value_len(self.value_len)
                    // Distinct per-key value streams: offset the seed by the
                    // lane index so same-length values never collide.
                    .seed(self.seed.wrapping_add((i as u64) << 32))
                    .source(cycles)
            })
            .collect();
        MultiKeyRatioSource { lanes, turn: 0 }
    }

    /// Materialized view of [`MultiKeyRatio::source`].
    pub fn generate(&self, cycles: usize) -> Trace {
        Trace::from_source(&mut self.source(cycles))
    }
}

/// The streaming form of [`MultiKeyRatio`]: one [`RatioSource`] lane per
/// key plus a rotation cursor.
#[derive(Clone, Debug)]
pub struct MultiKeyRatioSource {
    lanes: Vec<RatioSource>,
    turn: usize,
}

impl OpSource for MultiKeyRatioSource {
    fn next_op(&mut self) -> Option<Op> {
        // One full rotation is enough: a lane either yields or is exhausted.
        for _ in 0..self.lanes.len() {
            let lane = self.turn % self.lanes.len();
            self.turn = (self.turn + 1) % self.lanes.len();
            if let Some(op) = self.lanes[lane].next_op() {
                return Some(op);
            }
        }
        None
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.lanes.iter().map(|l| l.remaining_hint().0).sum();
        (n, Some(n))
    }

    fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.reset();
        }
        self.turn = 0;
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_four_is_one_write_four_reads() {
        let t = RatioWorkload::new("k", 4.0).generate(3);
        assert_eq!(t.write_count(), 3);
        assert_eq!(t.read_count(), 12);
        assert!(t.ops[0].is_write());
        assert!(!t.ops[1].is_write());
    }

    #[test]
    fn fractional_ratio_is_many_writes_per_read() {
        let t = RatioWorkload::new("k", 0.125).generate(2);
        assert_eq!(t.write_count(), 16, "8 writes per read");
        assert_eq!(t.read_count(), 2);
    }

    #[test]
    fn zero_ratio_is_write_only() {
        let t = RatioWorkload::new("k", 0.0).generate(5);
        assert_eq!(t.write_count(), 5);
        assert_eq!(t.read_count(), 0);
    }

    #[test]
    fn record_size_is_respected() {
        let t = RatioWorkload::new("k", 1.0).value_len(512).generate(1);
        match &t.ops[0] {
            Op::Write { value, .. } => assert_eq!(value.len, 512),
            _ => panic!("first op must be a write"),
        }
    }

    #[test]
    fn successive_writes_have_distinct_values() {
        let t = RatioWorkload::new("k", 0.5).generate(1);
        let values: Vec<_> = t
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Write { value, .. } => Some(value.materialize()),
                _ => None,
            })
            .collect();
        assert_eq!(values.len(), 2);
        assert_ne!(values[0], values[1]);
    }

    #[test]
    #[should_panic(expected = "ratio must be ≥ 0")]
    fn negative_ratio_rejected() {
        RatioWorkload::new("k", -1.0);
    }

    #[test]
    fn source_streams_exactly_what_generate_materializes() {
        for ratio in [0.0, 0.125, 1.0, 4.0] {
            let w = RatioWorkload::new("k", ratio).seed(9);
            let mut source = w.source(7);
            let (lo, hi) = source.remaining_hint();
            assert_eq!(Some(lo), hi, "ratio sources know their exact length");
            let streamed = Trace::from_source(&mut source);
            assert_eq!(streamed, w.generate(7));
            assert_eq!(streamed.ops.len(), lo);
            source.reset();
            assert_eq!(Trace::from_source(&mut source), streamed, "replay");
        }
    }

    #[test]
    fn multi_key_mix_interleaves_per_key_ratios() {
        let mix = MultiKeyRatio::new(vec![
            ("hot".into(), 4.0),
            ("cold".into(), 0.0),
            ("warm".into(), 1.0),
        ]);
        let trace = mix.generate(4);
        // Per key: hot = 4×(1w+4r) = 20 ops, cold = 4×1w, warm = 4×2.
        assert_eq!(trace.ops.len(), 20 + 4 + 8);
        assert_eq!(trace.write_count(), 4 + 4 + 4);
        // The stream interleaves: the first three ops touch three keys.
        let first: Vec<&str> = trace.ops[..3].iter().map(|o| o.key()).collect();
        assert_eq!(first, vec!["hot", "cold", "warm"]);
        // Streamed == materialized, and replay is identical.
        let mut source = mix.source(4);
        assert_eq!(Trace::from_source(&mut source), trace);
        source.reset();
        assert_eq!(Trace::from_source(&mut source), trace);
    }

    #[test]
    fn multi_key_mix_value_streams_are_distinct_per_key() {
        let mix = MultiKeyRatio::new(vec![("a".into(), 0.0), ("b".into(), 0.0)]);
        let trace = mix.generate(1);
        let values: Vec<Vec<u8>> = trace
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Write { value, .. } => Some(value.materialize()),
                _ => None,
            })
            .collect();
        assert_eq!(values.len(), 2);
        assert_ne!(values[0], values[1], "per-lane seeds must differ");
    }

    #[test]
    #[should_panic(expected = "need at least one key")]
    fn empty_mix_rejected() {
        MultiKeyRatio::new(Vec::new());
    }
}
