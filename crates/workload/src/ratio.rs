//! Repeating read/write-ratio workloads (paper §2.3 and §5.1).
//!
//! Each workload is "a repeated sequence of X1 writes followed by X2 reads"
//! under a single key. Ratios below one mean several writes per read (the
//! paper sweeps 0, 0.125, 0.5, 1, 4, 16, 64, 256).

use crate::{Op, Trace, ValueSpec};

/// Generator for fixed-ratio single-key workloads.
#[derive(Clone, Debug)]
pub struct RatioWorkload {
    key: String,
    ratio: f64,
    value_len: usize,
    seed: u64,
}

impl RatioWorkload {
    /// A ratio workload on `key` with `ratio` reads per write and one-word
    /// (32-byte) values.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or not finite.
    pub fn new(key: impl Into<String>, ratio: f64) -> Self {
        assert!(ratio.is_finite() && ratio >= 0.0, "ratio must be ≥ 0");
        RatioWorkload {
            key: key.into(),
            ratio,
            value_len: 32,
            seed: 1,
        }
    }

    /// Sets the record size in bytes (paper Figure 8b sweeps 32–512).
    pub fn value_len(mut self, len: usize) -> Self {
        self.value_len = len;
        self
    }

    /// Sets the value seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The `(writes, reads)` shape of one repetition: ratio ≥ 1 is one write
    /// followed by `ratio` reads; ratio < 1 is `1/ratio` writes then one
    /// read; ratio 0 is write-only.
    pub fn cycle_shape(&self) -> (usize, usize) {
        if self.ratio == 0.0 {
            (1, 0)
        } else if self.ratio >= 1.0 {
            (1, self.ratio.round() as usize)
        } else {
            ((1.0 / self.ratio).round() as usize, 1)
        }
    }

    /// Generates `cycles` repetitions.
    pub fn generate(&self, cycles: usize) -> Trace {
        let (writes, reads) = self.cycle_shape();
        let mut ops = Vec::with_capacity(cycles * (writes + reads));
        let mut version = 0u64;
        for _ in 0..cycles {
            for _ in 0..writes {
                version += 1;
                ops.push(Op::Write {
                    key: self.key.clone(),
                    value: ValueSpec::new(self.value_len, self.seed.wrapping_add(version)),
                });
            }
            for _ in 0..reads {
                ops.push(Op::Read {
                    key: self.key.clone(),
                });
            }
        }
        Trace { ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_four_is_one_write_four_reads() {
        let t = RatioWorkload::new("k", 4.0).generate(3);
        assert_eq!(t.write_count(), 3);
        assert_eq!(t.read_count(), 12);
        assert!(t.ops[0].is_write());
        assert!(!t.ops[1].is_write());
    }

    #[test]
    fn fractional_ratio_is_many_writes_per_read() {
        let t = RatioWorkload::new("k", 0.125).generate(2);
        assert_eq!(t.write_count(), 16, "8 writes per read");
        assert_eq!(t.read_count(), 2);
    }

    #[test]
    fn zero_ratio_is_write_only() {
        let t = RatioWorkload::new("k", 0.0).generate(5);
        assert_eq!(t.write_count(), 5);
        assert_eq!(t.read_count(), 0);
    }

    #[test]
    fn record_size_is_respected() {
        let t = RatioWorkload::new("k", 1.0).value_len(512).generate(1);
        match &t.ops[0] {
            Op::Write { value, .. } => assert_eq!(value.len, 512),
            _ => panic!("first op must be a write"),
        }
    }

    #[test]
    fn successive_writes_have_distinct_values() {
        let t = RatioWorkload::new("k", 0.5).generate(1);
        let values: Vec<_> = t
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Write { value, .. } => Some(value.materialize()),
                _ => None,
            })
            .collect();
        assert_eq!(values.len(), 2);
        assert_ne!(values[0], values[1]);
    }

    #[test]
    #[should_panic(expected = "ratio must be ≥ 0")]
    fn negative_ratio_rejected() {
        RatioWorkload::new("k", -1.0);
    }
}
