//! Synthesizer for the BtcRelay side-chain feed workload (paper §4.2,
//! Appendix D).
//!
//! The paper joins the Bitcoin block-production sequence with the mint/burn
//! call traces of four Bitcoin-pegged ERC-20 tokens, yielding a block-read
//! workload with the distribution of Table 6 (93.7% of blocks are never
//! read) and two structural properties the synthesizer reproduces:
//!
//! * each mint/burn reads **six consecutive blocks** (SPV confirmation
//!   depth), so reads arrive in 6-block bursts;
//! * most reads occur about four hours (~24 blocks) after the block is
//!   written (Figure 16b).
//!
//! Keys are append-only (`blk%08d`) — unlike the oracle trace, writes never
//! overwrite existing records.

use std::collections::VecDeque;

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::source::OpSource;
use crate::{Op, Trace, ValueSpec};

/// Paper Table 6: `(reads-after-write, weight out of 10 000)`.
pub const TABLE6_DISTRIBUTION: &[(usize, u32)] = &[
    (0, 9370),
    (1, 530),
    (2, 77),
    (3, 15),
    (4, 5),
    (5, 4),
    (6, 2),
    (7, 1),
];

/// Number of consecutive blocks one mint/burn verification reads.
pub const SPV_CONFIRMATIONS: usize = 6;

/// Builder for synthetic BtcRelay traces.
#[derive(Clone, Debug)]
pub struct BtcRelayTrace {
    blocks: usize,
    header_len: usize,
    read_delay_blocks: usize,
    read_intensity: Vec<(std::ops::Range<usize>, f64)>,
    seed: u64,
}

impl Default for BtcRelayTrace {
    fn default() -> Self {
        BtcRelayTrace {
            blocks: 2_000,
            header_len: 80, // Bitcoin block header size
            read_delay_blocks: 24,
            read_intensity: Vec::new(),
            seed: 0xB7C0_11E7,
        }
    }
}

impl BtcRelayTrace {
    /// Default trace of 2 000 Bitcoin blocks.
    pub fn new() -> Self {
        BtcRelayTrace::default()
    }

    /// Number of Bitcoin blocks (writes).
    pub fn blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }

    /// Header record size in bytes (80 for real Bitcoin headers).
    pub fn header_len(mut self, len: usize) -> Self {
        self.header_len = len;
        self
    }

    /// Blocks of delay before reads arrive (Figure 16b's 4-hour mode ≈ 24
    /// blocks at 10 min/block).
    pub fn read_delay_blocks(mut self, blocks: usize) -> Self {
        self.read_delay_blocks = blocks;
        self
    }

    /// Multiplies the read-burst probability within a block-index range —
    /// used by the Figure 6 experiment whose trace turns read-intensive
    /// after epoch 25.
    pub fn boost_reads(mut self, range: std::ops::Range<usize>, multiplier: f64) -> Self {
        self.read_intensity.push((range, multiplier));
        self
    }

    /// Deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Key for block height `h`.
    pub fn block_key(h: usize) -> String {
        format!("blk{h:08}")
    }

    /// Samples the trace (materialized view of [`BtcRelayTrace::source`]).
    pub fn generate(&self) -> Trace {
        Trace::from_source(&mut self.source())
    }

    /// Streams the trace lazily. The pending-burst schedule is a ring
    /// buffer of `read_delay_blocks + 1` slots — bursts are due exactly
    /// `read_delay_blocks` after their sampled block — so resident state is
    /// O(delay), independent of `blocks`.
    pub fn source(&self) -> BtcRelaySource {
        let weights: Vec<u32> = TABLE6_DISTRIBUTION.iter().map(|&(_, w)| w).collect();
        BtcRelaySource {
            params: self.clone(),
            rng: StdRng::seed_from_u64(self.seed),
            // grub-lint: allow(panic) — TABLE6_DISTRIBUTION is a static table with positive weights
            index: WeightedIndex::new(&weights).expect("static weights are valid"),
            pending: VecDeque::from(vec![0; self.read_delay_blocks + 1]),
            height: 0,
            reads_left: 0,
            run_len: 0,
            oldest: 0,
        }
    }
}

/// The streaming form of [`BtcRelayTrace`]: per block, one header write,
/// then the read bursts due at that height — with the burst schedule kept
/// in an O(delay) ring buffer instead of an O(blocks) vector.
#[derive(Clone, Debug)]
pub struct BtcRelaySource {
    params: BtcRelayTrace,
    rng: StdRng,
    index: WeightedIndex,
    /// `pending[d]` = bursts due `d` blocks from the current height; slot 0
    /// is popped as each block's write is emitted.
    pending: VecDeque<usize>,
    /// Blocks whose writes have been emitted.
    height: usize,
    /// Reads still to emit for the just-written block's due bursts.
    reads_left: usize,
    /// Heights per burst at the current block (≤ [`SPV_CONFIRMATIONS`],
    /// shorter near genesis).
    run_len: usize,
    /// First height of the current block's burst run.
    oldest: usize,
}

impl OpSource for BtcRelaySource {
    fn next_op(&mut self) -> Option<Op> {
        if self.reads_left > 0 {
            // Bursts at one height all read the same oldest..=newest run,
            // so a single countdown cycling through the run suffices.
            let total_before = self.reads_left;
            self.reads_left -= 1;
            let pos_in_run = (total_before - 1) % self.run_len;
            // Reads emit oldest-first within each burst.
            let offset = self.run_len - 1 - pos_in_run;
            return Some(Op::Read {
                key: BtcRelayTrace::block_key(self.oldest + offset),
            });
        }
        if self.height >= self.params.blocks {
            return None;
        }
        let h = self.height;
        self.height += 1;
        let op = Op::Write {
            key: BtcRelayTrace::block_key(h),
            value: ValueSpec::new(self.params.header_len, self.params.seed ^ h as u64),
        };
        // Sample how many bursts will target this block, scaled by any
        // intensity boost covering it.
        let mut bursts = TABLE6_DISTRIBUTION[self.index.sample(&mut self.rng)].0 as f64;
        for (range, mult) in &self.params.read_intensity {
            if range.contains(&h) {
                bursts *= mult;
            }
        }
        let bursts = bursts.floor() as usize
            + usize::from(self.rng.gen_bool((bursts.fract()).clamp(0.0, 1.0)));
        // Schedule at the delay offset, then pop the bursts due *now* —
        // with delay 0 that slot is the one just incremented, matching the
        // materialized schedule's same-block emission.
        *self
            .pending
            .get_mut(self.params.read_delay_blocks)
            // grub-lint: allow(panic) — the ring is built with delay+1 slots and every pop is paired with a push
            .expect("ring holds delay+1 slots") += bursts;
        // grub-lint: allow(panic) — the ring is built with delay+1 slots and every pop is paired with a push
        let due = self.pending.pop_front().expect("ring is never empty");
        self.pending.push_back(0);
        let newest = h;
        self.oldest = newest.saturating_sub(SPV_CONFIRMATIONS - 1);
        self.run_len = newest - self.oldest + 1;
        self.reads_left = due * self.run_len;
        Some(op)
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        // Header writes are deterministic; burst counts are sampled, so no
        // upper bound.
        let writes_left = self.params.blocks - self.height.min(self.params.blocks);
        (writes_left + self.reads_left, None)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed);
        self.pending = VecDeque::from(vec![0; self.params.read_delay_blocks + 1]);
        self.height = 0;
        self.reads_left = 0;
        self.run_len = 0;
        self.oldest = 0;
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            BtcRelayTrace::new().generate(),
            BtcRelayTrace::new().generate()
        );
    }

    #[test]
    fn source_matches_generate_and_replays() {
        let builder = BtcRelayTrace::new()
            .blocks(800)
            .read_delay_blocks(24)
            .boost_reads(300..600, 4.0)
            .seed(21);
        let mut source = builder.source();
        let streamed = Trace::from_source(&mut source);
        assert_eq!(streamed, builder.generate());
        source.reset();
        assert_eq!(Trace::from_source(&mut source), streamed, "replay");
        // The ring buffer stays O(delay) no matter the block count.
        assert_eq!(builder.source().pending.len(), 25);
    }

    #[test]
    fn zero_delay_reads_land_in_their_own_block() {
        let builder = BtcRelayTrace::new()
            .blocks(400)
            .read_delay_blocks(0)
            .seed(3);
        assert_eq!(
            Trace::from_source(&mut builder.source()),
            builder.generate()
        );
    }

    #[test]
    fn writes_are_append_only() {
        let t = BtcRelayTrace::new().blocks(500).generate();
        let mut seen = std::collections::HashSet::new();
        for op in &t.ops {
            if let Op::Write { key, .. } = op {
                assert!(seen.insert(key.clone()), "block {key} written twice");
            }
        }
        assert_eq!(t.write_count(), 500);
    }

    #[test]
    fn reads_come_in_spv_bursts() {
        let t = BtcRelayTrace::new().blocks(2000).generate();
        // Consecutive reads form runs that are multiples of 6 blocks.
        let mut run = 0usize;
        let mut runs = Vec::new();
        for op in &t.ops {
            if op.is_write() {
                if run > 0 {
                    runs.push(run);
                }
                run = 0;
            } else {
                run += 1;
            }
        }
        assert!(!runs.is_empty(), "trace must contain reads");
        assert!(
            runs.iter().all(|r| r % SPV_CONFIRMATIONS == 0),
            "every read run is a whole number of 6-block bursts: {runs:?}"
        );
    }

    #[test]
    fn mostly_unread_blocks_as_in_table6() {
        let t = BtcRelayTrace::new().blocks(5000).generate();
        let mut read_keys = std::collections::HashSet::new();
        for op in &t.ops {
            if !op.is_write() {
                read_keys.insert(op.key().to_owned());
            }
        }
        let read_fraction = read_keys.len() as f64 / 5000.0;
        // Table 6: ~6.3% of blocks receive a direct burst, but each burst
        // covers 6 blocks, so the touched fraction is higher; it must still
        // leave the large majority untouched.
        assert!(
            read_fraction < 0.5,
            "touched fraction {read_fraction} should stay well below half"
        );
    }

    #[test]
    fn boost_creates_read_intensive_phase() {
        let quiet = BtcRelayTrace::new().blocks(1000).generate();
        let boosted = BtcRelayTrace::new()
            .blocks(1000)
            .boost_reads(500..1000, 10.0)
            .generate();
        assert!(boosted.read_count() > quiet.read_count() * 3);
    }

    #[test]
    fn header_len_flows_into_values() {
        let t = BtcRelayTrace::new().blocks(10).header_len(80).generate();
        match &t.ops[0] {
            Op::Write { value, .. } => assert_eq!(value.len, 80),
            _ => panic!("first op is a write"),
        }
    }
}
