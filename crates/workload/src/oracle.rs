//! Synthesizer for the `ethPriceOracle` 5-day call trace (paper §2.1, §4.1).
//!
//! The paper collected `poke()` (price update) / `peek()` (price read) calls
//! from the MakerDAO medianizer between 2018-04-25 and 2018-04-30 and
//! published the marginal distribution of reads following each write
//! (Table 1) and the burst pattern (Figure 2). The raw trace is not
//! redistributable, so this module samples a trace from exactly that
//! distribution — which is what GRuB's decision algorithms react to — with a
//! deterministic seed.
//!
//! Values are Ether-style prices from a geometric random walk, encoded into
//! fixed-width records.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::source::OpSource;
use crate::{Op, Trace, ValueSpec};

/// Paper Table 1: `(reads-after-write, per-mille weight)`.
///
/// Percentages are converted to integer weights out of 10 000 (the table's
/// two-decimal precision).
pub const TABLE1_DISTRIBUTION: &[(usize, u32)] = &[
    (0, 7040),
    (1, 1600),
    (2, 646),
    (3, 291),
    (4, 152),
    (5, 76),
    (6, 63),
    (7, 25),
    (8, 13),
    (9, 25),
    (10, 13),
    (12, 13),
    (13, 25),
    (17, 13),
    (20, 13),
];

/// Builder for synthetic oracle traces.
#[derive(Clone, Debug)]
pub struct OracleTrace {
    writes: usize,
    assets: usize,
    record_len: usize,
    seed: u64,
}

impl Default for OracleTrace {
    fn default() -> Self {
        OracleTrace {
            writes: 790, // ≈ the 5-day trace length in Figure 2
            assets: 1,
            record_len: 32,
            seed: 0xE7B1_05C1,
        }
    }
}

impl OracleTrace {
    /// Default 5-day-equivalent trace (≈790 pokes, single asset).
    pub fn new() -> Self {
        OracleTrace::default()
    }

    /// Number of `poke()` updates to generate.
    pub fn writes(mut self, writes: usize) -> Self {
        self.writes = writes;
        self
    }

    /// Number of assets updated per poke (the §4.1 experiment batches price
    /// updates of 10 assets per `gPuts`). Reads always target asset 0 (the
    /// Ether price backing the stablecoin).
    pub fn assets(mut self, assets: usize) -> Self {
        assert!(assets >= 1, "need at least one asset");
        self.assets = assets;
        self
    }

    /// Record size in bytes.
    pub fn record_len(mut self, len: usize) -> Self {
        self.record_len = len;
        self
    }

    /// Deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Key for asset `i` (asset 0 is `ETH-USD`).
    pub fn asset_key(i: usize) -> String {
        if i == 0 {
            "ETH-USD".to_owned()
        } else {
            format!("ASSET-{i:04}")
        }
    }

    /// Samples the trace (materialized view of [`OracleTrace::source`]).
    pub fn generate(&self) -> Trace {
        Trace::from_source(&mut self.source())
    }

    /// Streams the trace lazily: resident state is the RNG, the Table 1
    /// sampler, and three counters — independent of `writes`.
    pub fn source(&self) -> OracleSource {
        let weights: Vec<u32> = TABLE1_DISTRIBUTION.iter().map(|&(_, w)| w).collect();
        OracleSource {
            params: self.clone(),
            rng: StdRng::seed_from_u64(self.seed),
            // grub-lint: allow(panic) — TABLE1_DISTRIBUTION is a static table with positive weights
            index: WeightedIndex::new(&weights).expect("static weights are valid"),
            poke: 0,
            asset_pos: self.assets,
            reads_left: 0,
        }
    }

    /// A simulated Ether price series (geometric random walk), used by the
    /// stablecoin example to display human-readable prices.
    pub fn price_series(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x50C1);
        let mut price = 150.0f64; // USD per ETH, spring 2018 flavour
        (0..self.writes)
            .map(|_| {
                let step: f64 = rng.gen_range(-0.01..0.01);
                price *= 1.0 + step;
                price
            })
            .collect()
    }
}

/// The streaming form of [`OracleTrace`]: a state machine over
/// (poke, asset position, reads remaining) that reproduces `generate()`'s
/// exact RNG call order — one Table 1 sample per poke, drawn after the
/// poke's writes are emitted.
#[derive(Clone, Debug)]
pub struct OracleSource {
    params: OracleTrace,
    rng: StdRng,
    index: WeightedIndex,
    /// Pokes started so far (the write version counter, 1-based once a
    /// poke's writes begin).
    poke: u64,
    /// Assets already emitted for the current poke.
    asset_pos: usize,
    /// Reads remaining after the current poke.
    reads_left: usize,
}

impl OpSource for OracleSource {
    fn next_op(&mut self) -> Option<Op> {
        if self.asset_pos < self.params.assets {
            let asset = self.asset_pos;
            self.asset_pos += 1;
            if self.asset_pos == self.params.assets {
                self.reads_left = TABLE1_DISTRIBUTION[self.index.sample(&mut self.rng)].0;
            }
            return Some(Op::Write {
                key: OracleTrace::asset_key(asset),
                value: ValueSpec::new(
                    self.params.record_len,
                    self.params.seed ^ (self.poke << 8) ^ asset as u64,
                ),
            });
        }
        if self.reads_left > 0 {
            self.reads_left -= 1;
            return Some(Op::Read {
                key: OracleTrace::asset_key(0),
            });
        }
        if self.poke as usize >= self.params.writes {
            return None;
        }
        self.poke += 1;
        self.asset_pos = 0;
        self.next_op()
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        // Writes remaining are exact; read counts are sampled, so no upper
        // bound.
        let pokes_left = self.params.writes - (self.poke as usize).min(self.params.writes);
        let writes_left = pokes_left * self.params.assets
            + (self.params.assets - self.asset_pos.min(self.params.assets));
        (writes_left + self.reads_left, None)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed);
        self.poke = 0;
        self.asset_pos = self.params.assets;
        self.reads_left = 0;
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::reads_after_write_distribution;

    #[test]
    fn trace_is_deterministic() {
        let a = OracleTrace::new().generate();
        let b = OracleTrace::new().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn source_matches_generate_and_replays() {
        let builder = OracleTrace::new().writes(200).assets(3).seed(77);
        let mut source = builder.source();
        let streamed = Trace::from_source(&mut source);
        assert_eq!(streamed, builder.generate());
        source.reset();
        assert_eq!(Trace::from_source(&mut source), streamed, "replay");
        // The hint's lower bound counts the deterministic writes.
        let fresh = builder.source();
        assert!(fresh.remaining_hint().0 >= 200 * 3);
        assert_eq!(fresh.remaining_hint().1, None, "reads are sampled");
    }

    #[test]
    fn write_count_matches_request() {
        let t = OracleTrace::new().writes(100).generate();
        assert_eq!(t.write_count(), 100);
    }

    #[test]
    fn multi_asset_pokes_batch_all_assets() {
        let t = OracleTrace::new().writes(10).assets(10).generate();
        assert_eq!(t.write_count(), 100, "10 pokes × 10 assets");
        // All reads target the Ether price.
        assert!(t
            .ops
            .iter()
            .filter(|o| !o.is_write())
            .all(|o| o.key() == "ETH-USD"));
    }

    #[test]
    fn distribution_matches_table1_shape() {
        // With a large sample, the zero-read fraction must be close to the
        // published 70.4% and the mean reads-per-write close to the
        // distribution's mean (≈0.70).
        let t = OracleTrace::new().writes(20_000).generate();
        let dist = reads_after_write_distribution(&t);
        let writes: usize = dist.values().sum();
        let zero = *dist.get(&0).unwrap_or(&0) as f64 / writes as f64;
        assert!((zero - 0.704).abs() < 0.02, "zero-read fraction {zero}");
        let mean: f64 = dist
            .iter()
            .map(|(&reads, &count)| reads as f64 * count as f64)
            .sum::<f64>()
            / writes as f64;
        let expected_mean: f64 = TABLE1_DISTRIBUTION
            .iter()
            .map(|&(r, w)| r as f64 * w as f64)
            .sum::<f64>()
            / 10_000.0;
        assert!(
            (mean - expected_mean).abs() < 0.05,
            "mean {mean} vs expected {expected_mean}"
        );
    }

    #[test]
    fn burstiness_reaches_table1_tail() {
        let t = OracleTrace::new().writes(20_000).generate();
        let dist = reads_after_write_distribution(&t);
        assert!(
            dist.keys().any(|&r| r >= 17),
            "tail bursts (17–20 reads) must appear"
        );
    }

    #[test]
    fn price_series_is_positive_and_wiggles() {
        let prices = OracleTrace::new().writes(50).price_series();
        assert_eq!(prices.len(), 50);
        assert!(prices.iter().all(|p| *p > 0.0));
        assert!(prices.windows(2).any(|w| w[0] != w[1]));
    }
}
