//! A from-scratch YCSB core (Cooper et al., SoCC'10) — the macro-benchmark
//! substrate of the paper's §5.2.
//!
//! Implements the six standard core workloads with the standard key
//! choosers:
//!
//! | Workload | Mix                         | Distribution       |
//! |----------|-----------------------------|--------------------|
//! | A        | 50% read / 50% update       | zipfian            |
//! | B        | 95% read / 5% update        | zipfian            |
//! | C        | 100% read                   | zipfian            |
//! | D        | 95% read / 5% insert        | latest             |
//! | E        | 95% scan / 5% insert        | zipfian + uniform  |
//! | F        | 50% read / 50% read-modify-write | zipfian       |
//!
//! The zipfian generator follows the Gray et al. algorithm used by YCSB's
//! `ZipfianGenerator` (θ = 0.99), with the scrambled variant hashing samples
//! across the keyspace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::source::OpSource;
use crate::{Op, Trace, ValueSpec};

/// The YCSB zipfian constant θ.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Zipfian generator over `[0, n)` (Gray et al. / YCSB algorithm).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a generator for `n` items.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "zipfian needs at least one item");
        let theta = ZIPFIAN_CONSTANT;
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Samples a rank in `[0, n)`; rank 0 is the hottest item.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
    }
}

fn fnv_hash(v: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The six core workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum YcsbKind {
    /// Update-heavy: 50/50 read/update.
    A,
    /// Read-mostly: 95/5 read/update.
    B,
    /// Read-only.
    C,
    /// Read-latest: 95/5 read/insert.
    D,
    /// Short ranges: 95/5 scan/insert.
    E,
    /// Read-modify-write: 50/50 read/RMW.
    F,
}

impl YcsbKind {
    /// Parses the single-letter codename.
    pub fn from_letter(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'A' => Some(YcsbKind::A),
            'B' => Some(YcsbKind::B),
            'C' => Some(YcsbKind::C),
            'D' => Some(YcsbKind::D),
            'E' => Some(YcsbKind::E),
            'F' => Some(YcsbKind::F),
            _ => None,
        }
    }
}

/// YCSB key for record index `i`.
pub fn ycsb_key(i: u64) -> String {
    format!("user{i:012}")
}

/// The records to preload before running a workload (the paper preloads
/// 2^16 records).
pub fn preload(record_count: u64, record_len: usize, seed: u64) -> Vec<(String, ValueSpec)> {
    (0..record_count)
        .map(|i| (ycsb_key(i), ValueSpec::new(record_len, seed ^ fnv_hash(i))))
        .collect()
}

/// Generator state shared across phases so inserts keep growing the
/// keyspace (as YCSB's transaction-insert sequence does).
#[derive(Clone, Debug)]
pub struct YcsbRunner {
    record_count: u64,
    record_len: usize,
    max_scan_len: usize,
    rng: StdRng,
    zipf: Zipfian,
    version: u64,
    seed: u64,
}

impl YcsbRunner {
    /// Creates a runner over an initially `record_count`-record keyspace.
    pub fn new(record_count: u64, record_len: usize, seed: u64) -> Self {
        YcsbRunner {
            record_count,
            record_len,
            max_scan_len: 100,
            rng: StdRng::seed_from_u64(seed),
            zipf: Zipfian::new(record_count),
            version: 0,
            seed,
        }
    }

    /// Caps scan lengths (YCSB default 100).
    pub fn max_scan_len(mut self, len: usize) -> Self {
        self.max_scan_len = len.max(1);
        self
    }

    /// Current keyspace size (grows with inserts).
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    fn scrambled_zipfian_key(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng);
        fnv_hash(rank) % self.record_count
    }

    fn latest_key(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng);
        self.record_count - 1 - (rank % self.record_count)
    }

    fn fresh_value(&mut self) -> ValueSpec {
        self.version += 1;
        ValueSpec::new(self.record_len, self.seed ^ (self.version << 20))
    }

    fn insert_op(&mut self) -> Op {
        let key = ycsb_key(self.record_count);
        self.record_count += 1;
        // Keep the zipfian sized to the keyspace like YCSB's expansion.
        self.zipf = Zipfian::new(self.record_count);
        Op::Write {
            key,
            value: self.fresh_value(),
        }
    }

    /// One YCSB transaction of workload `kind`: usually one operation, two
    /// for F's read-modify-write (read then write of the same key). The
    /// single step every surface shares — `generate()` materializes it in a
    /// loop, [`YcsbSource`] streams it — so vector and stream cannot drift.
    pub fn step(&mut self, kind: YcsbKind) -> (Op, Option<Op>) {
        let p: f64 = self.rng.gen();
        let op = match kind {
            YcsbKind::A => {
                if p < 0.5 {
                    self.read_op()
                } else {
                    self.update_op()
                }
            }
            YcsbKind::B => {
                if p < 0.95 {
                    self.read_op()
                } else {
                    self.update_op()
                }
            }
            YcsbKind::C => self.read_op(),
            YcsbKind::D => {
                if p < 0.95 {
                    let key = ycsb_key(self.latest_key());
                    Op::Read { key }
                } else {
                    self.insert_op()
                }
            }
            YcsbKind::E => {
                if p < 0.95 {
                    let start = self.scrambled_zipfian_key();
                    let len = self.rng.gen_range(1..=self.max_scan_len);
                    Op::Scan {
                        start_key: ycsb_key(start),
                        len,
                    }
                } else {
                    self.insert_op()
                }
            }
            YcsbKind::F => {
                if p < 0.5 {
                    self.read_op()
                } else {
                    // Read-modify-write touches the same key twice.
                    let key = ycsb_key(self.scrambled_zipfian_key());
                    let write = Op::Write {
                        key: key.clone(),
                        value: self.fresh_value(),
                    };
                    return (Op::Read { key }, Some(write));
                }
            }
        };
        (op, None)
    }

    /// Generates `ops` transactions of workload `kind`, advancing shared
    /// state. (F's read-modify-write emits two operations per transaction,
    /// as YCSB's core does, so the trace may be longer than `ops`.)
    pub fn generate(&mut self, kind: YcsbKind, ops: usize) -> Trace {
        let mut out = Vec::with_capacity(ops);
        for _ in 0..ops {
            let (first, second) = self.step(kind);
            out.push(first);
            out.extend(second);
        }
        Trace { ops: out }
    }

    /// Consumes the runner into a phased streaming source: each
    /// `(kind, transactions)` phase runs in order against the shared
    /// keyspace state, one pulled operation at a time.
    pub fn into_source(self, phases: Vec<(YcsbKind, usize)>) -> YcsbSource {
        YcsbSource {
            initial: self.clone(),
            runner: self,
            phases,
            phase: 0,
            done_in_phase: 0,
            pending: None,
        }
    }

    fn read_op(&mut self) -> Op {
        Op::Read {
            key: ycsb_key(self.scrambled_zipfian_key()),
        }
    }

    fn update_op(&mut self) -> Op {
        Op::Write {
            key: ycsb_key(self.scrambled_zipfian_key()),
            value: self.fresh_value(),
        }
    }
}

/// The streaming form of [`YcsbRunner`]: phased like
/// [`mixed_trace`], with F's second (write) operation buffered one pull —
/// resident state is the runner plus at most one pending op, independent of
/// phase lengths.
#[derive(Clone, Debug)]
pub struct YcsbSource {
    /// The runner as constructed — what [`OpSource::reset`] restores.
    initial: YcsbRunner,
    runner: YcsbRunner,
    phases: Vec<(YcsbKind, usize)>,
    phase: usize,
    done_in_phase: usize,
    /// F's read-modify-write second half, awaiting the next pull.
    pending: Option<Op>,
}

impl OpSource for YcsbSource {
    fn next_op(&mut self) -> Option<Op> {
        if let Some(op) = self.pending.take() {
            return Some(op);
        }
        while let Some(&(kind, ops)) = self.phases.get(self.phase) {
            if self.done_in_phase < ops {
                self.done_in_phase += 1;
                let (first, second) = self.runner.step(kind);
                self.pending = second;
                return Some(first);
            }
            self.phase += 1;
            self.done_in_phase = 0;
        }
        None
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        // One op per remaining transaction is a safe lower bound; F's RMW
        // pairs can double it, so the upper bound reflects that.
        let txs: usize = self
            .phases
            .iter()
            .enumerate()
            .map(|(i, &(_, ops))| match i.cmp(&self.phase) {
                std::cmp::Ordering::Less => 0,
                std::cmp::Ordering::Equal => ops - self.done_in_phase.min(ops),
                std::cmp::Ordering::Greater => ops,
            })
            .sum();
        let buffered = usize::from(self.pending.is_some());
        (txs + buffered, Some(2 * txs + buffered))
    }

    fn reset(&mut self) {
        self.runner = self.initial.clone();
        self.phase = 0;
        self.done_in_phase = 0;
        self.pending = None;
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

/// Convenience: a phased mix like the paper's "Workload A, B" experiments —
/// each `(kind, ops)` phase runs in order against shared state
/// (materialized view of [`YcsbRunner::into_source`]).
pub fn mixed_trace(
    record_count: u64,
    record_len: usize,
    seed: u64,
    phases: &[(YcsbKind, usize)],
) -> Trace {
    let runner = YcsbRunner::new(record_count, record_len, seed);
    Trace::from_source(&mut runner.into_source(phases.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_skewed_toward_rank_zero() {
        let z = Zipfian::new(1000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // Rank 0 should take roughly 1/zeta(1000, .99) ≈ 13% of samples.
        let share = counts[0] as f64 / 100_000.0;
        assert!(share > 0.08 && share < 0.20, "rank-0 share {share}");
    }

    #[test]
    fn zipfian_samples_stay_in_range() {
        let z = Zipfian::new(50);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn workload_a_mix_is_half_reads() {
        let mut r = YcsbRunner::new(1 << 10, 64, 1);
        let t = r.generate(YcsbKind::A, 10_000);
        let reads = t.read_count() as f64 / t.ops.len() as f64;
        assert!((reads - 0.5).abs() < 0.03, "read fraction {reads}");
    }

    #[test]
    fn workload_b_mix_is_mostly_reads() {
        let mut r = YcsbRunner::new(1 << 10, 64, 2);
        let t = r.generate(YcsbKind::B, 10_000);
        let reads = t.read_count() as f64 / t.ops.len() as f64;
        assert!((reads - 0.95).abs() < 0.01, "read fraction {reads}");
    }

    #[test]
    fn workload_e_scans_dominate() {
        let mut r = YcsbRunner::new(1 << 10, 64, 3);
        let t = r.generate(YcsbKind::E, 5_000);
        let scans = t
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Scan { .. }))
            .count() as f64
            / t.ops.len() as f64;
        assert!((scans - 0.95).abs() < 0.02, "scan fraction {scans}");
        // Scan lengths within bounds.
        for op in &t.ops {
            if let Op::Scan { len, .. } = op {
                assert!(*len >= 1 && *len <= 100);
            }
        }
    }

    #[test]
    fn workload_f_rmw_pairs_read_then_write_same_key() {
        let mut r = YcsbRunner::new(1 << 10, 64, 4);
        let t = r.generate(YcsbKind::F, 2_000);
        // Every write must be immediately preceded by a read of the same key.
        for (i, op) in t.ops.iter().enumerate() {
            if let Op::Write { key, .. } = op {
                match &t.ops[i - 1] {
                    Op::Read { key: prev } => assert_eq!(prev, key),
                    other => panic!("write preceded by {other:?}"),
                }
            }
        }
    }

    #[test]
    fn inserts_grow_the_keyspace() {
        let mut r = YcsbRunner::new(100, 64, 5);
        let before = r.record_count();
        let t = r.generate(YcsbKind::D, 2_000);
        assert!(r.record_count() > before);
        let inserts = t.write_count();
        assert!((inserts as f64 / 2000.0 - 0.05).abs() < 0.02);
    }

    #[test]
    fn latest_distribution_prefers_recent_keys() {
        let mut r = YcsbRunner::new(10_000, 64, 6);
        let t = r.generate(YcsbKind::D, 5_000);
        let recent_reads = t
            .ops
            .iter()
            .filter(|o| !o.is_write())
            .filter(|o| {
                let idx: u64 = o.key()[4..].parse().unwrap();
                idx >= 9_000
            })
            .count();
        let total_reads = t.read_count();
        assert!(
            recent_reads as f64 / total_reads as f64 > 0.5,
            "latest chooser must focus on the newest 10% of keys"
        );
    }

    #[test]
    fn mixed_trace_runs_phases_in_order() {
        let t = mixed_trace(1 << 8, 64, 7, &[(YcsbKind::A, 100), (YcsbKind::C, 100)]);
        assert_eq!(t.ops.len(), 200 + t.ops.len() - 200); // no panic, sized
                                                          // Phase 2 is read-only: the last 100 ops contain no writes.
        assert!(t.ops[t.ops.len() - 100..].iter().all(|o| !o.is_write()));
    }

    #[test]
    fn preload_covers_keyspace() {
        let records = preload(256, 32, 9);
        assert_eq!(records.len(), 256);
        assert_eq!(records[0].0, ycsb_key(0));
        assert_eq!(records[255].0, ycsb_key(255));
        assert!(records.iter().all(|(_, v)| v.len == 32));
    }

    #[test]
    fn determinism_across_runs() {
        let a = mixed_trace(512, 32, 11, &[(YcsbKind::A, 500)]);
        let b = mixed_trace(512, 32, 11, &[(YcsbKind::A, 500)]);
        assert_eq!(a, b);
    }

    #[test]
    fn source_matches_phased_generate_for_every_kind() {
        for kind in [
            YcsbKind::A,
            YcsbKind::B,
            YcsbKind::C,
            YcsbKind::D,
            YcsbKind::E,
            YcsbKind::F,
        ] {
            let mut runner = YcsbRunner::new(256, 32, 23);
            let expected = runner.generate(kind, 300);
            let mut source = YcsbRunner::new(256, 32, 23).into_source(vec![(kind, 300)]);
            assert_eq!(Trace::from_source(&mut source), expected, "{kind:?}");
            source.reset();
            assert_eq!(Trace::from_source(&mut source), expected, "{kind:?} replay");
        }
    }

    #[test]
    fn source_spans_phases_with_shared_state() {
        let phases = [(YcsbKind::F, 120), (YcsbKind::D, 120)];
        let expected = mixed_trace(128, 32, 31, &phases);
        let mut source = YcsbRunner::new(128, 32, 31).into_source(phases.to_vec());
        let (lo, hi) = source.remaining_hint();
        let streamed = Trace::from_source(&mut source);
        assert_eq!(streamed, expected);
        assert!(lo <= streamed.ops.len() && streamed.ops.len() <= hi.unwrap());
    }
}
