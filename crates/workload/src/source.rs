//! The pull-based ingestion layer: [`OpSource`], the workspace-wide
//! contract for streaming operations into the system.
//!
//! The paper's online policies (§4) are defined over an *unbounded* stream
//! of reads and writes, but a materialized [`Trace`] caps experiment length
//! at available memory. An [`OpSource`] inverts the dataflow: consumers
//! *pull* one operation at a time from a seeded deterministic generator, so
//! a million-op (or endless) workload runs at O(1) trace-side memory —
//! only the generator's own bounded state is resident.
//!
//! # The contract
//!
//! Every implementation must be
//!
//! * **deterministic** — the emitted sequence is a pure function of the
//!   generator's construction parameters (seed included). No wall clock, no
//!   global state;
//! * **replayable** — [`OpSource::reset`] rewinds to the first operation,
//!   and a replay yields the byte-identical sequence (asserted for every
//!   generator in `tests/streaming.rs`);
//! * **`Send`** — the multi-tenant engine stages feeds on worker threads,
//!   and a feed's source travels with its staging half;
//! * **cloneable** — [`OpSource::clone_box`] snapshots the source *at its
//!   current position*, which is what lets schedulers fork speculative
//!   replicas and lets [`Trace::from_source`] stay a pure adapter.
//!
//! [`Trace`] remains the materialized view for back-compat and for
//! algorithms that genuinely need the whole sequence up front (the
//! offline-optimal reference): [`Trace::from_source`] drains a source into
//! a vector, [`Trace::into_source`] replays a vector as a stream.

use crate::{Op, Trace};

/// A pull-based, seeded, deterministic stream of feed operations.
///
/// See the [module docs](self) for the determinism/replay contract.
pub trait OpSource: Send + std::fmt::Debug {
    /// Produces the next operation, or `None` once the stream is exhausted.
    /// After returning `None`, every further call returns `None` until
    /// [`OpSource::reset`].
    fn next_op(&mut self) -> Option<Op>;

    /// `(lower, upper)` bounds on the number of operations remaining, in
    /// [`Iterator::size_hint`] convention: the lower bound is always safe,
    /// `Some(upper)` is exact-or-over. Generators that sample their read
    /// counts (oracle, BtcRelay) cannot give an exact upper bound; purely
    /// arithmetic generators (ratio) return `(n, Some(n))`.
    fn remaining_hint(&self) -> (usize, Option<usize>);

    /// Rewinds the stream to its first operation. A replay after `reset`
    /// emits the byte-identical sequence the source emitted from
    /// construction — the replay contract every implementation is tested
    /// against.
    fn reset(&mut self);

    /// Clones the source — including its current position — behind a fresh
    /// box. (Object-safe stand-in for `Clone`.)
    fn clone_box(&self) -> Box<dyn OpSource>;
}

impl Clone for Box<dyn OpSource> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl OpSource for Box<dyn OpSource> {
    fn next_op(&mut self) -> Option<Op> {
        (**self).next_op()
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        (**self).remaining_hint()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        (**self).clone_box()
    }
}

/// A materialized [`Trace`] replayed as a stream — the back-compat bridge
/// from the vector world into the ingestion layer.
#[derive(Clone, Debug)]
pub struct TraceSource {
    trace: Trace,
    cursor: usize,
}

impl TraceSource {
    /// Wraps a trace; the stream starts at its first operation.
    pub fn new(trace: Trace) -> Self {
        TraceSource { trace, cursor: 0 }
    }

    /// The operations not yet emitted.
    pub fn remaining_ops(&self) -> usize {
        self.trace.ops.len() - self.cursor
    }
}

impl OpSource for TraceSource {
    fn next_op(&mut self) -> Option<Op> {
        let op = self.trace.ops.get(self.cursor).cloned();
        if op.is_some() {
            self.cursor += 1;
        }
        op
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining_ops();
        (n, Some(n))
    }

    fn reset(&mut self) {
        self.cursor = 0;
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

/// A one-op-lookahead wrapper giving any boxed source a *non-consuming*
/// exhaustion test — what round-based schedulers need to decide "does this
/// feed still have work?" without advancing the stream past the answer.
///
/// The lookahead op is part of the stream, not a copy: [`next_op`] hands it
/// out first and refills from the inner source.
///
/// [`next_op`]: OpSource::next_op
#[derive(Clone, Debug)]
pub struct PeekableSource {
    inner: Box<dyn OpSource>,
    lookahead: Option<Op>,
}

impl PeekableSource {
    /// Wraps a source, immediately pulling the first op into the lookahead.
    pub fn new(mut inner: Box<dyn OpSource>) -> Self {
        let lookahead = inner.next_op();
        PeekableSource { inner, lookahead }
    }

    /// Whether the stream has no operations left — `&self`, does not
    /// consume.
    pub fn is_exhausted(&self) -> bool {
        self.lookahead.is_none()
    }

    /// The next operation without consuming it.
    pub fn peek(&self) -> Option<&Op> {
        self.lookahead.as_ref()
    }
}

impl OpSource for PeekableSource {
    fn next_op(&mut self) -> Option<Op> {
        let out = self.lookahead.take()?;
        self.lookahead = self.inner.next_op();
        Some(out)
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.remaining_hint();
        let buffered = usize::from(self.lookahead.is_some());
        (lo + buffered, hi.map(|h| h + buffered))
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.lookahead = self.inner.next_op();
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

impl Trace {
    /// Drains a source to exhaustion into a materialized trace.
    ///
    /// The adapter direction used by every legacy `generate()`: the
    /// streaming source is the single implementation, and the vector API is
    /// a view over it — which is what makes streamed and materialized runs
    /// byte-identical by construction.
    pub fn from_source(source: &mut dyn OpSource) -> Trace {
        let mut ops = Vec::with_capacity(source.remaining_hint().0);
        while let Some(op) = source.next_op() {
            ops.push(op);
        }
        Trace { ops }
    }

    /// Replays this trace as a stream (the other adapter direction).
    pub fn into_source(self) -> TraceSource {
        TraceSource::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValueSpec;

    fn sample_trace() -> Trace {
        Trace {
            ops: vec![
                Op::Write {
                    key: "a".into(),
                    value: ValueSpec::new(8, 1),
                },
                Op::Read { key: "a".into() },
                Op::Read { key: "a".into() },
            ],
        }
    }

    #[test]
    fn op_source_is_object_safe_and_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Box<dyn OpSource>>();
        assert_send::<TraceSource>();
        assert_send::<PeekableSource>();
    }

    #[test]
    fn trace_round_trips_through_source() {
        let trace = sample_trace();
        let mut source = trace.clone().into_source();
        assert_eq!(source.remaining_hint(), (3, Some(3)));
        let back = Trace::from_source(&mut source);
        assert_eq!(back, trace);
        assert_eq!(source.remaining_hint(), (0, Some(0)));
        assert_eq!(source.next_op(), None, "exhausted stays exhausted");
    }

    #[test]
    fn reset_replays_identically() {
        let mut source = sample_trace().into_source();
        let first = Trace::from_source(&mut source);
        source.reset();
        let second = Trace::from_source(&mut source);
        assert_eq!(first, second);
    }

    #[test]
    fn clone_box_snapshots_position() {
        let mut source = sample_trace().into_source();
        source.next_op();
        let mut fork = source.clone_box();
        assert_eq!(fork.remaining_hint(), (2, Some(2)));
        assert_eq!(Trace::from_source(&mut fork).ops.len(), 2);
        // The original is unaffected by the fork's progress.
        assert_eq!(source.remaining_hint(), (2, Some(2)));
    }

    #[test]
    fn peekable_exhaustion_is_non_consuming() {
        let mut peek = PeekableSource::new(Box::new(sample_trace().into_source()));
        assert!(!peek.is_exhausted());
        assert!(peek.peek().is_some());
        assert_eq!(peek.remaining_hint(), (3, Some(3)));
        let drained = Trace::from_source(&mut peek);
        assert_eq!(drained, sample_trace());
        assert!(peek.is_exhausted());
        peek.reset();
        assert!(!peek.is_exhausted());
        assert_eq!(Trace::from_source(&mut peek), sample_trace());
    }
}
