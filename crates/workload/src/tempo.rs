//! Read-arrival *tempo* combinators: reshape when a stream's reads arrive
//! without changing what is read or written.
//!
//! The paper's two case studies replay reads at live tempo (one consumer
//! transaction per block), where *when* a read lands changes what the
//! monitor has observed by then — so the same read/write mix behaves
//! differently when reads arrive as a burst after a quiet spell versus
//! evenly spread. [`TempoSource`] expresses both shapes as a windowed
//! combinator over any inner [`OpSource`]: it buffers one window of
//! operations, reorders the reads within it, and streams the window out —
//! O(window) resident state, so an unbounded inner stream stays unbounded.
//!
//! The combinator permutes arrival order only *within* a window: every
//! operation of window `w` is emitted before any operation of window
//! `w + 1`, writes keep their relative order, and reads keep theirs — only
//! the read/write interleaving moves.

use crate::source::OpSource;
use crate::Op;

/// How a window's reads are re-timed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadTempo {
    /// All of a window's reads arrive in one burst after its writes — the
    /// quiet-then-burst shape of the BtcRelay mint/burn trace.
    Bursty,
    /// A window's reads are spread as evenly as possible between its
    /// writes — the steady drip of a polling consumer.
    Uniform,
}

/// A windowed read-tempo reshaper over any [`OpSource`] (see the
/// [module docs](self)).
#[derive(Clone, Debug)]
pub struct TempoSource {
    inner: Box<dyn OpSource>,
    tempo: ReadTempo,
    window: usize,
    /// The reordered current window, drained from the front.
    buffer: std::collections::VecDeque<Op>,
}

impl TempoSource {
    /// Wraps `inner`, reshaping read arrivals per `tempo` over windows of
    /// `window` operations (clamped to ≥ 1).
    pub fn new(inner: Box<dyn OpSource>, tempo: ReadTempo, window: usize) -> Self {
        TempoSource {
            inner,
            tempo,
            window: window.max(1),
            buffer: std::collections::VecDeque::new(),
        }
    }

    fn refill(&mut self) {
        let mut writes: Vec<Op> = Vec::new();
        let mut reads: Vec<Op> = Vec::new();
        for _ in 0..self.window {
            match self.inner.next_op() {
                Some(op) if op.is_write() => writes.push(op),
                Some(op) => reads.push(op),
                None => break,
            }
        }
        match self.tempo {
            ReadTempo::Bursty => {
                self.buffer.extend(writes);
                self.buffer.extend(reads);
            }
            ReadTempo::Uniform => {
                if writes.is_empty() {
                    self.buffer.extend(reads);
                    return;
                }
                // Spread the reads evenly: after write w (1-based), all
                // reads with index ≤ w·R/W have arrived.
                let (w_total, r_total) = (writes.len(), reads.len());
                let mut reads = reads.into_iter();
                let mut emitted_reads = 0usize;
                for (w, write) in writes.into_iter().enumerate() {
                    self.buffer.push_back(write);
                    let due = (w + 1) * r_total / w_total;
                    while emitted_reads < due {
                        // grub-lint: allow(panic) — due = (w+1)·r/w ≤ r_total, so the reads iterator cannot run dry
                        let read = reads.next().expect("due ≤ total reads");
                        self.buffer.push_back(read);
                        emitted_reads += 1;
                    }
                }
                self.buffer.extend(reads);
            }
        }
    }
}

impl OpSource for TempoSource {
    fn next_op(&mut self) -> Option<Op> {
        if self.buffer.is_empty() {
            self.refill();
        }
        self.buffer.pop_front()
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.remaining_hint();
        let buffered = self.buffer.len();
        (lo + buffered, hi.map(|h| h + buffered))
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.buffer.clear();
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::RatioWorkload;
    use crate::Trace;

    fn shape(trace: &Trace) -> String {
        trace
            .ops
            .iter()
            .map(|o| if o.is_write() { 'W' } else { 'R' })
            .collect()
    }

    #[test]
    fn bursty_defers_reads_to_the_window_end() {
        // Inner stream: (W R R R R) × 4; window 10 spans two cycles.
        let inner = RatioWorkload::new("k", 4.0).source(4);
        let mut tempo = TempoSource::new(Box::new(inner), ReadTempo::Bursty, 10);
        let trace = Trace::from_source(&mut tempo);
        assert_eq!(shape(&trace), "WWRRRRRRRRWWRRRRRRRR");
        // Same multiset of ops, reads just re-timed.
        let plain = RatioWorkload::new("k", 4.0).generate(4);
        assert_eq!(trace.write_count(), plain.write_count());
        assert_eq!(trace.read_count(), plain.read_count());
        // Replay contract.
        tempo.reset();
        assert_eq!(Trace::from_source(&mut tempo), trace);
    }

    #[test]
    fn uniform_spreads_a_read_burst_evenly() {
        // Inner stream: 2 writes then 8 reads per window of 10.
        let inner = RatioWorkload::new("k", 4.0).source(4);
        let mut tempo = TempoSource::new(Box::new(inner), ReadTempo::Uniform, 10);
        let trace = Trace::from_source(&mut tempo);
        assert_eq!(shape(&trace), "WRRRRWRRRRWRRRRWRRRR");
        tempo.reset();
        assert_eq!(Trace::from_source(&mut tempo), trace);
    }

    #[test]
    fn tempo_preserves_op_content_and_write_order() {
        let plain = RatioWorkload::new("k", 2.0).seed(5).generate(9);
        for tempo_kind in [ReadTempo::Bursty, ReadTempo::Uniform] {
            let inner = RatioWorkload::new("k", 2.0).seed(5).source(9);
            let mut tempo = TempoSource::new(Box::new(inner), tempo_kind, 8);
            let shaped = Trace::from_source(&mut tempo);
            assert_eq!(shaped.ops.len(), plain.ops.len());
            let writes = |t: &Trace| {
                t.ops
                    .iter()
                    .filter(|o| o.is_write())
                    .cloned()
                    .collect::<Vec<_>>()
            };
            assert_eq!(writes(&shaped), writes(&plain), "{tempo_kind:?}");
        }
    }

    #[test]
    fn window_of_one_is_the_identity() {
        let plain = RatioWorkload::new("k", 4.0).generate(6);
        let inner = RatioWorkload::new("k", 4.0).source(6);
        let mut tempo = TempoSource::new(Box::new(inner), ReadTempo::Bursty, 1);
        assert_eq!(Trace::from_source(&mut tempo), plain);
    }

    #[test]
    fn read_only_and_write_only_streams_pass_through() {
        for ratio in [0.0, 64.0] {
            let plain = RatioWorkload::new("k", ratio).generate(3);
            for tempo_kind in [ReadTempo::Bursty, ReadTempo::Uniform] {
                let inner = RatioWorkload::new("k", ratio).source(3);
                let mut tempo = TempoSource::new(Box::new(inner), tempo_kind, 16);
                let shaped = Trace::from_source(&mut tempo);
                assert_eq!(shaped.write_count(), plain.write_count());
                assert_eq!(shaped.read_count(), plain.read_count());
            }
        }
    }
}
