//! Multi-tenant workload multiplexing: splitting a global operation budget
//! across N tenants with configurable (uniform or Zipfian) activity skew.
//!
//! Real multi-tenant deployments are not uniform: a handful of hot feeds
//! (major price pairs, popular relays) carry most of the traffic while a
//! long tail idles. [`Multiplex`] models that by allocating a total op
//! budget over tenants — deterministically, by largest-remainder
//! apportionment over the skew weights, so the same parameters always
//! produce the same split — and then materializing one trace per tenant
//! through a caller-supplied generator.
//!
//! # Examples
//!
//! ```
//! use grub_workload::multiplex::Multiplex;
//! use grub_workload::ratio::RatioWorkload;
//!
//! // 4 tenants sharing 1000 ops, zipfian activity: tenant 0 is hottest.
//! let feeds = Multiplex::new(4, 1000).zipfian(0.99).generate(|tenant, ops| {
//!     RatioWorkload::new(format!("key-{tenant}"), 4.0).generate(ops / 5)
//! });
//! assert_eq!(feeds.len(), 4);
//! assert!(feeds[0].1.ops.len() > feeds[3].1.ops.len());
//! ```

use crate::Trace;

/// How the global op budget is distributed over tenants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TenantSkew {
    /// Every tenant gets the same share.
    Uniform,
    /// Tenant `i` gets a share ∝ `1 / (i + 1)^theta` — the YCSB-style
    /// Zipfian activity profile over tenants (not keys).
    Zipfian {
        /// The skew exponent θ (YCSB uses 0.99).
        theta: f64,
    },
}

/// A deterministic multi-tenant workload splitter.
#[derive(Clone, Debug)]
pub struct Multiplex {
    tenants: usize,
    total_ops: usize,
    skew: TenantSkew,
}

impl Multiplex {
    /// Splits `total_ops` uniformly over `tenants` tenants.
    ///
    /// # Panics
    ///
    /// Panics if `tenants == 0`.
    pub fn new(tenants: usize, total_ops: usize) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        Multiplex {
            tenants,
            total_ops,
            skew: TenantSkew::Uniform,
        }
    }

    /// Switches to Zipfian tenant skew with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative or not finite.
    pub fn zipfian(mut self, theta: f64) -> Self {
        assert!(theta.is_finite() && theta >= 0.0, "theta must be ≥ 0");
        self.skew = TenantSkew::Zipfian { theta };
        self
    }

    /// The canonical tenant name for index `i` (`tenant-00`, `tenant-01`…).
    pub fn tenant_name(i: usize) -> String {
        format!("tenant-{i:02}")
    }

    /// The per-tenant op budget: sums exactly to `total_ops`, allocated by
    /// largest-remainder apportionment over the skew weights (ties broken
    /// toward lower-indexed, i.e. hotter, tenants).
    pub fn ops_per_tenant(&self) -> Vec<usize> {
        let weights: Vec<f64> = match self.skew {
            TenantSkew::Uniform => vec![1.0; self.tenants],
            TenantSkew::Zipfian { theta } => (0..self.tenants)
                .map(|i| 1.0 / ((i + 1) as f64).powf(theta))
                .collect(),
        };
        let total_weight: f64 = weights.iter().sum();
        let quotas: Vec<f64> = weights
            .iter()
            .map(|w| self.total_ops as f64 * w / total_weight)
            .collect();
        let mut out: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = out.iter().sum();
        // Distribute the remainder by descending fractional part; sort is
        // stable, so equal fractions favor hotter tenants deterministically.
        let mut order: Vec<usize> = (0..self.tenants).collect();
        order.sort_by(|&a, &b| {
            let fa = quotas[a] - quotas[a].floor();
            let fb = quotas[b] - quotas[b].floor();
            fb.partial_cmp(&fa).expect("finite fractions")
        });
        for &i in order.iter().take(self.total_ops - assigned) {
            out[i] += 1;
        }
        out
    }

    /// Materializes one `(name, trace)` pair per tenant. The generator
    /// receives the tenant index and its op budget; it may return a trace
    /// of a different length (e.g. whole read/write cycles only) — the
    /// budget is a target, not a straitjacket.
    pub fn generate<F>(&self, mut generator: F) -> Vec<(String, Trace)>
    where
        F: FnMut(usize, usize) -> Trace,
    {
        self.ops_per_tenant()
            .into_iter()
            .enumerate()
            .map(|(i, ops)| (Self::tenant_name(i), generator(i, ops)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::RatioWorkload;

    #[test]
    fn uniform_split_sums_and_balances() {
        let m = Multiplex::new(7, 100);
        let split = m.ops_per_tenant();
        assert_eq!(split.iter().sum::<usize>(), 100);
        assert!(split.iter().all(|&n| n == 14 || n == 15));
    }

    #[test]
    fn zipfian_split_is_skewed_and_exact() {
        let m = Multiplex::new(8, 1000).zipfian(0.99);
        let split = m.ops_per_tenant();
        assert_eq!(split.iter().sum::<usize>(), 1000);
        assert!(
            split.windows(2).all(|w| w[0] >= w[1]),
            "shares must be non-increasing: {split:?}"
        );
        assert!(
            split[0] > 2 * split[7],
            "hottest tenant must dominate the tail: {split:?}"
        );
    }

    #[test]
    fn zero_theta_degenerates_to_uniform() {
        let uniform = Multiplex::new(5, 500).ops_per_tenant();
        let zipf0 = Multiplex::new(5, 500).zipfian(0.0).ops_per_tenant();
        assert_eq!(uniform, zipf0);
    }

    #[test]
    fn split_is_deterministic() {
        let a = Multiplex::new(9, 12_345).zipfian(1.2).ops_per_tenant();
        let b = Multiplex::new(9, 12_345).zipfian(1.2).ops_per_tenant();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_names_tenants_and_passes_budgets() {
        let feeds = Multiplex::new(3, 30).generate(|tenant, ops| {
            RatioWorkload::new(format!("k{tenant}"), 1.0).generate(ops / 2)
        });
        assert_eq!(feeds.len(), 3);
        assert_eq!(feeds[0].0, "tenant-00");
        assert_eq!(feeds[2].0, "tenant-02");
        assert!(feeds.iter().all(|(_, t)| t.ops.len() == 10));
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_rejected() {
        Multiplex::new(0, 10);
    }
}
