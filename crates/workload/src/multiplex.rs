//! Multi-tenant workload multiplexing: splitting a global operation budget
//! across N tenants with configurable (uniform or Zipfian) activity skew.
//!
//! Real multi-tenant deployments are not uniform: a handful of hot feeds
//! (major price pairs, popular relays) carry most of the traffic while a
//! long tail idles. [`Multiplex`] models that by allocating a total op
//! budget over tenants — deterministically, by largest-remainder
//! apportionment over the skew weights, so the same parameters always
//! produce the same split — and then handing each tenant's budget to a
//! caller-supplied generator: [`Multiplex::generate`] materializes one
//! trace per tenant, [`Multiplex::sources`] builds one streaming
//! [`OpSource`] per tenant, and [`Multiplex::interleaved`] lazily merges
//! the per-tenant sources into a single arrival stream by skew-weighted
//! sampling ([`InterleaveSource`]).
//!
//! # Examples
//!
//! ```
//! use grub_workload::multiplex::Multiplex;
//! use grub_workload::ratio::RatioWorkload;
//!
//! // 4 tenants sharing 1000 ops, zipfian activity: tenant 0 is hottest.
//! let feeds = Multiplex::new(4, 1000).zipfian(0.99).generate(|tenant, ops| {
//!     RatioWorkload::new(format!("key-{tenant}"), 4.0).generate(ops / 5)
//! });
//! assert_eq!(feeds.len(), 4);
//! assert!(feeds[0].1.ops.len() > feeds[3].1.ops.len());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::source::OpSource;
use crate::{Op, Trace};

/// How the global op budget is distributed over tenants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TenantSkew {
    /// Every tenant gets the same share.
    Uniform,
    /// Tenant `i` gets a share ∝ `1 / (i + 1)^theta` — the YCSB-style
    /// Zipfian activity profile over tenants (not keys).
    Zipfian {
        /// The skew exponent θ (YCSB uses 0.99).
        theta: f64,
    },
}

/// A deterministic multi-tenant workload splitter.
#[derive(Clone, Debug)]
pub struct Multiplex {
    tenants: usize,
    total_ops: usize,
    skew: TenantSkew,
}

impl Multiplex {
    /// Splits `total_ops` uniformly over `tenants` tenants.
    ///
    /// # Panics
    ///
    /// Panics if `tenants == 0`.
    pub fn new(tenants: usize, total_ops: usize) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        Multiplex {
            tenants,
            total_ops,
            skew: TenantSkew::Uniform,
        }
    }

    /// Switches to Zipfian tenant skew with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative or not finite.
    pub fn zipfian(mut self, theta: f64) -> Self {
        assert!(theta.is_finite() && theta >= 0.0, "theta must be ≥ 0");
        self.skew = TenantSkew::Zipfian { theta };
        self
    }

    /// The canonical tenant name for index `i` (`tenant-00`, `tenant-01`…).
    pub fn tenant_name(i: usize) -> String {
        format!("tenant-{i:02}")
    }

    /// The tenants' skew weights: tenant `i`'s share of the total is
    /// `weight(i) / Σ weight` (before integer apportionment).
    pub fn weights(&self) -> Vec<f64> {
        match self.skew {
            TenantSkew::Uniform => vec![1.0; self.tenants],
            TenantSkew::Zipfian { theta } => (0..self.tenants)
                .map(|i| 1.0 / ((i + 1) as f64).powf(theta))
                .collect(),
        }
    }

    /// The per-tenant op budget: sums **exactly** to `total_ops`, allocated
    /// by largest-remainder apportionment over the skew weights (ties
    /// broken toward lower-indexed, i.e. hotter, tenants).
    pub fn ops_per_tenant(&self) -> Vec<usize> {
        let weights = self.weights();
        let total_weight: f64 = weights.iter().sum();
        let quotas: Vec<f64> = weights
            .iter()
            .map(|w| self.total_ops as f64 * w / total_weight)
            .collect();
        let mut out: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let mut assigned: usize = out.iter().sum();
        // Distribute the remainder by descending fractional part; sort is
        // stable, so equal fractions favor hotter tenants deterministically.
        let mut order: Vec<usize> = (0..self.tenants).collect();
        order.sort_by(|&a, &b| {
            let fa = quotas[a] - quotas[a].floor();
            let fb = quotas[b] - quotas[b].floor();
            // grub-lint: allow(panic) — fractional parts of finite quotas are never NaN
            fb.partial_cmp(&fa).expect("finite fractions")
        });
        // In exact arithmetic the remainder is < tenants, but extreme
        // skews push the float quotas far enough that the floors can
        // undershoot by more than one op per tenant — cycle the order so
        // the budgets still sum exactly instead of silently dropping ops.
        let mut top_up = order.iter().cycle();
        while assigned < self.total_ops {
            // grub-lint: allow(panic) — cycle() over a non-empty tenant list never ends
            out[*top_up.next().expect("at least one tenant")] += 1;
            assigned += 1;
        }
        // The floors could only overshoot through float error (a quota
        // rounding *up* past its exact value); trim coldest-first so an
        // overshoot can never starve the hot tenants.
        let mut trim = order.iter().rev().cycle();
        while assigned > self.total_ops {
            // grub-lint: allow(panic) — cycle() over a non-empty tenant list never ends
            let &i = trim.next().expect("at least one tenant");
            if out[i] > 0 {
                out[i] -= 1;
                assigned -= 1;
            }
        }
        debug_assert_eq!(out.iter().sum::<usize>(), self.total_ops);
        out
    }

    /// Materializes one `(name, trace)` pair per tenant. The generator
    /// receives the tenant index and its op budget; it may return a trace
    /// of a different length (e.g. whole read/write cycles only) — the
    /// budget is a target, not a straitjacket.
    pub fn generate<F>(&self, mut generator: F) -> Vec<(String, Trace)>
    where
        F: FnMut(usize, usize) -> Trace,
    {
        self.ops_per_tenant()
            .into_iter()
            .enumerate()
            .map(|(i, ops)| (Self::tenant_name(i), generator(i, ops)))
            .collect()
    }

    /// The streaming counterpart of [`Multiplex::generate`]: one boxed
    /// [`OpSource`] per tenant, budgets apportioned identically.
    pub fn sources<F>(&self, mut generator: F) -> Vec<(String, Box<dyn OpSource>)>
    where
        F: FnMut(usize, usize) -> Box<dyn OpSource>,
    {
        self.ops_per_tenant()
            .into_iter()
            .enumerate()
            .map(|(i, ops)| (Self::tenant_name(i), generator(i, ops)))
            .collect()
    }

    /// Lazily merges the per-tenant sources into one arrival stream: each
    /// pull samples the emitting tenant proportionally to the skew weights
    /// (seeded, deterministic), so hot tenants' operations arrive more
    /// often — the multi-tenant arrival process the round-robin vector API
    /// could not express. Exhausted tenants drop out of the draw until
    /// every source runs dry.
    pub fn interleaved<F>(&self, seed: u64, generator: F) -> InterleaveSource
    where
        F: FnMut(usize, usize) -> Box<dyn OpSource>,
    {
        InterleaveSource::new(self.sources(generator), self.weights(), seed)
    }
}

/// A lazy skew-weighted merge of per-tenant [`OpSource`]s
/// (built by [`Multiplex::interleaved`]).
///
/// Each pull draws the emitting tenant from a cumulative-weight table
/// (CDF) built **once** per alive-set — not by re-summing the harmonic
/// weights on every draw — then binary-searches it. A lane is retired the
/// moment its lookahead empties, so every RNG draw lands on a live lane
/// and the table is rebuilt only when the alive set shrinks. Resident
/// state is the lanes plus the CDF: O(tenants), independent of stream
/// length.
#[derive(Clone, Debug)]
pub struct InterleaveSource {
    lanes: Vec<(String, crate::PeekableSource)>,
    weights: Vec<f64>,
    seed: u64,
    rng: StdRng,
    /// `(cumulative weight, lane index)` over the alive lanes only.
    cdf: Vec<(f64, usize)>,
    total_weight: f64,
}

impl InterleaveSource {
    /// Merges `lanes` with per-lane draw `weights` under a seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if the lane and weight counts differ or any weight is not a
    /// finite positive number — a zero-weight lane could never be drawn,
    /// so its operations would be silently lost while
    /// [`OpSource::remaining_hint`] still counted them.
    pub fn new(lanes: Vec<(String, Box<dyn OpSource>)>, weights: Vec<f64>, seed: u64) -> Self {
        assert_eq!(lanes.len(), weights.len(), "one weight per lane");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be finite and > 0"
        );
        let mut source = InterleaveSource {
            lanes: lanes
                .into_iter()
                .map(|(name, src)| (name, crate::PeekableSource::new(src)))
                .collect(),
            weights,
            seed,
            rng: StdRng::seed_from_u64(seed),
            cdf: Vec::new(),
            total_weight: 0.0,
        };
        source.rebuild_cdf();
        source
    }

    /// Rebuilds the cumulative table over the lanes with operations left —
    /// called at construction, on reset, and whenever a lane runs dry.
    fn rebuild_cdf(&mut self) {
        self.cdf.clear();
        self.total_weight = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            if !self.lanes[i].1.is_exhausted() {
                self.total_weight += w;
                self.cdf.push((self.total_weight, i));
            }
        }
    }

    /// Like [`OpSource::next_op`], additionally reporting which tenant lane
    /// emitted the operation.
    pub fn next_tenant_op(&mut self) -> Option<(usize, Op)> {
        if self.cdf.is_empty() {
            return None;
        }
        let needle: f64 = self.rng.gen::<f64>() * self.total_weight;
        let at = self
            .cdf
            .partition_point(|&(cum, _)| cum <= needle)
            .min(self.cdf.len() - 1);
        let lane = self.cdf[at].1;
        // grub-lint: allow(panic) — rebuild_cdf drops exhausted lanes, so any lane sampled from the CDF is live
        let op = self.lanes[lane].1.next_op().expect("CDF holds live lanes");
        if self.lanes[lane].1.is_exhausted() {
            self.rebuild_cdf();
        }
        Some((lane, op))
    }

    /// The tenant name for a lane index returned by
    /// [`InterleaveSource::next_tenant_op`].
    pub fn tenant_name(&self, lane: usize) -> &str {
        &self.lanes[lane].0
    }
}

impl OpSource for InterleaveSource {
    fn next_op(&mut self) -> Option<Op> {
        self.next_tenant_op().map(|(_, op)| op)
    }

    fn remaining_hint(&self) -> (usize, Option<usize>) {
        let mut lo = 0usize;
        let mut hi = Some(0usize);
        for (_, lane) in &self.lanes {
            let (l, h) = lane.remaining_hint();
            lo += l;
            hi = match (hi, h) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        (lo, hi)
    }

    fn reset(&mut self) {
        for (_, lane) in &mut self.lanes {
            lane.reset();
        }
        self.rng = StdRng::seed_from_u64(self.seed);
        self.rebuild_cdf();
    }

    fn clone_box(&self) -> Box<dyn OpSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::RatioWorkload;

    #[test]
    fn uniform_split_sums_and_balances() {
        let m = Multiplex::new(7, 100);
        let split = m.ops_per_tenant();
        assert_eq!(split.iter().sum::<usize>(), 100);
        assert!(split.iter().all(|&n| n == 14 || n == 15));
    }

    #[test]
    fn zipfian_split_is_skewed_and_exact() {
        let m = Multiplex::new(8, 1000).zipfian(0.99);
        let split = m.ops_per_tenant();
        assert_eq!(split.iter().sum::<usize>(), 1000);
        assert!(
            split.windows(2).all(|w| w[0] >= w[1]),
            "shares must be non-increasing: {split:?}"
        );
        assert!(
            split[0] > 2 * split[7],
            "hottest tenant must dominate the tail: {split:?}"
        );
    }

    #[test]
    fn zero_theta_degenerates_to_uniform() {
        let uniform = Multiplex::new(5, 500).ops_per_tenant();
        let zipf0 = Multiplex::new(5, 500).zipfian(0.0).ops_per_tenant();
        assert_eq!(uniform, zipf0);
    }

    #[test]
    fn split_is_deterministic() {
        let a = Multiplex::new(9, 12_345).zipfian(1.2).ops_per_tenant();
        let b = Multiplex::new(9, 12_345).zipfian(1.2).ops_per_tenant();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_names_tenants_and_passes_budgets() {
        let feeds = Multiplex::new(3, 30).generate(|tenant, ops| {
            RatioWorkload::new(format!("k{tenant}"), 1.0).generate(ops / 2)
        });
        assert_eq!(feeds.len(), 3);
        assert_eq!(feeds[0].0, "tenant-00");
        assert_eq!(feeds[2].0, "tenant-02");
        assert!(feeds.iter().all(|(_, t)| t.ops.len() == 10));
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_rejected() {
        Multiplex::new(0, 10);
    }

    #[test]
    fn budgets_sum_exactly_under_adversarial_tenant_counts() {
        // Wide sweeps of tenant count, total, and skew — including tenants
        // far exceeding the budget, single-op totals, zero totals, and
        // extreme thetas whose float quotas are pure rounding noise.
        for tenants in [1, 2, 3, 7, 64, 97, 1000, 4096] {
            for total in [0usize, 1, 2, 7, 100, 12_345] {
                for theta in [0.0, 0.5, 0.99, 1.2, 4.0, 12.0] {
                    let split = Multiplex::new(tenants, total)
                        .zipfian(theta)
                        .ops_per_tenant();
                    assert_eq!(split.len(), tenants);
                    assert_eq!(
                        split.iter().sum::<usize>(),
                        total,
                        "{tenants} tenants, {total} ops, theta {theta}"
                    );
                }
                let uniform = Multiplex::new(tenants, total).ops_per_tenant();
                assert_eq!(uniform.iter().sum::<usize>(), total);
            }
        }
    }

    #[test]
    fn interleave_merges_all_budgets_and_replays() {
        let m = Multiplex::new(4, 400).zipfian(0.99);
        let budgets = m.ops_per_tenant();
        let mk = |tenant: usize, ops: usize| -> Box<dyn crate::OpSource> {
            Box::new(
                RatioWorkload::new(format!("key-{tenant}"), 1.0)
                    .seed(tenant as u64)
                    .source(ops / 2),
            )
        };
        let mut merged = m.interleaved(42, mk);
        let stream = crate::Trace::from_source(&mut merged);
        // Every tenant's full budget arrives, nothing more.
        let expected: usize = budgets.iter().map(|b| (b / 2) * 2).sum();
        assert_eq!(stream.ops.len(), expected);
        // Replay after reset is byte-identical.
        merged.reset();
        assert_eq!(crate::Trace::from_source(&mut merged), stream);
        // Hot tenants lead: the first chunk of arrivals skews to tenant 0.
        let hot_early = stream.ops[..40]
            .iter()
            .filter(|o| o.key() == "key-0")
            .count();
        assert!(
            hot_early > 10,
            "tenant 0 must dominate early arrivals, got {hot_early}/40"
        );
    }

    #[test]
    fn interleave_cdf_matches_per_draw_weight_recomputation() {
        // The optimization contract: precomputing the cumulative weights
        // once per alive-set must emit the *identical* tenant sequence a
        // naive implementation gets by re-deriving the harmonic weights on
        // every draw.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let tenants = 6;
        let theta = 0.99f64;
        let m = Multiplex::new(tenants, 600).zipfian(theta);
        let budgets = m.ops_per_tenant();
        let mk = |tenant: usize, ops: usize| -> Box<dyn crate::OpSource> {
            Box::new(
                RatioWorkload::new(format!("key-{tenant}"), 0.0)
                    .seed(tenant as u64)
                    .source(ops),
            )
        };
        let mut fast = m.interleaved(7, mk);
        let mut fast_lanes = Vec::new();
        while let Some((lane, _)) = fast.next_tenant_op() {
            fast_lanes.push(lane);
        }

        // Naive reference: recompute weights and their running sum on every
        // draw over the currently-alive tenants.
        let mut remaining: Vec<usize> = budgets.clone();
        let mut rng = StdRng::seed_from_u64(7);
        let mut naive_lanes = Vec::new();
        loop {
            let weights: Vec<(usize, f64)> = (0..tenants)
                .filter(|&i| remaining[i] > 0)
                .map(|i| (i, 1.0 / ((i + 1) as f64).powf(theta)))
                .collect();
            let total: f64 = weights.iter().map(|&(_, w)| w).sum();
            if total <= 0.0 {
                break;
            }
            let needle = rng.gen::<f64>() * total;
            let mut cum = 0.0;
            let mut chosen = weights.last().expect("non-empty").0;
            for &(i, w) in &weights {
                cum += w;
                if needle < cum {
                    chosen = i;
                    break;
                }
            }
            remaining[chosen] -= 1;
            naive_lanes.push(chosen);
        }
        assert_eq!(
            fast_lanes, naive_lanes,
            "precomputed CDF must not change the drawn tenant sequence"
        );
    }
}
