//! Workload substrate for the GRuB experiments.
//!
//! The paper drives GRuB with four families of workloads, all rebuilt here:
//!
//! * [`ratio`] — repeating sequences of `X1` writes followed by `X2` reads at
//!   a fixed read-to-write ratio (the microbenchmarks of §2.3 / §5.1);
//! * [`oracle`] — a synthesizer for the `ethPriceOracle` 5-day call trace,
//!   matching the published reads-after-write distribution (Table 1) and
//!   burstiness (Figure 2); the real BigQuery trace is not redistributable,
//!   so this is the documented substitution (DESIGN.md §3);
//! * [`btcrelay`] — a synthesizer for the BtcRelay block-feed workload
//!   (Table 6 distribution, 6-block reads per mint/burn, ~4 h read delay,
//!   Appendix D);
//! * [`ycsb`] — a from-scratch YCSB core (workloads A–F with the standard
//!   zipfian / scrambled-zipfian / latest / uniform key choosers) used for
//!   the macro-benchmarks of §5.2.
//!
//! [`stats`] computes the summary tables the paper prints (Table 1, Table 6)
//! from any trace; [`multiplex`] splits a global op budget over N tenants
//! (uniform or Zipfian activity skew) for multi-feed engine runs.
//!
//! Ingestion is pull-based: every generator streams its operations through
//! the [`source::OpSource`] trait (seeded, deterministic, `Send`,
//! replayable — see the [`source`] module docs for the contract), and the
//! materialized [`Trace`] is a thin [`Trace::from_source`] /
//! [`Trace::into_source`] adapter kept for back-compat and for offline
//! algorithms. [`tempo`] reshapes a stream's read-arrival timing (bursty
//! vs uniform) without changing its content.
//!
//! # Examples
//!
//! ```
//! use grub_workload::ratio::RatioWorkload;
//!
//! // One write followed by four reads, repeated 10 times.
//! let trace = RatioWorkload::new("price", 4.0).generate(10);
//! assert_eq!(trace.read_count() + trace.write_count(), trace.ops.len());
//! assert_eq!(trace.read_count(), 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btcrelay;
pub mod multiplex;
pub mod oracle;
pub mod ratio;
pub mod source;
pub mod stats;
pub mod tempo;
pub mod ycsb;

pub use source::{OpSource, PeekableSource, TraceSource};

use serde::{Deserialize, Serialize};

/// A deterministic recipe for a value: materialized on demand so large
/// traces stay small in memory.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueSpec {
    /// Value length in bytes.
    pub len: usize,
    /// Seed that determines the bytes.
    pub seed: u64,
}

impl ValueSpec {
    /// A value of `len` bytes derived from `seed`.
    pub fn new(len: usize, seed: u64) -> Self {
        ValueSpec { len, seed }
    }

    /// Produces the concrete bytes (xorshift stream, deterministic).
    pub fn materialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        // splitmix64-style premix so nearby seeds give unrelated streams.
        let mut x = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x = (x ^ (x >> 31)) | 1;
        while out.len() < self.len {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let bytes = x.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes();
            let take = bytes.len().min(self.len - out.len());
            out.extend_from_slice(&bytes[..take]);
        }
        out
    }
}

/// One operation against the data feed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// A data-producer update (`gPuts` element).
    Write {
        /// Data key.
        key: String,
        /// Value recipe.
        value: ValueSpec,
    },
    /// A data-consumer point query (`gGet`).
    Read {
        /// Data key.
        key: String,
    },
    /// A data-consumer range query of `len` consecutive keys (YCSB `SCAN`).
    Scan {
        /// First key.
        start_key: String,
        /// Number of keys scanned.
        len: usize,
    },
}

impl Op {
    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Write { .. })
    }

    /// The primary key the operation touches.
    pub fn key(&self) -> &str {
        match self {
            Op::Write { key, .. } | Op::Read { key } => key,
            Op::Scan { start_key, .. } => start_key,
        }
    }
}

/// An ordered sequence of operations.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// The operations, in arrival order.
    pub ops: Vec<Op>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of write operations.
    pub fn write_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_write()).count()
    }

    /// Number of read and scan operations.
    pub fn read_count(&self) -> usize {
        self.ops.len() - self.write_count()
    }

    /// Concatenates another trace after this one (workload mixing).
    pub fn extend(&mut self, other: Trace) {
        self.ops.extend(other.ops);
    }
}

impl FromIterator<Op> for Trace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Trace {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_spec_is_deterministic() {
        let a = ValueSpec::new(100, 42).materialize();
        let b = ValueSpec::new(100, 42).materialize();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let c = ValueSpec::new(100, 43).materialize();
        assert_ne!(a, c);
    }

    #[test]
    fn value_spec_zero_len() {
        assert!(ValueSpec::new(0, 1).materialize().is_empty());
    }

    #[test]
    fn trace_counts() {
        let trace: Trace = vec![
            Op::Write {
                key: "a".into(),
                value: ValueSpec::new(8, 1),
            },
            Op::Read { key: "a".into() },
            Op::Scan {
                start_key: "a".into(),
                len: 10,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.write_count(), 1);
        assert_eq!(trace.read_count(), 2);
    }
}
