//! The in-memory write buffer: a multi-versioned ordered map.
//!
//! Every write carries a monotonically increasing sequence number; deletes
//! are tombstones. Versions are kept so snapshot reads observe the state as
//! of their sequence number, like LevelDB's `SequenceNumber`-tagged skiplist.

use std::collections::BTreeMap;
use std::ops::Bound;

/// One version of a key: sequence number plus value (None = tombstone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Version {
    /// Write sequence number.
    pub seq: u64,
    /// The written value, or `None` for a delete tombstone.
    pub value: Option<Vec<u8>>,
}

/// The mutable in-memory table.
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    // Versions per key, newest first.
    map: BTreeMap<Vec<u8>, Vec<Version>>,
    approx_bytes: usize,
    entries: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        Memtable::default()
    }

    /// Records a put or delete at `seq`.
    pub fn insert(&mut self, key: Vec<u8>, seq: u64, value: Option<Vec<u8>>) {
        self.approx_bytes += key.len() + value.as_ref().map(|v| v.len()).unwrap_or(0) + 24;
        self.entries += 1;
        let versions = self.map.entry(key).or_default();
        // Writes arrive in increasing seq order; append (O(1)) and read
        // newest-to-oldest by reverse iteration — front-inserting here made
        // every write to a hot key shift its whole version history.
        versions.push(Version { seq, value });
    }

    /// Latest visible version of `key` at or below `seq_limit`.
    ///
    /// Returns `None` when the memtable has no opinion; `Some(None)` when the
    /// visible version is a tombstone.
    pub fn get(&self, key: &[u8], seq_limit: u64) -> Option<Option<&Vec<u8>>> {
        let versions = self.map.get(key)?;
        versions
            .iter()
            .rev()
            .find(|v| v.seq <= seq_limit)
            .map(|v| v.value.as_ref())
    }

    /// Approximate heap footprint, used for flush triggering.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Number of recorded writes (all versions).
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All versions of all keys in key order (newest version first per key),
    /// as consumed by the SSTable writer.
    pub fn iter_all(&self) -> impl Iterator<Item = (&Vec<u8>, &Version)> {
        self.map
            .iter()
            .flat_map(|(k, versions)| versions.iter().rev().map(move |v| (k, v)))
    }

    /// Keys in `[start, end)` visible at `seq_limit`, skipping tombstones.
    pub fn range_visible(
        &self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
        seq_limit: u64,
    ) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        let start = bound_owned(start);
        let end = bound_owned(end);
        self.map
            .range((start, end))
            .filter_map(|(k, versions)| {
                versions
                    .iter()
                    .rev()
                    .find(|v| v.seq <= seq_limit)
                    .map(|v| (k.clone(), v.value.clone()))
            })
            .collect()
    }
}

fn bound_owned(b: Bound<&[u8]>) -> Bound<Vec<u8>> {
    match b {
        Bound::Included(x) => Bound::Included(x.to_vec()),
        Bound::Excluded(x) => Bound::Excluded(x.to_vec()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_latest_version() {
        let mut m = Memtable::new();
        m.insert(b"k".to_vec(), 1, Some(b"v1".to_vec()));
        m.insert(b"k".to_vec(), 2, Some(b"v2".to_vec()));
        assert_eq!(m.get(b"k", u64::MAX), Some(Some(&b"v2".to_vec())));
    }

    #[test]
    fn snapshot_sees_old_version() {
        let mut m = Memtable::new();
        m.insert(b"k".to_vec(), 1, Some(b"v1".to_vec()));
        m.insert(b"k".to_vec(), 5, Some(b"v2".to_vec()));
        assert_eq!(m.get(b"k", 4), Some(Some(&b"v1".to_vec())));
        assert_eq!(m.get(b"k", 0), None, "before first write: no opinion");
    }

    #[test]
    fn tombstone_is_distinguished_from_absence() {
        let mut m = Memtable::new();
        m.insert(b"k".to_vec(), 3, None);
        assert_eq!(m.get(b"k", 10), Some(None), "tombstone");
        assert_eq!(m.get(b"other", 10), None, "no opinion");
    }

    #[test]
    fn range_skips_tombstones_and_respects_seq() {
        let mut m = Memtable::new();
        m.insert(b"a".to_vec(), 1, Some(b"1".to_vec()));
        m.insert(b"b".to_vec(), 2, Some(b"2".to_vec()));
        m.insert(b"b".to_vec(), 3, None); // delete b at seq 3
        m.insert(b"c".to_vec(), 4, Some(b"3".to_vec()));
        let all = m.range_visible(Bound::Unbounded, Bound::Unbounded, u64::MAX);
        let live: Vec<_> = all.into_iter().filter(|(_, v)| v.is_some()).collect();
        assert_eq!(live.len(), 2);
        // At seq 2, b is still alive.
        let at2 = m.range_visible(Bound::Unbounded, Bound::Unbounded, 2);
        assert!(at2.iter().any(|(k, v)| k == b"b" && v.is_some()));
    }

    #[test]
    fn bytes_accounting_grows() {
        let mut m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.insert(b"key".to_vec(), 1, Some(vec![0u8; 100]));
        assert!(m.approx_bytes() >= 103);
        assert_eq!(m.entry_count(), 1);
    }
}
