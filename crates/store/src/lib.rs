//! A LevelDB-style log-structured merge (LSM) key-value storage engine.
//!
//! The GRuB paper runs its storage provider (SP) on Google LevelDB. Off-chain
//! costs are explicitly excluded from the paper's cost model (§2.2), but the
//! SP still needs a real, durable, ordered KV store to serve Puts/Gets/Scans
//! and back the Merkle ADS — so this crate rebuilds the essential LevelDB
//! architecture from scratch:
//!
//! * a write-ahead log ([`wal`]) with CRC-32-framed records and
//!   truncate-on-corruption recovery;
//! * an in-memory [`memtable`] holding multi-versioned entries;
//! * immutable sorted-table files ([`sstable`]) with 4 KiB data blocks, a
//!   block index and a bloom filter;
//! * size-triggered flushes and leveled compaction (L0 overlapping files,
//!   L1 merged and non-overlapping) in [`Db`];
//! * snapshot reads by sequence number and ordered range scans.
//!
//! # Examples
//!
//! ```
//! use grub_store::{Db, Options};
//!
//! # fn main() -> Result<(), grub_store::StoreError> {
//! let dir = std::env::temp_dir().join(format!("grub-doc-{}", std::process::id()));
//! let mut db = Db::open(&dir, Options::default())?;
//! db.put(b"eth-usd".to_vec(), b"150".to_vec())?;
//! assert_eq!(db.get(b"eth-usd")?, Some(b"150".to_vec()));
//! db.delete(b"eth-usd")?;
//! assert_eq!(db.get(b"eth-usd")?, None);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
mod cache;
pub mod crc;
mod db;
pub mod memtable;
pub mod sstable;
pub mod wal;

pub use db::{Db, Options, ReadStats, Snapshot};

use std::error::Error;
use std::fmt;
use std::io;

/// Errors returned by the storage engine.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A file was malformed (bad magic, bad CRC, truncated structure).
    Corrupt(String),
    /// An armed [`grub_fault`] crash point tripped here — the simulated
    /// process death of a recovery test, never seen in normal operation.
    Injected(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            StoreError::Injected(point) => write!(f, "injected crash at {point}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) | StoreError::Injected(_) => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
