//! A bounded, deterministic LRU cache over decoded SSTable data blocks.
//!
//! Entries are keyed by `(file number, block index)`. File numbers are
//! monotonically assigned and never reused, so a stale hit is impossible:
//! compaction evicts a deleted table's blocks eagerly, and even a missed
//! eviction could only produce a key that no live table maps to.
//!
//! Recency is a logical tick counter and eviction always removes the entry
//! with the smallest tick, so the cache contents are a pure function of the
//! access sequence — a cold-cache and a warm-cache run return byte-identical
//! results; only the I/O counters move.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::sstable::TableEntry;

/// A shared, immutable decoded data block.
pub(crate) type CachedBlock = Arc<Vec<TableEntry>>;

/// The cache. Interior-mutable (`Cell`/`RefCell`) so the read path can stay
/// `&self`; `Arc` blocks keep the owning [`crate::Db`] `Send`.
#[derive(Debug)]
pub(crate) struct BlockCache {
    capacity: usize,
    tick: Cell<u64>,
    /// `(file_no, block)` → `(last-use tick, block)`.
    entries: RefCell<BTreeMap<(u64, usize), (u64, CachedBlock)>>,
    /// `last-use tick` → `(file_no, block)`; the smallest tick is the LRU
    /// victim. Ticks are unique, so this is an exact recency order.
    lru: RefCell<BTreeMap<u64, (u64, usize)>>,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks (0 disables it).
    pub(crate) fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            tick: Cell::new(0),
            entries: RefCell::new(BTreeMap::new()),
            lru: RefCell::new(BTreeMap::new()),
        }
    }

    /// Looks up a block, refreshing its recency on a hit.
    pub(crate) fn get(&self, file_no: u64, block: usize) -> Option<CachedBlock> {
        let mut entries = self.entries.borrow_mut();
        let slot = entries.get_mut(&(file_no, block))?;
        let tick = self.next_tick();
        let old = std::mem::replace(&mut slot.0, tick);
        let mut lru = self.lru.borrow_mut();
        lru.remove(&old);
        lru.insert(tick, (file_no, block));
        Some(slot.1.clone())
    }

    /// Inserts a block, evicting the least-recently-used entry when full.
    pub(crate) fn insert(&self, file_no: u64, block: usize, data: CachedBlock) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.borrow_mut();
        let mut lru = self.lru.borrow_mut();
        if !entries.contains_key(&(file_no, block)) && entries.len() >= self.capacity {
            if let Some((&oldest, _)) = lru.iter().next() {
                if let Some(victim) = lru.remove(&oldest) {
                    entries.remove(&victim);
                }
            }
        }
        let tick = self.next_tick();
        if let Some((old, _)) = entries.insert((file_no, block), (tick, data)) {
            lru.remove(&old);
        }
        lru.insert(tick, (file_no, block));
    }

    /// Drops every cached block of `file_no` (its table was deleted).
    pub(crate) fn evict_table(&self, file_no: u64) {
        let mut entries = self.entries.borrow_mut();
        let mut lru = self.lru.borrow_mut();
        let dead: Vec<(u64, usize)> = entries
            .range((file_no, 0)..=(file_no, usize::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in dead {
            if let Some((tick, _)) = entries.remove(&key) {
                lru.remove(&tick);
            }
        }
    }

    fn next_tick(&self) -> u64 {
        let t = self.tick.get() + 1;
        self.tick.set(t);
        t
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(tag: u8) -> CachedBlock {
        Arc::new(vec![TableEntry {
            key: vec![tag],
            seq: 1,
            value: Some(vec![tag]),
        }])
    }

    #[test]
    fn bounded_with_lru_eviction() {
        let c = BlockCache::new(2);
        c.insert(1, 0, block(0));
        c.insert(1, 1, block(1));
        assert!(c.get(1, 0).is_some(), "refresh (1,0)");
        c.insert(1, 2, block(2)); // evicts (1,1), the LRU entry
        assert_eq!(c.len(), 2);
        assert!(c.get(1, 1).is_none(), "LRU victim gone");
        assert!(c.get(1, 0).is_some());
        assert!(c.get(1, 2).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let c = BlockCache::new(0);
        c.insert(1, 0, block(0));
        assert_eq!(c.len(), 0);
        assert!(c.get(1, 0).is_none());
    }

    #[test]
    fn evict_table_drops_only_that_file() {
        let c = BlockCache::new(8);
        c.insert(1, 0, block(0));
        c.insert(1, 1, block(1));
        c.insert(2, 0, block(2));
        c.evict_table(1);
        assert_eq!(c.len(), 1);
        assert!(c.get(1, 0).is_none());
        assert!(c.get(2, 0).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let c = BlockCache::new(2);
        c.insert(1, 0, block(0));
        c.insert(1, 0, block(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, 0).unwrap()[0].key, vec![9]);
    }
}
