//! The write-ahead log: CRC-framed records, replayed on open.
//!
//! Record framing follows LevelDB's spirit (length + checksum + payload);
//! a torn tail (partial write at crash) is detected by CRC/length mismatch
//! and the log is truncated there, recovering every fully-written record.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use grub_fault::{should_trip, FaultPoint};

use crate::crc::crc32;
use crate::{Result, StoreError};

/// One logical WAL record: a put or delete with its sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Sequence number of the write.
    pub seq: u64,
    /// User key.
    pub key: Vec<u8>,
    /// Value, or `None` for a delete tombstone.
    pub value: Option<Vec<u8>>,
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(
            8 + 1 + 4 + self.key.len() + 4 + self.value.as_ref().map(|v| v.len()).unwrap_or(0),
        );
        payload.extend_from_slice(&self.seq.to_le_bytes());
        payload.push(self.value.is_some() as u8);
        payload.extend_from_slice(&(self.key.len() as u32).to_le_bytes());
        payload.extend_from_slice(&self.key);
        if let Some(v) = &self.value {
            payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
            payload.extend_from_slice(v);
        }
        payload
    }

    fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
            if *pos + n > payload.len() {
                return None;
            }
            let out = &payload[*pos..*pos + n];
            *pos += n;
            Some(out)
        };
        let seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let has_value = take(&mut pos, 1)?[0] != 0;
        let klen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let key = take(&mut pos, klen)?.to_vec();
        let value = if has_value {
            let vlen = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
            Some(take(&mut pos, vlen)?.to_vec())
        } else {
            None
        };
        (pos == payload.len()).then_some(WalRecord { seq, key, value })
    }
}

/// An append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Any filesystem error opening the file.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal { path, file })
    }

    /// Appends one record (buffered by the OS; see [`Wal::sync`]).
    ///
    /// # Errors
    ///
    /// Any filesystem error writing the frame.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if should_trip(FaultPoint::MidWalAppend) {
            // Simulated crash mid-append: the torn half of the frame reaches
            // the log (exactly what a power cut during write_all leaves),
            // then the process "dies" via the injected error.
            self.file.write_all(&frame[..frame.len() / 2])?;
            self.file.sync_data().ok();
            return Err(StoreError::Injected("mid-wal-append"));
        }
        self.file.write_all(&frame)?;
        Ok(())
    }

    /// Forces the log to stable storage.
    ///
    /// # Errors
    ///
    /// Any filesystem error from `fsync`.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncates the log (after a successful memtable flush).
    ///
    /// # Errors
    ///
    /// Any filesystem error reopening the file.
    pub fn reset(&mut self) -> Result<()> {
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        Ok(())
    }

    /// Reads every intact record from a log file, stopping (without error)
    /// at the first torn or corrupt frame — LevelDB's recovery contract —
    /// and **truncating the log there**. The truncation is what makes
    /// recovery durable: the log stays in append mode after replay, so
    /// garbage left beyond the last intact frame would otherwise sit between
    /// the valid prefix and every post-recovery append, silently losing
    /// those appends at the *next* replay.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures; corruption truncates instead.
    pub fn replay(path: &Path) -> Result<Vec<WalRecord>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::Io(e)),
        }
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            // grub-lint: allow(panic) — the loop condition guarantees 8 bytes remain at `pos`
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let expect_crc =
                // grub-lint: allow(panic) — the loop condition guarantees 8 bytes remain at `pos`
                u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if pos + 8 + len > data.len() {
                break; // torn tail
            }
            let payload = &data[pos + 8..pos + 8 + len];
            if crc32(payload) != expect_crc {
                break; // corrupt frame: stop recovery here
            }
            match WalRecord::decode(payload) {
                Some(rec) => out.push(rec),
                None => break,
            }
            pos += 8 + len;
        }
        if pos < data.len() {
            // Cut the torn/corrupt tail so subsequent appends land directly
            // after the recovered prefix.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(pos as u64)?;
            f.sync_data()?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("grub-wal-{}-{name}.log", std::process::id()))
    }

    fn rec(seq: u64, key: &str, value: Option<&str>) -> WalRecord {
        WalRecord {
            seq,
            key: key.as_bytes().to_vec(),
            value: value.map(|v| v.as_bytes().to_vec()),
        }
    }

    #[test]
    fn append_and_replay() {
        let path = temp_path("basic");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&rec(1, "a", Some("1"))).unwrap();
            wal.append(&rec(2, "b", None)).unwrap();
            wal.sync().unwrap();
        }
        let records = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![rec(1, "a", Some("1")), rec(2, "b", None)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let path = temp_path("missing");
        std::fs::remove_file(&path).ok();
        assert!(Wal::replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_path("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&rec(1, "a", Some("1"))).unwrap();
            wal.append(&rec(2, "b", Some("2"))).unwrap();
            wal.sync().unwrap();
        }
        // Chop a few bytes off the end, simulating a crash mid-write.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let records = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![rec(1, "a", Some("1"))]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_frame_stops_recovery() {
        let path = temp_path("corrupt");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&rec(1, "a", Some("1"))).unwrap();
            wal.append(&rec(2, "b", Some("2"))).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the *first* record's payload.
        let idx = 10;
        data[idx] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_with_stale_bytes_is_truncated_durably() {
        // The crash shape that used to lose data: the final record is only
        // half-written AND stale bytes from an earlier, longer log
        // generation sit beyond it. Replay must stop at the intact prefix,
        // truncate the file there, and post-recovery appends must land
        // directly after the prefix — visible to the *next* replay.
        let path = temp_path("torn-stale");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&rec(1, "a", Some("1"))).unwrap();
            wal.append(&rec(2, "b", Some("2"))).unwrap();
            wal.sync().unwrap();
        }
        let data = std::fs::read(&path).unwrap();
        // Keep record 1 intact plus the first half of record 2's frame, then
        // splice in stale garbage that a previous generation left behind.
        let record_len = data.len() / 2;
        let mut torn = data[..record_len + record_len / 2].to_vec();
        torn.extend_from_slice(&[0xAA; 37]);
        std::fs::write(&path, &torn).unwrap();

        let records = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![rec(1, "a", Some("1"))]);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            record_len as u64,
            "replay must truncate the torn tail, not just skip it"
        );

        // Post-recovery appends go right after the prefix and survive the
        // next replay (the bug: they used to land after the garbage and be
        // unreachable forever).
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&rec(2, "c", Some("3"))).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let records = Wal::replay(&path).unwrap();
        assert_eq!(
            records,
            vec![rec(1, "a", Some("1")), rec(2, "c", Some("3"))]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_mid_append_crash_leaves_recoverable_log() {
        let _guard = grub_fault::injection_lock();
        let path = temp_path("fault-append");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&rec(1, "a", Some("1"))).unwrap();
        grub_fault::arm(grub_fault::FaultPlan::at(FaultPoint::MidWalAppend));
        let err = wal.append(&rec(2, "b", Some("2"))).unwrap_err();
        assert!(matches!(err, StoreError::Injected(_)), "typed crash error");
        drop(wal);
        // The torn half-frame is on disk; recovery keeps the intact prefix.
        let records = Wal::replay(&path).unwrap();
        assert_eq!(records, vec![rec(1, "a", Some("1"))]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_truncates() {
        let path = temp_path("reset");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&rec(1, "a", Some("1"))).unwrap();
        wal.reset().unwrap();
        assert!(Wal::replay(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_key_and_value_round_trip() {
        let path = temp_path("empty");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&rec(1, "", Some(""))).unwrap();
        drop(wal);
        let records = Wal::replay(&path).unwrap();
        assert_eq!(records[0].key, b"");
        assert_eq!(records[0].value, Some(Vec::new()));
        std::fs::remove_file(&path).ok();
    }
}
