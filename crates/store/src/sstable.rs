//! Immutable sorted-table files (SSTables).
//!
//! Layout, LevelDB-style:
//!
//! ```text
//! [data block]*  [index block]  [bloom block]  [footer]
//! ```
//!
//! Data blocks hold `(key, seq, value?)` entries sorted by key ascending and
//! sequence descending, cut at ~4 KiB on user-key boundaries (so one key's
//! versions never straddle blocks). The index maps each block's last key to
//! its file extent; the bloom filter short-circuits point lookups; the footer
//! pins everything with a magic number. Blocks are CRC-checked.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use grub_fault::{should_trip, FaultPoint};

use crate::bloom::Bloom;
use crate::crc::crc32;
use crate::{Result, StoreError};

const MAGIC: u64 = 0x4752_5542_5353_5442; // "GRUBSSTB"
const FOOTER_LEN: usize = 8 + 4 + 8 + 4 + 8 + 8;

/// One stored entry as returned by table iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// User key.
    pub key: Vec<u8>,
    /// Write sequence number.
    pub seq: u64,
    /// Value, or `None` for a tombstone.
    pub value: Option<Vec<u8>>,
}

#[derive(Debug, Clone)]
struct IndexEntry {
    last_key: Vec<u8>,
    offset: u64,
    len: u32,
}

/// Streaming SSTable writer. Entries must arrive sorted by
/// `(key asc, seq desc)`.
///
/// Bytes go to a `.tmp` sibling of the target path; [`SsTableWriter::finish`]
/// syncs and renames it into place, so a crash at any point during the write
/// leaves either no table or a complete one at the final name — never a
/// half-written `.sst` that poisons the next open. Stray `.tmp` leftovers
/// are swept by `Db::open`.
#[derive(Debug)]
pub struct SsTableWriter {
    file: File,
    path: PathBuf,
    tmp_path: PathBuf,
    block: Vec<u8>,
    block_entries: usize,
    offset: u64,
    index: Vec<IndexEntry>,
    keys: Vec<Vec<u8>>,
    last: Option<(Vec<u8>, u64)>,
    current_block_last_key: Option<Vec<u8>>,
    block_target: usize,
    bits_per_key: usize,
    entry_count: u64,
}

impl SsTableWriter {
    /// Creates a writer over a fresh file at `path`.
    ///
    /// # Errors
    ///
    /// Any filesystem error creating the file.
    pub fn create(
        path: impl Into<PathBuf>,
        block_target: usize,
        bits_per_key: usize,
    ) -> Result<Self> {
        let path = path.into();
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp_path = path.with_file_name(tmp_name);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        Ok(SsTableWriter {
            file,
            path,
            tmp_path,
            block: Vec::new(),
            block_entries: 0,
            offset: 0,
            index: Vec::new(),
            keys: Vec::new(),
            last: None,
            current_block_last_key: None,
            block_target,
            bits_per_key,
            entry_count: 0,
        })
    }

    /// Appends one entry.
    ///
    /// # Panics
    ///
    /// Panics if entries arrive out of `(key asc, seq desc)` order — that is
    /// a caller bug that would corrupt lookups.
    pub fn add(&mut self, key: &[u8], seq: u64, value: Option<&[u8]>) -> Result<()> {
        if let Some((last_key, last_seq)) = &self.last {
            let ordered = match key.cmp(last_key) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => seq < *last_seq,
                std::cmp::Ordering::Less => false,
            };
            assert!(ordered, "entries must be sorted by (key asc, seq desc)");
        }
        // Cut the block at user-key boundaries only.
        let key_changed = self
            .current_block_last_key
            .as_deref()
            .map(|k| k != key)
            .unwrap_or(true);
        if self.block.len() >= self.block_target && key_changed {
            self.finish_block()?;
        }
        self.block
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.block.extend_from_slice(&seq.to_le_bytes());
        self.block.push(value.is_some() as u8);
        let vlen = value.map(|v| v.len()).unwrap_or(0);
        self.block.extend_from_slice(&(vlen as u32).to_le_bytes());
        self.block.extend_from_slice(key);
        if let Some(v) = value {
            self.block.extend_from_slice(v);
        }
        self.block_entries += 1;
        self.entry_count += 1;
        if self.keys.last().map(|k| k.as_slice()) != Some(key) {
            self.keys.push(key.to_vec());
        }
        self.last = Some((key.to_vec(), seq));
        self.current_block_last_key = Some(key.to_vec());
        Ok(())
    }

    fn finish_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        let crc = crc32(&self.block);
        let mut framed = Vec::with_capacity(self.block.len() + 8);
        framed.extend_from_slice(&(self.block.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc.to_le_bytes());
        framed.extend_from_slice(&self.block);
        self.file.write_all(&framed)?;
        self.index.push(IndexEntry {
            last_key: self
                .current_block_last_key
                .clone()
                // grub-lint: allow(panic) — flush is only reached with entries in the block, and add() records the key
                .expect("non-empty block has a last key"),
            offset: self.offset,
            len: framed.len() as u32,
        });
        self.offset += framed.len() as u64;
        self.block.clear();
        self.block_entries = 0;
        Ok(())
    }

    /// Finishes the table: writes index, bloom and footer, syncs, and
    /// renames the `.tmp` file to the final path.
    ///
    /// # Errors
    ///
    /// Any filesystem error writing or syncing.
    pub fn finish(mut self) -> Result<PathBuf> {
        self.finish_block()?;
        if should_trip(FaultPoint::MidSstableFlush) {
            // Simulated crash mid-flush: the data blocks written so far stay
            // in the .tmp file — no footer, no rename — which is exactly the
            // artifact a power cut leaves. Db::open sweeps it.
            self.file.sync_data().ok();
            return Err(StoreError::Injected("mid-sstable-flush"));
        }
        // Index block.
        let mut index = Vec::new();
        index.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for e in &self.index {
            index.extend_from_slice(&(e.last_key.len() as u32).to_le_bytes());
            index.extend_from_slice(&e.last_key);
            index.extend_from_slice(&e.offset.to_le_bytes());
            index.extend_from_slice(&e.len.to_le_bytes());
        }
        let index_off = self.offset;
        self.file.write_all(&index)?;
        self.offset += index.len() as u64;
        // Bloom block.
        let bloom = Bloom::from_keys(&self.keys, self.bits_per_key).encode();
        let bloom_off = self.offset;
        self.file.write_all(&bloom)?;
        self.offset += bloom.len() as u64;
        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(&index_off.to_le_bytes());
        footer.extend_from_slice(&(index.len() as u32).to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&(bloom.len() as u32).to_le_bytes());
        footer.extend_from_slice(&self.entry_count.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        self.file.write_all(&footer)?;
        self.file.sync_data()?;
        std::fs::rename(&self.tmp_path, &self.path)?;
        // Persist the rename (best effort where directories cannot be
        // opened for sync), mirroring the SEQ sidecar discipline.
        if let Some(parent) = self.path.parent() {
            if let Ok(d) = File::open(parent) {
                d.sync_all().ok();
            }
        }
        Ok(self.path)
    }
}

/// A read handle over a finished SSTable: index and bloom in memory, data
/// blocks fetched (and CRC-checked) on demand.
#[derive(Debug)]
pub struct SsTableReader {
    file: File,
    index: Vec<IndexEntry>,
    bloom: Bloom,
    entry_count: u64,
    smallest: Vec<u8>,
    largest: Vec<u8>,
}

impl SsTableReader {
    /// Opens and validates a table file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on bad magic, framing or CRC;
    /// [`StoreError::Io`] on filesystem failures.
    pub fn open(path: &Path) -> Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < FOOTER_LEN as u64 {
            return Err(StoreError::Corrupt("file shorter than footer".into()));
        }
        let mut footer = vec![0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer, len - FOOTER_LEN as u64)?;
        let magic = le_u64(&footer[32..40]);
        if magic != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        let index_off = le_u64(&footer[0..8]);
        let index_len = le_u32(&footer[8..12]) as usize;
        let bloom_off = le_u64(&footer[12..20]);
        let bloom_len = le_u32(&footer[20..24]) as usize;
        let entry_count = le_u64(&footer[24..32]);

        let mut index_raw = vec![0u8; index_len];
        file.read_exact_at(&mut index_raw, index_off)?;
        let index = parse_index(&index_raw)?;

        let mut bloom_raw = vec![0u8; bloom_len];
        file.read_exact_at(&mut bloom_raw, bloom_off)?;
        let bloom = Bloom::decode(&bloom_raw)
            .ok_or_else(|| StoreError::Corrupt("bad bloom block".into()))?;

        let mut reader = SsTableReader {
            file,
            index,
            bloom,
            entry_count,
            smallest: Vec::new(),
            largest: Vec::new(),
        };
        if let Some(first) = reader.index.first().cloned() {
            let entries = reader.read_block(&first)?;
            reader.smallest = entries.first().map(|e| e.key.clone()).unwrap_or_default();
            reader.largest = reader
                .index
                .last()
                .map(|e| e.last_key.clone())
                .unwrap_or_default();
        }
        Ok(reader)
    }

    /// Number of entries (all versions).
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Smallest user key in the table.
    pub fn smallest(&self) -> &[u8] {
        &self.smallest
    }

    /// Largest user key in the table.
    pub fn largest(&self) -> &[u8] {
        &self.largest
    }

    fn read_block(&self, entry: &IndexEntry) -> Result<Vec<TableEntry>> {
        let mut framed = vec![0u8; entry.len as usize];
        self.file.read_exact_at(&mut framed, entry.offset)?;
        if framed.len() < 8 {
            return Err(StoreError::Corrupt("short block frame".into()));
        }
        let blen = le_u32(&framed[0..4]) as usize;
        let crc = le_u32(&framed[4..8]);
        let body = &framed[8..];
        if body.len() != blen {
            return Err(StoreError::Corrupt("block length mismatch".into()));
        }
        if crc32(body) != crc {
            return Err(StoreError::Corrupt("block crc mismatch".into()));
        }
        parse_block(body)
    }

    /// Latest version of `key` at or below `seq_limit`.
    ///
    /// Returns `None` when this table has no opinion, `Some(None)` for a
    /// visible tombstone.
    ///
    /// # Errors
    ///
    /// I/O or corruption while reading the containing block.
    pub fn get(&self, key: &[u8], seq_limit: u64) -> Result<Option<Option<Vec<u8>>>> {
        if self.index.is_empty() || !self.bloom.may_contain(key) {
            return Ok(None);
        }
        // First block whose last_key >= key.
        let idx = self.index.partition_point(|e| e.last_key.as_slice() < key);
        let Some(entry) = self.index.get(idx) else {
            return Ok(None);
        };
        let block = self.read_block(entry)?;
        Ok(block
            .into_iter()
            .find(|e| e.key == key && e.seq <= seq_limit)
            .map(|e| e.value))
    }

    /// Number of data blocks in the table.
    pub(crate) fn block_count(&self) -> usize {
        self.index.len()
    }

    /// Whether the bloom filter admits `key` (`false` ⇒ definitely absent).
    pub(crate) fn may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(key)
    }

    /// Index of the first block whose `last_key >= key` — the only block
    /// that can contain `key`, and the seek target for a scan starting at
    /// `key`. `None` when `key` sorts past every block.
    pub(crate) fn find_block_idx(&self, key: &[u8]) -> Option<usize> {
        let idx = self.index.partition_point(|e| e.last_key.as_slice() < key);
        (idx < self.index.len()).then_some(idx)
    }

    /// Reads (and CRC-checks) data block `idx`.
    pub(crate) fn block_at(&self, idx: usize) -> Result<Vec<TableEntry>> {
        match self.index.get(idx) {
            Some(entry) => self.read_block(entry),
            None => Ok(Vec::new()),
        }
    }

    /// All entries, in `(key asc, seq desc)` order.
    ///
    /// # Errors
    ///
    /// I/O or corruption while reading blocks.
    pub fn iter_all(&self) -> Result<Vec<TableEntry>> {
        let mut out = Vec::with_capacity(self.entry_count as usize);
        for e in &self.index {
            out.extend(self.read_block(e)?);
        }
        Ok(out)
    }
}

/// Reads a little-endian `u32` from a slice of exactly 4 bytes.
fn le_u32(b: &[u8]) -> u32 {
    // grub-lint: allow(panic) — every caller passes a 4-byte range already bounds-checked
    u32::from_le_bytes(b.try_into().expect("4-byte slice"))
}

/// Reads a little-endian `u64` from a slice of exactly 8 bytes.
fn le_u64(b: &[u8]) -> u64 {
    // grub-lint: allow(panic) — every caller passes an 8-byte range already bounds-checked
    u64::from_le_bytes(b.try_into().expect("8-byte slice"))
}

fn parse_index(raw: &[u8]) -> Result<Vec<IndexEntry>> {
    let corrupt = |m: &str| StoreError::Corrupt(m.into());
    if raw.len() < 4 {
        return Err(corrupt("index too short"));
    }
    let count = le_u32(&raw[0..4]) as usize;
    let mut pos = 4usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if pos + 4 > raw.len() {
            return Err(corrupt("index truncated"));
        }
        let klen = le_u32(&raw[pos..pos + 4]) as usize;
        pos += 4;
        if pos + klen + 12 > raw.len() {
            return Err(corrupt("index truncated"));
        }
        let last_key = raw[pos..pos + klen].to_vec();
        pos += klen;
        let offset = le_u64(&raw[pos..pos + 8]);
        pos += 8;
        let len = le_u32(&raw[pos..pos + 4]);
        pos += 4;
        out.push(IndexEntry {
            last_key,
            offset,
            len,
        });
    }
    Ok(out)
}

fn parse_block(body: &[u8]) -> Result<Vec<TableEntry>> {
    let corrupt = |m: &str| StoreError::Corrupt(m.into());
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < body.len() {
        if pos + 17 > body.len() {
            return Err(corrupt("entry header truncated"));
        }
        let klen = le_u32(&body[pos..pos + 4]) as usize;
        let seq = le_u64(&body[pos + 4..pos + 12]);
        let has_value = body[pos + 12] != 0;
        let vlen = le_u32(&body[pos + 13..pos + 17]) as usize;
        pos += 17;
        if pos + klen + if has_value { vlen } else { 0 } > body.len() {
            return Err(corrupt("entry body truncated"));
        }
        let key = body[pos..pos + klen].to_vec();
        pos += klen;
        let value = if has_value {
            let v = body[pos..pos + vlen].to_vec();
            pos += vlen;
            Some(v)
        } else {
            None
        };
        out.push(TableEntry { key, seq, value });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("grub-sst-{}-{name}.sst", std::process::id()))
    }

    fn build_table(name: &str, n: u32) -> PathBuf {
        let path = temp_path(name);
        let mut w = SsTableWriter::create(&path, 4096, 10).unwrap();
        for i in 0..n {
            let key = format!("key{i:06}");
            w.add(
                key.as_bytes(),
                i as u64 + 1,
                Some(format!("val{i}").as_bytes()),
            )
            .unwrap();
        }
        w.finish().unwrap();
        path
    }

    #[test]
    fn write_read_round_trip() {
        let path = build_table("round", 500);
        let r = SsTableReader::open(&path).unwrap();
        assert_eq!(r.entry_count(), 500);
        assert_eq!(r.smallest(), b"key000000");
        assert_eq!(r.largest(), b"key000499");
        assert_eq!(
            r.get(b"key000123", u64::MAX).unwrap(),
            Some(Some(b"val123".to_vec()))
        );
        assert_eq!(r.get(b"nope", u64::MAX).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_version_and_seq_limits() {
        let path = temp_path("versions");
        let mut w = SsTableWriter::create(&path, 4096, 10).unwrap();
        // key "a": seqs 9 (newest, tombstone) then 4 then 1.
        w.add(b"a", 9, None).unwrap();
        w.add(b"a", 4, Some(b"v4")).unwrap();
        w.add(b"a", 1, Some(b"v1")).unwrap();
        w.add(b"b", 2, Some(b"bee")).unwrap();
        w.finish().unwrap();
        let r = SsTableReader::open(&path).unwrap();
        assert_eq!(r.get(b"a", u64::MAX).unwrap(), Some(None), "tombstone wins");
        assert_eq!(r.get(b"a", 8).unwrap(), Some(Some(b"v4".to_vec())));
        assert_eq!(r.get(b"a", 3).unwrap(), Some(Some(b"v1".to_vec())));
        assert_eq!(r.get(b"a", 0).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn iter_all_is_sorted_and_complete() {
        let path = build_table("iter", 300);
        let r = SsTableReader::open(&path).unwrap();
        let all = r.iter_all().unwrap();
        assert_eq!(all.len(), 300);
        for pair in all.windows(2) {
            assert!(pair[0].key < pair[1].key);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn out_of_order_add_panics() {
        let path = temp_path("order");
        let mut w = SsTableWriter::create(&path, 4096, 10).unwrap();
        w.add(b"b", 1, Some(b"x")).unwrap();
        let _ = w.add(b"a", 2, Some(b"y"));
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = build_table("magic", 10);
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            SsTableReader::open(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_block_detected_on_read() {
        let path = build_table("crc", 200);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte early in the first data block's body.
        data[16] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        match SsTableReader::open(&path) {
            // Either open (which reads block 0 for smallest key) or a get
            // must surface the corruption.
            Err(StoreError::Corrupt(_)) => {}
            Ok(r) => {
                let err = r.get(b"key000001", u64::MAX);
                assert!(matches!(err, Err(StoreError::Corrupt(_))));
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blocks_split_at_key_boundaries() {
        let path = temp_path("blocks");
        let mut w = SsTableWriter::create(&path, 64, 10).unwrap(); // tiny blocks
        for i in 0..50u32 {
            let key = format!("k{i:04}");
            // Two versions per key; both must land in the same block.
            w.add(key.as_bytes(), (100 + i) as u64, Some(b"new"))
                .unwrap();
            w.add(key.as_bytes(), i as u64 + 1, Some(b"old")).unwrap();
        }
        w.finish().unwrap();
        let r = SsTableReader::open(&path).unwrap();
        for i in 0..50u32 {
            let key = format!("k{i:04}");
            assert_eq!(
                r.get(key.as_bytes(), u64::MAX).unwrap(),
                Some(Some(b"new".to_vec())),
                "key {key}"
            );
            assert_eq!(
                r.get(key.as_bytes(), 99).unwrap(),
                Some(Some(b"old".to_vec())),
                "key {key} old version"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
