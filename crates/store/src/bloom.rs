//! A bloom filter for SSTable key lookups, as in LevelDB's filter blocks.
//!
//! Uses the standard double-hashing scheme (Kirsch–Mitzenmacher) over two
//! FNV-1a variants, with ~10 bits per key for a ≈1% false-positive rate.

/// A serializable bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u8>,
    k: u8,
}

fn fnv1a(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Bloom {
    /// Builds a filter over `keys` with `bits_per_key` bits per key
    /// (LevelDB's default policy is 10).
    pub fn from_keys<K: AsRef<[u8]>>(keys: &[K], bits_per_key: usize) -> Self {
        let n_bits = (keys.len().max(1) * bits_per_key).max(64);
        let n_bytes = n_bits.div_ceil(8);
        // Optimal k ≈ bits_per_key · ln 2, clamped like LevelDB.
        let k = ((bits_per_key as f64 * 0.69) as u8).clamp(1, 30);
        let mut bits = vec![0u8; n_bytes];
        for key in keys {
            set_key(&mut bits, key.as_ref(), k);
        }
        Bloom { bits, k }
    }

    /// Whether `key` may be in the set (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let n_bits = (self.bits.len() * 8) as u64;
        let h1 = fnv1a(key, 0);
        let h2 = fnv1a(key, 0x9E37_79B9_7F4A_7C15);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % n_bits;
            if self.bits[(bit / 8) as usize] & (1 << (bit % 8)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serializes as `[k, bits…]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.bits.len());
        out.push(self.k);
        out.extend_from_slice(&self.bits);
        out
    }

    /// Parses the [`Bloom::encode`] format.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let (&k, bits) = data.split_first()?;
        if k == 0 || k > 30 {
            return None;
        }
        Some(Bloom {
            bits: bits.to_vec(),
            k,
        })
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + self.bits.len()
    }
}

fn set_key(bits: &mut [u8], key: &[u8], k: u8) {
    let n_bits = (bits.len() * 8) as u64;
    let h1 = fnv1a(key, 0);
    let h2 = fnv1a(key, 0x9E37_79B9_7F4A_7C15);
    for i in 0..k as u64 {
        let bit = h1.wrapping_add(i.wrapping_mul(h2)) % n_bits;
        bits[(bit / 8) as usize] |= 1 << (bit % 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..1000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let bloom = Bloom::from_keys(&keys, 10);
        for k in &keys {
            assert!(bloom.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<Vec<u8>> = (0..2000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let bloom = Bloom::from_keys(&keys, 10);
        let mut fp = 0;
        let probes = 10_000u32;
        for i in 0..probes {
            let probe = (1_000_000 + i).to_le_bytes();
            if bloom.may_contain(&probe) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn encode_decode_round_trip() {
        let keys = [b"alpha".as_slice(), b"beta", b"gamma"];
        let bloom = Bloom::from_keys(&keys, 10);
        let decoded = Bloom::decode(&bloom.encode()).unwrap();
        assert_eq!(decoded, bloom);
        assert!(decoded.may_contain(b"alpha"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Bloom::decode(&[]).is_none());
        assert!(Bloom::decode(&[0, 1, 2]).is_none(), "k = 0 invalid");
        assert!(Bloom::decode(&[99, 1, 2]).is_none(), "k too large");
    }

    #[test]
    fn empty_key_set_is_valid() {
        let bloom = Bloom::from_keys::<&[u8]>(&[], 10);
        // May return anything for probes, but must not panic.
        let _ = bloom.may_contain(b"x");
    }
}
