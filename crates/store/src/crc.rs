//! CRC-32 (IEEE 802.3 polynomial), table-driven, implemented from scratch.
//!
//! Used to frame write-ahead-log records and to checksum SSTable blocks, the
//! same role the CRC plays in LevelDB's log format.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// Computes the CRC-32 of `data`.
///
/// # Examples
///
/// ```
/// // The classic check value for "123456789".
/// assert_eq!(grub_store::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello world".to_vec();
        let clean = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
