//! The top-level database: WAL + memtable + leveled SSTables.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};

use crate::cache::{BlockCache, CachedBlock};
use crate::memtable::Memtable;
use crate::sstable::{SsTableReader, SsTableWriter, TableEntry};
use crate::wal::{Wal, WalRecord};
use crate::Result;

/// Tuning knobs, mirroring LevelDB's `Options`.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Memtable size that triggers a flush to L0.
    pub memtable_bytes: usize,
    /// Number of L0 files that triggers compaction into L1.
    pub l0_compaction_trigger: usize,
    /// Target data-block size inside SSTables.
    pub block_bytes: usize,
    /// Bloom-filter bits per key.
    pub bits_per_key: usize,
    /// Whether to fsync the WAL on every write.
    pub sync_writes: bool,
    /// Block-cache capacity in data blocks (`GRUB_BLOCK_CACHE`; 0 disables).
    pub block_cache_capacity: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            memtable_bytes: 1 << 20,
            l0_compaction_trigger: 4,
            block_bytes: 4096,
            bits_per_key: 10,
            sync_writes: false,
            block_cache_capacity: std::env::var("GRUB_BLOCK_CACHE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1024),
        }
    }
}

/// Cumulative read-path counters since open.
///
/// Caching and filtering only change *how much I/O* a read performs, never
/// its result, so these counters are observability-only: they must not feed
/// any digest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Block-cache hits.
    pub cache_hits: u64,
    /// Block-cache misses (each implies one block read).
    pub cache_misses: u64,
    /// Table probes skipped by a bloom-filter true negative.
    pub bloom_skips: u64,
    /// Table probes skipped because the key falls outside the table's span.
    pub span_skips: u64,
    /// Data blocks read (and CRC-checked) from disk.
    pub block_reads: u64,
}

/// A consistent read point.
///
/// Snapshot reads observe the database as of [`Db::snapshot`]. They remain
/// valid until the next compaction (which drops superseded versions) — a
/// documented simplification relative to LevelDB's snapshot pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    seq: u64,
}

#[derive(Debug)]
struct Table {
    path: PathBuf,
    reader: SsTableReader,
    /// Monotonic file number (never reused) — the cache key prefix.
    file_no: u64,
}

/// The storage engine facade: `put`/`get`/`delete`/`scan` with durability.
#[derive(Debug)]
pub struct Db {
    dir: PathBuf,
    opts: Options,
    wal: Wal,
    mem: Memtable,
    seq: u64,
    next_file_no: u64,
    /// L0: newest file last; files may overlap.
    l0: Vec<Table>,
    /// L1: non-overlapping, sorted by smallest key.
    l1: Vec<Table>,
    flush_count: u64,
    compaction_count: u64,
    cache: BlockCache,
    reads: RefCell<ReadStats>,
}

impl Db {
    /// Opens (creating if needed) a database under `dir`, replaying the WAL
    /// and registering existing SSTables.
    ///
    /// # Errors
    ///
    /// Filesystem failures, or [`crate::StoreError::Corrupt`] for damaged tables.
    pub fn open(dir: impl Into<PathBuf>, opts: Options) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut l0 = Vec::new();
        let mut l1 = Vec::new();
        let mut next_file_no = 1u64;
        let mut names: Vec<(u64, u8, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some((no, level)) = parse_table_name(&name) {
                names.push((no, level, entry.path()));
                next_file_no = next_file_no.max(no + 1);
            } else if name.ends_with(".tmp") && name != "SEQ.tmp" {
                // A crash mid-flush leaves a partial `.sst.tmp` behind (the
                // writer renames only on a complete, synced finish). Its
                // contents are still covered by the WAL — the WAL is reset
                // strictly after the rename — so the leftover is dead weight:
                // sweep it. SEQ.tmp follows its own temp+rename discipline.
                std::fs::remove_file(entry.path()).ok();
            }
        }
        names.sort();
        // The SEQ sidecar (written on every flush, LevelDB-MANIFEST style)
        // guards against sequence regression: compaction drops tombstones at
        // the bottom level, so the max over surviving records can undercount.
        // Flush order (table → SEQ → WAL reset) guarantees max(SEQ, WAL)
        // covers every SSTable record, so when the sidecar is present the
        // per-record scan below is skipped.
        let mut max_seq = 0u64;
        let mut have_sidecar = false;
        match std::fs::read(dir.join("SEQ")) {
            Ok(bytes) => {
                if let Ok(bytes) = <[u8; 8]>::try_from(bytes.as_slice()) {
                    max_seq = u64::from_le_bytes(bytes);
                    have_sidecar = true;
                }
                // A torn sidecar (wrong length) falls back to the scan.
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(crate::StoreError::Io(e)),
        }
        for (no, level, path) in names {
            let reader = SsTableReader::open(&path)?;
            if !have_sidecar {
                // Pre-sidecar directory: recover the sequence the old way,
                // from the max over surviving records.
                for e in reader.iter_all()? {
                    max_seq = max_seq.max(e.seq);
                }
            }
            let table = Table {
                path,
                reader,
                file_no: no,
            };
            if level == 0 {
                l0.push(table);
            } else {
                l1.push(table);
            }
        }
        l1.sort_by(|a, b| a.reader.smallest().cmp(b.reader.smallest()));
        // Replay the WAL into a fresh memtable.
        let wal_path = dir.join("wal.log");
        let mut mem = Memtable::new();
        for rec in Wal::replay(&wal_path)? {
            max_seq = max_seq.max(rec.seq);
            mem.insert(rec.key, rec.seq, rec.value);
        }
        let wal = Wal::open(&wal_path)?;
        Ok(Db {
            dir,
            opts,
            wal,
            mem,
            seq: max_seq,
            next_file_no,
            l0,
            l1,
            flush_count: 0,
            compaction_count: 0,
            cache: BlockCache::new(opts.block_cache_capacity),
            reads: RefCell::new(ReadStats::default()),
        })
    }

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// WAL or flush I/O failures.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        self.write(key, Some(value))
    }

    /// Removes `key` (writes a tombstone).
    ///
    /// # Errors
    ///
    /// WAL or flush I/O failures.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.write(key.to_vec(), None)
    }

    fn write(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) -> Result<()> {
        self.seq += 1;
        let rec = WalRecord {
            seq: self.seq,
            key: key.clone(),
            value: value.clone(),
        };
        self.wal.append(&rec)?;
        if self.opts.sync_writes {
            self.wal.sync()?;
        }
        self.mem.insert(key, self.seq, value);
        if self.mem.approx_bytes() >= self.opts.memtable_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Reads the latest value of `key`.
    ///
    /// # Errors
    ///
    /// I/O or corruption while consulting SSTables.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_at(key, Snapshot { seq: u64::MAX })
    }

    /// Creates a read snapshot at the current sequence number.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { seq: self.seq }
    }

    /// Reads `key` as of `snapshot`.
    ///
    /// # Errors
    ///
    /// I/O or corruption while consulting SSTables.
    pub fn get_at(&self, key: &[u8], snapshot: Snapshot) -> Result<Option<Vec<u8>>> {
        if let Some(opinion) = self.mem.get(key, snapshot.seq) {
            return Ok(opinion.cloned());
        }
        for table in self.l0.iter().rev() {
            if let Some(opinion) = self.table_get(table, key, snapshot.seq)? {
                return Ok(opinion);
            }
        }
        // L1 is non-overlapping: at most one candidate table.
        let idx = self.l1.partition_point(|t| t.reader.largest() < key);
        if let Some(table) = self.l1.get(idx) {
            if let Some(opinion) = self.table_get(table, key, snapshot.seq)? {
                return Ok(opinion);
            }
        }
        Ok(None)
    }

    /// Point lookup in one table, with the span and bloom checks hoisted
    /// above any block I/O: a miss on a table whose span or bloom excludes
    /// the key costs zero block reads.
    fn table_get(
        &self,
        table: &Table,
        key: &[u8],
        seq_limit: u64,
    ) -> Result<Option<Option<Vec<u8>>>> {
        let r = &table.reader;
        if key < r.smallest() || key > r.largest() {
            self.reads.borrow_mut().span_skips += 1;
            return Ok(None);
        }
        if !r.may_contain(key) {
            self.reads.borrow_mut().bloom_skips += 1;
            return Ok(None);
        }
        // First block whose last_key >= key: the only candidate.
        let Some(idx) = r.find_block_idx(key) else {
            return Ok(None);
        };
        let block = self.cached_block(table, idx)?;
        Ok(block
            .iter()
            .find(|e| e.key == key && e.seq <= seq_limit)
            .map(|e| e.value.clone()))
    }

    /// Fetches data block `idx` of `table` through the block cache.
    fn cached_block(&self, table: &Table, idx: usize) -> Result<CachedBlock> {
        if let Some(block) = self.cache.get(table.file_no, idx) {
            self.reads.borrow_mut().cache_hits += 1;
            return Ok(block);
        }
        let block = std::sync::Arc::new(table.reader.block_at(idx)?);
        {
            let mut reads = self.reads.borrow_mut();
            reads.cache_misses += 1;
            reads.block_reads += 1;
        }
        self.cache.insert(table.file_no, idx, block.clone());
        Ok(block)
    }

    /// Ordered scan of live keys in `[start, end)` (unbounded when `None`).
    ///
    /// # Errors
    ///
    /// I/O or corruption while consulting SSTables.
    pub fn scan(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_at(start, end, Snapshot { seq: u64::MAX })
    }

    /// Ordered scan as of a snapshot.
    ///
    /// # Errors
    ///
    /// I/O or corruption while consulting SSTables.
    pub fn scan_at(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        snapshot: Snapshot,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let in_range = |key: &[u8]| {
            start.map(|s| key >= s).unwrap_or(true) && end.map(|e| key < e).unwrap_or(true)
        };
        // Winner per key = version with the highest seq ≤ snapshot.
        let mut best: BTreeMap<Vec<u8>, (u64, Option<Vec<u8>>)> = BTreeMap::new();
        let mut offer = |key: &[u8], seq: u64, value: Option<Vec<u8>>| {
            if seq > snapshot.seq || !in_range(key) {
                return;
            }
            match best.get(key) {
                Some((s, _)) if *s >= seq => {}
                _ => {
                    best.insert(key.to_vec(), (seq, value));
                }
            }
        };
        for table in self.l1.iter().chain(self.l0.iter()) {
            let r = &table.reader;
            // Skip tables whose key span cannot intersect the scan range.
            if start.map(|s| r.largest() < s).unwrap_or(false)
                || end.map(|e| r.smallest() >= e).unwrap_or(false)
            {
                self.reads.borrow_mut().span_skips += 1;
                continue;
            }
            // Seek into the first block that can hold `start` instead of
            // iterating the table from the front; stop at the first key past
            // `end` (blocks and entries are key-ascending).
            let first = match start {
                Some(s) => r.find_block_idx(s).unwrap_or(r.block_count()),
                None => 0,
            };
            'blocks: for idx in first..r.block_count() {
                let block = self.cached_block(table, idx)?;
                for TableEntry { key, seq, value } in block.iter() {
                    if end.map(|e| key.as_slice() >= e).unwrap_or(false) {
                        break 'blocks;
                    }
                    offer(key, *seq, value.clone());
                }
            }
        }
        let sb = start.map(Bound::Included).unwrap_or(Bound::Unbounded);
        let eb = end.map(Bound::Excluded).unwrap_or(Bound::Unbounded);
        for (key, value) in self.mem.range_visible(sb, eb, snapshot.seq) {
            // Memtable versions are newest overall: they win outright.
            best.insert(key, (u64::MAX, value));
        }
        Ok(best
            .into_iter()
            .filter_map(|(k, (_, v))| v.map(|v| (k, v)))
            .collect())
    }

    /// Flushes the memtable to a fresh L0 table and truncates the WAL.
    ///
    /// # Errors
    ///
    /// I/O failures writing the table.
    pub fn flush(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let (file_no, path) = self.table_path(0);
        let mut w = SsTableWriter::create(&path, self.opts.block_bytes, self.opts.bits_per_key)?;
        for (key, version) in self.mem.iter_all() {
            w.add(key, version.seq, version.value.as_deref())?;
        }
        let path = w.finish()?;
        let reader = SsTableReader::open(&path)?;
        self.l0.push(Table {
            path,
            reader,
            file_no,
        });
        self.mem = Memtable::new();
        // Persist the sequence BEFORE truncating the WAL: a crash in between
        // leaves both sources available and recovery takes the max.
        self.persist_sequence()?;
        self.wal.reset()?;
        self.flush_count += 1;
        if self.l0.len() >= self.opts.l0_compaction_trigger {
            self.compact()?;
        }
        Ok(())
    }

    /// Merges all L0 and L1 tables into a fresh non-overlapping L1,
    /// keeping only the newest version per key and dropping tombstones
    /// (L1 is the bottom level).
    ///
    /// # Errors
    ///
    /// I/O failures reading or writing tables.
    pub fn compact(&mut self) -> Result<()> {
        if self.l0.is_empty() && self.l1.len() <= 1 {
            return Ok(());
        }
        let mut best: BTreeMap<Vec<u8>, (u64, Option<Vec<u8>>)> = BTreeMap::new();
        for table in self.l1.iter().chain(self.l0.iter()) {
            for TableEntry { key, seq, value } in table.reader.iter_all()? {
                match best.get(&key) {
                    Some((s, _)) if *s >= seq => {}
                    _ => {
                        best.insert(key, (seq, value));
                    }
                }
            }
        }
        let old: Vec<(u64, PathBuf)> = self
            .l0
            .drain(..)
            .chain(self.l1.drain(..))
            .map(|t| (t.file_no, t.path))
            .collect();
        // Write out live entries, splitting files at ~2 MiB.
        const TARGET: usize = 2 << 20;
        let mut writer: Option<(u64, SsTableWriter)> = None;
        let mut written = 0usize;
        let mut new_paths = Vec::new();
        for (key, (seq, value)) in best {
            let Some(v) = value else { continue }; // drop tombstones at bottom
            if writer.is_none() {
                let (no, path) = self.table_path(1);
                writer = Some((
                    no,
                    SsTableWriter::create(&path, self.opts.block_bytes, self.opts.bits_per_key)?,
                ));
                written = 0;
            }
            // grub-lint: allow(panic) — the branch above just filled `writer` when it was None
            let (_, w) = writer.as_mut().expect("just created");
            w.add(&key, seq, Some(&v))?;
            written += key.len() + v.len() + 17;
            if written >= TARGET {
                // grub-lint: allow(panic) — `written` only grows after `writer` is Some
                let (no, w) = writer.take().expect("present");
                new_paths.push((no, w.finish()?));
            }
        }
        if let Some((no, w)) = writer {
            new_paths.push((no, w.finish()?));
        }
        for (file_no, path) in new_paths {
            let reader = SsTableReader::open(&path)?;
            self.l1.push(Table {
                path,
                reader,
                file_no,
            });
        }
        self.l1
            .sort_by(|a, b| a.reader.smallest().cmp(b.reader.smallest()));
        for (file_no, path) in old {
            // File numbers are never reused, so a forgotten eviction could
            // never alias — but dead blocks would squat in the cache.
            self.cache.evict_table(file_no);
            std::fs::remove_file(&path).ok();
        }
        self.compaction_count += 1;
        Ok(())
    }

    fn table_path(&mut self, level: u8) -> (u64, PathBuf) {
        let no = self.next_file_no;
        self.next_file_no += 1;
        (no, self.dir.join(format!("{no:06}-l{level}.sst")))
    }

    /// Durably records the current sequence number in the SEQ sidecar:
    /// temp-file + fsync + rename + directory fsync, so a crash at any
    /// point leaves either the old or the new sidecar intact — matching
    /// the sync discipline of the SSTable and WAL paths.
    fn persist_sequence(&self) -> Result<()> {
        let tmp = self.dir.join("SEQ.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, &self.seq.to_le_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join("SEQ"))?;
        // Persist the rename itself (best effort on platforms where
        // directories cannot be opened for sync).
        if let Ok(d) = std::fs::File::open(&self.dir) {
            d.sync_all().ok();
        }
        Ok(())
    }

    /// (L0 file count, L1 file count, flushes, compactions) — for tests.
    pub fn stats(&self) -> (usize, usize, u64, u64) {
        (
            self.l0.len(),
            self.l1.len(),
            self.flush_count,
            self.compaction_count,
        )
    }

    /// Cumulative read-path counters (cache, bloom/span skips, block reads).
    pub fn read_stats(&self) -> ReadStats {
        *self.reads.borrow()
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current write sequence number.
    pub fn sequence(&self) -> u64 {
        self.seq
    }
}

fn parse_table_name(name: &str) -> Option<(u64, u8)> {
    let rest = name.strip_suffix(".sst")?;
    let (no, level) = rest.split_once("-l")?;
    Some((no.parse().ok()?, level.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grub-db-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_opts() -> Options {
        Options {
            memtable_bytes: 1024,
            l0_compaction_trigger: 3,
            block_bytes: 512,
            bits_per_key: 10,
            sync_writes: false,
            block_cache_capacity: 64,
        }
    }

    #[test]
    fn sequence_survives_tombstone_dropping_compaction() {
        // The newest operation is a delete; its tombstone is flushed and then
        // compacted away (L1 drops tombstones). Recovery must still restore
        // the pre-crash sequence number via the SEQ sidecar.
        let dir = temp_dir("seq-sidecar");
        let mut db = Db::open(&dir, small_opts()).unwrap();
        db.put(b"a".to_vec(), b"1".to_vec()).unwrap();
        db.put(b"b".to_vec(), b"2".to_vec()).unwrap();
        db.delete(b"b").unwrap();
        db.flush().unwrap();
        db.compact().unwrap();
        let seq = db.sequence();
        drop(db);
        let db = Db::open(&dir, small_opts()).unwrap();
        assert_eq!(db.sequence(), seq, "sequence regressed across recovery");
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn put_get_delete() {
        let dir = temp_dir("basic");
        let mut db = Db::open(&dir, Options::default()).unwrap();
        db.put(b"a".to_vec(), b"1".to_vec()).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        db.put(b"a".to_vec(), b"2".to_vec()).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"2".to_vec()));
        db.delete(b"a").unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn survives_flush_and_compaction() {
        let dir = temp_dir("churn");
        let mut db = Db::open(&dir, small_opts()).unwrap();
        for i in 0..500u32 {
            db.put(
                format!("key{:04}", i % 100).into_bytes(),
                format!("val{i}").into_bytes(),
            )
            .unwrap();
        }
        // Every key holds its latest value.
        for k in 0..100u32 {
            let expect = format!("val{}", 400 + k);
            assert_eq!(
                db.get(format!("key{k:04}").as_bytes()).unwrap(),
                Some(expect.into_bytes()),
                "key{k:04}"
            );
        }
        let (_, _, flushes, compactions) = db.stats();
        assert!(flushes > 0, "flushes must have happened");
        assert!(compactions > 0, "compactions must have happened");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deletes_survive_flush() {
        let dir = temp_dir("del");
        let mut db = Db::open(&dir, small_opts()).unwrap();
        db.put(b"gone".to_vec(), b"x".to_vec()).unwrap();
        db.flush().unwrap();
        db.delete(b"gone").unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"gone").unwrap(), None);
        // And after compaction removes the tombstone, still gone.
        db.compact().unwrap();
        assert_eq!(db.get(b"gone").unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_from_wal_and_tables() {
        let dir = temp_dir("reopen");
        {
            let mut db = Db::open(&dir, small_opts()).unwrap();
            for i in 0..200u32 {
                db.put(
                    format!("k{i:04}").into_bytes(),
                    format!("v{i}").into_bytes(),
                )
                .unwrap();
            }
            // Some writes remain only in the WAL (no explicit flush).
        }
        let db = Db::open(&dir, small_opts()).unwrap();
        for i in 0..200u32 {
            assert_eq!(
                db.get(format!("k{i:04}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "k{i:04}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let dir = temp_dir("scan");
        let mut db = Db::open(&dir, small_opts()).unwrap();
        for i in (0..100u32).rev() {
            db.put(
                format!("k{i:04}").into_bytes(),
                format!("v{i}").into_bytes(),
            )
            .unwrap();
        }
        db.delete(b"k0050").unwrap();
        let out = db.scan(Some(b"k0040"), Some(b"k0060")).unwrap();
        let keys: Vec<String> = out
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys.len(), 19, "20 keys in range minus 1 deleted");
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert!(!keys.contains(&"k0050".to_string()));
        assert_eq!(keys[0], "k0040");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_reads_see_frozen_state() {
        let dir = temp_dir("snap");
        let mut db = Db::open(&dir, Options::default()).unwrap();
        db.put(b"x".to_vec(), b"old".to_vec()).unwrap();
        let snap = db.snapshot();
        db.put(b"x".to_vec(), b"new".to_vec()).unwrap();
        db.put(b"y".to_vec(), b"fresh".to_vec()).unwrap();
        assert_eq!(db.get_at(b"x", snap).unwrap(), Some(b"old".to_vec()));
        assert_eq!(db.get_at(b"y", snap).unwrap(), None);
        assert_eq!(db.get(b"x").unwrap(), Some(b"new".to_vec()));
        let scanned = db.scan_at(None, None, snap).unwrap();
        assert_eq!(scanned, vec![(b"x".to_vec(), b"old".to_vec())]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_spans_flush() {
        let dir = temp_dir("snapflush");
        let mut db = Db::open(&dir, small_opts()).unwrap();
        db.put(b"k".to_vec(), b"before".to_vec()).unwrap();
        let snap = db.snapshot();
        db.put(b"k".to_vec(), b"after".to_vec()).unwrap();
        db.flush().unwrap();
        assert_eq!(db.get_at(b"k", snap).unwrap(), Some(b"before".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn large_values_cross_blocks() {
        let dir = temp_dir("large");
        let mut db = Db::open(&dir, small_opts()).unwrap();
        let big = vec![0xabu8; 10_000];
        db.put(b"big".to_vec(), big.clone()).unwrap();
        db.flush().unwrap();
        assert_eq!(db.get(b"big").unwrap(), Some(big));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_mid_flush_crash_leaves_reopenable_dir() {
        use grub_fault::{arm, injection_lock, FaultPlan, FaultPoint};
        let _guard = injection_lock();
        let dir = temp_dir("midflush");
        {
            let mut db = Db::open(&dir, small_opts()).unwrap();
            db.put(b"a".to_vec(), b"1".to_vec()).unwrap();
            db.put(b"b".to_vec(), b"2".to_vec()).unwrap();
            arm(FaultPlan::at(FaultPoint::MidSstableFlush));
            let err = db.flush().unwrap_err();
            assert!(
                matches!(err, crate::StoreError::Injected(_)),
                "expected injected crash, got {err}"
            );
            // Simulated process death: drop without cleanup.
        }
        // The partial .tmp table is on disk; the WAL still covers the data.
        let has_tmp = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
        assert!(has_tmp, "crash artifact (.tmp table) expected on disk");
        let mut db = Db::open(&dir, small_opts()).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        // The sweep removed the leftover and a clean flush now succeeds.
        let has_tmp = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
        assert!(!has_tmp, "stray .tmp must be swept on open");
        db.flush().unwrap();
        drop(db);
        let db = Db::open(&dir, small_opts()).unwrap();
        assert_eq!(db.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn miss_on_multi_table_db_reads_zero_blocks() {
        let dir = temp_dir("missfree");
        let mut opts = small_opts();
        opts.l0_compaction_trigger = 100; // keep every flush as its own L0 table
        let mut db = Db::open(&dir, opts).unwrap();
        for t in 0..4u32 {
            for i in 0..20u32 {
                db.put(format!("k{t}-{i:04}").into_bytes(), b"v".to_vec())
                    .unwrap();
            }
            db.flush().unwrap();
        }
        let (l0, _, _, _) = db.stats();
        assert!(l0 >= 4, "test needs several tables, got {l0}");
        let before = db.read_stats();
        // Out of every table's span: the span check alone must answer.
        assert_eq!(db.get(b"zz-absent").unwrap(), None);
        // Inside table 0's span but never written: the bloom must answer.
        assert_eq!(db.get(b"k0-0007x").unwrap(), None);
        let after = db.read_stats();
        assert_eq!(
            after.block_reads, before.block_reads,
            "a miss must perform zero block reads"
        );
        assert!(after.span_skips > before.span_skips);
        assert!(after.bloom_skips > before.bloom_skips);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_and_warm_cache_agree() {
        let dir = temp_dir("cachecold");
        let write = |opts: Options| {
            let mut db = Db::open(&dir, opts).unwrap();
            for i in 0..300u32 {
                db.put(
                    format!("k{:04}", i % 60).into_bytes(),
                    format!("v{i}").into_bytes(),
                )
                .unwrap();
            }
            db.flush().unwrap();
            db
        };
        let mut cold_opts = small_opts();
        cold_opts.block_cache_capacity = 0;
        let db = write(cold_opts);
        let cold: Vec<_> = (0..60u32)
            .map(|k| db.get(format!("k{k:04}").as_bytes()).unwrap())
            .collect();
        assert_eq!(db.read_stats().cache_hits, 0, "disabled cache never hits");
        drop(db);
        std::fs::remove_dir_all(&dir).ok();

        let db = write(small_opts());
        let warm: Vec<_> = (0..60u32)
            .map(|k| db.get(format!("k{k:04}").as_bytes()).unwrap())
            .collect();
        // Second pass over the same keys: answers identical, all from cache.
        let miss_high = db.read_stats().cache_misses;
        let rewarm: Vec<_> = (0..60u32)
            .map(|k| db.get(format!("k{k:04}").as_bytes()).unwrap())
            .collect();
        assert_eq!(cold, warm, "cache must not change results");
        assert_eq!(warm, rewarm);
        let stats = db.read_stats();
        assert_eq!(stats.cache_misses, miss_high, "warm pass misses nothing");
        assert!(stats.cache_hits > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_cache_evicts_but_stays_correct() {
        let dir = temp_dir("cachetiny");
        let mut opts = small_opts();
        opts.block_cache_capacity = 2; // far fewer than the blocks touched
        let mut db = Db::open(&dir, opts).unwrap();
        for i in 0..200u32 {
            db.put(
                format!("k{i:04}").into_bytes(),
                format!("v{i}").into_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
        for i in 0..200u32 {
            assert_eq!(
                db.get(format!("k{i:04}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weak_bloom_false_positives_do_not_change_results() {
        // One bit per key makes bloom false positives near-certain; every
        // read must still agree with a strong-bloom database.
        let load = |dir: &PathBuf, bits: usize| {
            let mut opts = small_opts();
            opts.bits_per_key = bits;
            let mut db = Db::open(dir, opts).unwrap();
            for i in 0..150u32 {
                db.put(
                    format!("k{i:04}").into_bytes(),
                    format!("v{i}").into_bytes(),
                )
                .unwrap();
            }
            db.delete(b"k0077").unwrap();
            db.flush().unwrap();
            db
        };
        let dir_weak = temp_dir("bloomweak");
        let dir_strong = temp_dir("bloomstrong");
        let weak = load(&dir_weak, 1);
        let strong = load(&dir_strong, 10);
        for i in 0..150u32 {
            for probe in [format!("k{i:04}"), format!("k{i:04}x"), format!("q{i:04}")] {
                assert_eq!(
                    weak.get(probe.as_bytes()).unwrap(),
                    strong.get(probe.as_bytes()).unwrap(),
                    "probe {probe}"
                );
            }
        }
        std::fs::remove_dir_all(&dir_weak).ok();
        std::fs::remove_dir_all(&dir_strong).ok();
    }

    #[test]
    fn scan_seeks_past_leading_blocks() {
        let dir = temp_dir("scanseek");
        let mut db = Db::open(&dir, small_opts()).unwrap();
        for i in 0..400u32 {
            db.put(
                format!("k{i:04}").into_bytes(),
                format!("v{i}").into_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
        db.compact().unwrap();
        let before = db.read_stats().block_reads;
        let out = db.scan(Some(b"k0390"), None).unwrap();
        assert_eq!(out.len(), 10);
        let tail_reads = db.read_stats().block_reads - before;
        let before = db.read_stats().block_reads;
        let all = db.scan(None, None).unwrap();
        assert_eq!(all.len(), 400);
        let full_reads = db.read_stats().block_reads - before;
        assert!(
            tail_reads < full_reads,
            "tail scan ({tail_reads} reads) must seek past blocks a full scan \
             ({full_reads} reads) touches"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_db_behaves() {
        let dir = temp_dir("empty");
        let mut db = Db::open(&dir, Options::default()).unwrap();
        assert_eq!(db.get(b"nothing").unwrap(), None);
        assert!(db.scan(None, None).unwrap().is_empty());
        db.flush().unwrap(); // no-op
        db.compact().unwrap(); // no-op
        std::fs::remove_dir_all(&dir).ok();
    }
}
