//! A reusable worker-thread pool for scoped, borrow-carrying jobs.
//!
//! The engine's parallel staging previously spawned fresh OS threads every
//! round (`std::thread::scope`), and on small per-round work the spawn/join
//! overhead dominated — parallel staging benched *slower* than sequential
//! (the `seq_par_speedup: 0.819` baseline regression). This crate keeps the
//! workers alive across rounds and re-creates the scoped-borrow guarantee by
//! hand: [`WorkerPool::run_scoped`] does not return until every submitted
//! job has acknowledged completion, so jobs may safely borrow from the
//! caller's stack frame even though the worker threads outlive it.
//!
//! This crate holds the workspace's single `unsafe` block (the engine itself
//! stays `#![forbid(unsafe_code)]`): a lifetime transmute that erases a
//! job's borrow lifetime. The soundness argument lives on
//! [`WorkerPool::run_scoped`].

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A job after its borrow lifetime has been erased.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion acknowledgment: job index plus the panic payload, if any.
type Ack = (usize, Option<Box<dyn Any + Send>>);

struct Worker {
    /// Closing this sender ends the worker's receive loop (see `Drop`).
    job_tx: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// A fixed-size pool of long-lived worker threads running scoped jobs.
///
/// Jobs submitted in one [`WorkerPool::run_scoped`] call are distributed
/// round-robin over the workers; each worker runs its share strictly in
/// submission order.
pub struct WorkerPool {
    workers: Vec<Worker>,
    done_tx: Sender<Ack>,
    done_rx: Receiver<Ack>,
}

impl WorkerPool {
    /// Creates a pool with `threads` worker threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        let (done_tx, done_rx) = channel();
        let workers = (0..threads.max(1))
            .map(|i| {
                let (job_tx, job_rx) = channel::<Job>();
                let handle = std::thread::Builder::new()
                    .name(format!("grub-pool-{i}"))
                    .spawn(move || {
                        // Every job is pre-wrapped to catch panics, so this
                        // loop can only end when the sender is dropped.
                        while let Ok(job) = job_rx.recv() {
                            job();
                        }
                    })
                    // grub-lint: allow(panic) — failing to spawn a thread at pool construction is unrecoverable
                    .expect("spawn pool worker thread");
                Worker {
                    job_tx: Some(job_tx),
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool {
            workers,
            done_tx,
            done_rx,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `jobs` on the pool, blocking until every job has finished.
    ///
    /// # Safety argument
    ///
    /// Jobs may borrow from the caller's frame (`'env`); the lifetime is
    /// erased with a transmute (a `dyn FnOnce` fat pointer's layout does not
    /// depend on its lifetime parameter). This is sound because no borrow
    /// can outlive this call:
    ///
    /// * every job handed to a worker is wrapped so it *always* sends a
    ///   completion ack, even when it panics (`catch_unwind`);
    /// * this method receives exactly one ack per job actually sent before
    ///   returning, and the receive loop cannot end early: `self` holds a
    ///   live `done_tx` clone, so `recv` can only block, never observe a
    ///   closed channel. A lost worker therefore deadlocks rather than
    ///   letting a borrow dangle — and workers cannot be lost, since their
    ///   loop only runs wrapped jobs, which never unwind;
    /// * a job panic is re-raised only after all acks arrived.
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-indexed job panic once every job completed.
    pub fn run_scoped<'env>(&mut self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let n = self.workers.len();
        let mut sent = 0usize;
        let mut send_failures = 0usize;
        for (idx, job) in jobs.into_iter().enumerate() {
            // SAFETY: lifetime erasure only — see the method docs. The
            // erased borrows cannot dangle because this call blocks for one
            // ack per sent job, and a sent job acks (panic or not) strictly
            // after its last use of the borrows.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            let done = self.done_tx.clone();
            let wrapped: Job = Box::new(move || {
                let payload = catch_unwind(AssertUnwindSafe(job)).err();
                // Cannot fail: the pool holds `done_rx` for the whole run.
                let _ = done.send((idx, payload));
            });
            match self.workers[idx % n].job_tx.as_ref() {
                Some(tx) if tx.send(wrapped).is_ok() => sent += 1,
                _ => send_failures += 1,
            }
        }
        // Drain exactly the acks owed. Job completion order is arbitrary;
        // re-raising the lowest job index keeps panic reports deterministic.
        let mut first_panic: Option<(usize, Box<dyn Any + Send>)> = None;
        for _ in 0..sent {
            let (idx, payload) = self
                .done_rx
                .recv()
                // grub-lint: allow(panic) — unreachable: self.done_tx keeps the ack channel open
                .expect("ack channel cannot close during a run");
            if let Some(p) = payload {
                if first_panic.as_ref().map(|(i, _)| idx < *i).unwrap_or(true) {
                    first_panic = Some((idx, p));
                }
            }
        }
        if let Some((_, payload)) = first_panic {
            resume_unwind(payload);
        }
        // grub-lint: allow(panic) — a closed worker queue here means the pool invariant broke; fail loudly
        assert!(
            send_failures == 0,
            "worker pool lost {send_failures} worker(s)"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close every queue first so all workers wind down concurrently,
        // then join.
        for w in &mut self.workers {
            w.job_tx.take();
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                h.join().ok();
            }
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_borrow_the_callers_frame() {
        let mut pool = WorkerPool::new(3);
        let mut slots = vec![0u64; 8];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                let job: Box<dyn FnOnce() + Send + '_> =
                    Box::new(move || *slot = (i as u64 + 1) * 10);
                job
            })
            .collect();
        pool.run_scoped(jobs);
        assert_eq!(slots, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let mut pool = WorkerPool::new(2);
        let mut total = 0u64;
        for round in 0..50u64 {
            let mut parts = [0u64; 4];
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = parts
                .iter_mut()
                .map(|p| {
                    let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || *p = round);
                    job
                })
                .collect();
            pool.run_scoped(jobs);
            total += parts.iter().sum::<u64>();
        }
        assert_eq!(total, 4 * (0..50).sum::<u64>());
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let mut pool = WorkerPool::new(2);
        let mut hits = [false; 64];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = hits
            .iter_mut()
            .map(|h| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || *h = true);
                job
            })
            .collect();
        pool.run_scoped(jobs);
        assert!(hits.iter().all(|h| *h));
    }

    #[test]
    fn job_panic_propagates_after_all_jobs_finish() {
        let mut pool = WorkerPool::new(2);
        let mut ok = [false; 3];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let (a, rest) = ok.split_at_mut(1);
            let (b, c) = rest.split_at_mut(1);
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
                Box::new(|| a[0] = true),
                // grub-lint: allow(panic) — deliberate panic exercising propagation
                Box::new(|| panic!("boom in job 1")),
                Box::new(|| {
                    b[0] = true;
                    c[0] = true;
                }),
            ];
            pool.run_scoped(jobs);
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("boom"), "got {msg:?}");
        assert!(ok.iter().all(|h| *h), "other jobs still ran to completion");
        // The pool survives a panicked round.
        let mut after = false;
        pool.run_scoped(vec![Box::new(|| after = true)]);
        assert!(after);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let mut pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut ran = false;
        pool.run_scoped(vec![Box::new(|| ran = true)]);
        assert!(ran);
    }
}
