//! The background Merkle scrubber: cross-checks the SP's store contents
//! against the authoritative record set and the on-chain root digest.
//!
//! A GRuB deployment has three copies of the truth: the DO's authoritative
//! values, the SP's LSM store (with its Merkle tree), and the root digest
//! committed in the storage-manager contract. In normal operation all three
//! agree at every epoch boundary. Silent at-rest damage on the SP (bit rot,
//! a buggy operator script, a crash-truncated store) breaks that agreement
//! *without* any protocol message being wrong — the divergence only
//! surfaces later as an unverifiable `deliver`. The scrubber finds it
//! early: it audits every record, reports drift as typed
//! [`ScrubFinding`]s, and (when asked) repairs the SP by re-syncing the
//! divergent keys from the DO.

use grub_chain::{Address, Blockchain};
use grub_merkle::ReplState;

use crate::owner::DataOwner;
use crate::provider::StorageProvider;
use crate::{GrubError, Result};

/// What kind of drift a scrub pass found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// The authoritative set has the key; the SP store does not.
    Missing,
    /// The SP store has a record the authoritative set does not.
    Orphan,
    /// Both have the key but the value or replication state differs.
    Mismatch,
    /// A root digest disagrees: the DO mirror vs. the on-chain root, or the
    /// SP tree vs. the on-chain root.
    RootDrift,
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FindingKind::Missing => "missing",
            FindingKind::Orphan => "orphan",
            FindingKind::Mismatch => "mismatch",
            FindingKind::RootDrift => "root-drift",
        };
        f.write_str(name)
    }
}

/// One divergent record (or root) discovered by a scrub pass.
#[derive(Clone, Debug)]
pub struct ScrubFinding {
    /// The drift class.
    pub kind: FindingKind,
    /// The affected data key (empty for [`FindingKind::RootDrift`]).
    pub key: String,
    /// Human-readable description of the divergence.
    pub detail: String,
    /// Whether this pass repaired the finding.
    pub repaired: bool,
}

/// The outcome of one scrub pass.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Records audited (the union of authoritative and stored key sets).
    pub audited: usize,
    /// Every divergence found, in deterministic key order.
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// Whether the pass found no drift at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings this pass repaired.
    pub fn repaired(&self) -> usize {
        self.findings.iter().filter(|f| f.repaired).count()
    }

    /// Findings of a given kind.
    pub fn of_kind(&self, kind: FindingKind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }
}

/// The scrubber itself: stateless; each call is one full pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scrubber {
    /// Whether to repair findings by re-syncing divergent keys from the DO
    /// (root drift is reported but never "repaired" — the chain is the
    /// arbiter, not the scrubber).
    pub repair: bool,
}

impl Scrubber {
    /// A scrubber that repairs what it finds.
    pub fn repairing() -> Self {
        Scrubber { repair: true }
    }

    /// Runs one scrub pass of `provider` against `owner`'s authoritative
    /// record set and the root digest stored in the `manager` contract.
    ///
    /// # Errors
    ///
    /// Store I/O failures, or [`GrubError::Chain`] when the manager's
    /// `root()` view cannot be read.
    pub fn scrub(
        &self,
        chain: &Blockchain,
        manager: Address,
        owner: &DataOwner,
        provider: &mut StorageProvider,
    ) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();

        // Root agreement first: the on-chain digest is the arbiter.
        let on_chain = chain
            .static_call(owner.address(), manager, "root", &[])
            .map_err(|e| GrubError::Chain(format!("root() view failed: {e}")))?;
        if !on_chain.is_empty() && on_chain != owner.root().as_bytes() {
            report.findings.push(ScrubFinding {
                kind: FindingKind::RootDrift,
                key: String::new(),
                detail: "DO mirror root diverges from the on-chain root".into(),
                repaired: false,
            });
        }
        if !on_chain.is_empty() && on_chain != provider.root().as_bytes() {
            report.findings.push(ScrubFinding {
                kind: FindingKind::RootDrift,
                key: String::new(),
                detail: "SP tree root diverges from the on-chain root \
                         (rebuilt-from-disk trees drop tombstones and may \
                         differ in shape; key-level audit below is the \
                         content check)"
                    .into(),
                repaired: false,
            });
        }

        // Key-level audit: walk both sorted record sets in lock-step.
        let truth = owner.live_records();
        let stored = provider.live_records()?;
        let mut by_key: std::collections::BTreeMap<&str, (ReplState, &[u8])> = stored
            .iter()
            .map(|(state, key, value)| (key.as_str(), (*state, value.as_slice())))
            .collect();
        for (key, state, value) in &truth {
            report.audited += 1;
            match by_key.remove(key.as_str()) {
                None => {
                    let repaired = self.try_repair(provider, key, value, *state)?;
                    report.findings.push(ScrubFinding {
                        kind: FindingKind::Missing,
                        key: key.clone(),
                        detail: format!("authoritative record absent from SP store ({state:?})"),
                        repaired,
                    });
                }
                Some((got_state, got_value)) => {
                    if got_state != *state || got_value != value.as_slice() {
                        let repaired = self.try_repair(provider, key, value, *state)?;
                        report.findings.push(ScrubFinding {
                            kind: FindingKind::Mismatch,
                            key: key.clone(),
                            detail: format!(
                                "SP holds {} bytes under {got_state:?}, \
                                 authoritative is {} bytes under {state:?}",
                                got_value.len(),
                                value.len()
                            ),
                            repaired,
                        });
                    }
                }
            }
        }
        // Anything left in the SP map has no authoritative counterpart.
        for (key, (state, _)) in by_key {
            report.audited += 1;
            let repaired = if self.repair {
                provider.remove_record(state, key)?;
                true
            } else {
                false
            };
            report.findings.push(ScrubFinding {
                kind: FindingKind::Orphan,
                key: key.to_owned(),
                detail: format!("SP store holds a record ({state:?}) the DO never produced"),
                repaired,
            });
        }
        Ok(report)
    }

    fn try_repair(
        &self,
        provider: &mut StorageProvider,
        key: &str,
        value: &[u8],
        state: ReplState,
    ) -> Result<bool> {
        if !self.repair {
            return Ok(false);
        }
        provider.repair_record(key, value, state)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::system::{DriverIdentity, EpochDriver, SystemConfig};
    use grub_chain::Blockchain;
    use grub_workload::{Op, Trace, ValueSpec};

    fn driven_system() -> (Blockchain, EpochDriver) {
        let mut chain = Blockchain::new();
        let config = SystemConfig::new(PolicyKind::Memoryless { k: 2 }).preload(vec![
            ("btc".into(), b"60000".to_vec()),
            ("eth".into(), b"3000".to_vec()),
            ("sol".into(), b"150".to_vec()),
        ]);
        let mut driver =
            EpochDriver::deploy(&mut chain, &config, &DriverIdentity::default()).unwrap();
        let mut trace = Trace::new();
        trace.ops.push(Op::Write {
            key: "btc".into(),
            value: ValueSpec::new(32, 7),
        });
        trace.ops.push(Op::Read { key: "btc".into() });
        trace.ops.push(Op::Read { key: "eth".into() });
        driver.drive(&mut chain, &trace).unwrap();
        (chain, driver)
    }

    #[test]
    fn clean_system_scrubs_clean() {
        let (chain, mut driver) = driven_system();
        let report = driver.scrub(&chain, Scrubber::default()).unwrap();
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings
        );
        assert!(report.audited >= 3);
    }

    #[test]
    fn tampered_value_is_detected_and_repaired() {
        let (chain, mut driver) = driven_system();
        let state = driver.owner().state_of("eth");
        driver
            .provider_mut()
            .tamper_value(state, "eth", b"GARBAGE".to_vec())
            .unwrap();
        // Detection pass (no repair): exactly one mismatch.
        let report = driver.scrub(&chain, Scrubber::default()).unwrap();
        assert_eq!(report.of_kind(FindingKind::Mismatch), 1);
        assert!(report.findings.iter().all(|f| !f.repaired));
        // Repair pass fixes it; the next pass is clean.
        let report = driver.scrub(&chain, Scrubber::repairing()).unwrap();
        assert_eq!(report.repaired(), 1);
        let report = driver.scrub(&chain, Scrubber::default()).unwrap();
        assert!(
            report.is_clean(),
            "repair did not stick: {:?}",
            report.findings
        );
        assert_eq!(
            driver.provider().value_of(state, "eth"),
            Some(b"3000".to_vec())
        );
    }

    #[test]
    fn lost_and_orphaned_records_are_found() {
        let (chain, mut driver) = driven_system();
        let state = driver.owner().state_of("sol");
        driver.provider_mut().tamper_remove(state, "sol").unwrap();
        driver
            .provider_mut()
            .tamper_value(ReplState::NotReplicated, "ghost", b"boo".to_vec())
            .unwrap();
        let report = driver.scrub(&chain, Scrubber::repairing()).unwrap();
        assert_eq!(report.of_kind(FindingKind::Missing), 1);
        assert_eq!(report.of_kind(FindingKind::Orphan), 1);
        assert_eq!(report.repaired(), 2);
        let report = driver.scrub(&chain, Scrubber::default()).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
    }
}
