//! Per-epoch Gas reporting, in the shape the paper's figures use.

use grub_gas::checked_add_gas;
use serde::{Deserialize, Serialize};

/// Gas accounting for one epoch of trace operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Trace operations processed in the epoch.
    pub ops: usize,
    /// Feed-layer Gas burned in the epoch.
    pub feed_gas: u64,
    /// Application-layer Gas burned in the epoch.
    pub app_gas: u64,
    /// NR→R transitions actuated.
    pub replications: usize,
    /// R→NR transitions actuated.
    pub evictions: usize,
    /// Deliver transactions rejected by the contract (adversarial SP).
    pub failed_delivers: usize,
}

impl EpochReport {
    /// Feed-layer Gas per operation, the paper's principal Y axis.
    pub fn feed_gas_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.feed_gas as f64 / self.ops as f64
        }
    }

    /// Feed + application Gas per operation.
    pub fn total_gas_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            checked_add_gas(self.feed_gas, self.app_gas) as f64 / self.ops as f64
        }
    }
}

/// The result of driving one trace through one configuration.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Display name of the policy that ran.
    pub policy: String,
    /// Per-epoch accounting.
    pub epochs: Vec<EpochReport>,
}

impl RunReport {
    /// Total trace operations.
    pub fn total_ops(&self) -> usize {
        self.epochs.iter().map(|e| e.ops).sum()
    }

    /// Total feed-layer Gas.
    pub fn feed_gas_total(&self) -> u64 {
        self.epochs.iter().map(|e| e.feed_gas).sum()
    }

    /// Total application-layer Gas.
    pub fn app_gas_total(&self) -> u64 {
        self.epochs.iter().map(|e| e.app_gas).sum()
    }

    /// Average feed-layer Gas per operation across the whole run.
    pub fn feed_gas_per_op(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            self.feed_gas_total() as f64 / ops as f64
        }
    }

    /// Average total (feed + application) Gas per operation.
    pub fn total_gas_per_op(&self) -> f64 {
        let ops = self.total_ops();
        if ops == 0 {
            0.0
        } else {
            checked_add_gas(self.feed_gas_total(), self.app_gas_total()) as f64 / ops as f64
        }
    }

    /// The per-epoch feed Gas/op series (the paper's time-series plots).
    pub fn feed_series(&self) -> Vec<f64> {
        self.epochs.iter().map(|e| e.feed_gas_per_op()).collect()
    }

    /// Count of rejected deliver transactions across the run.
    pub fn failed_delivers(&self) -> usize {
        self.epochs.iter().map(|e| e.failed_delivers).sum()
    }

    /// Total replications and evictions actuated.
    pub fn transitions(&self) -> (usize, usize) {
        (
            self.epochs.iter().map(|e| e.replications).sum(),
            self.epochs.iter().map(|e| e.evictions).sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(ops: usize, feed: u64, app: u64) -> EpochReport {
        EpochReport {
            epoch: 0,
            ops,
            feed_gas: feed,
            app_gas: app,
            replications: 0,
            evictions: 0,
            failed_delivers: 0,
        }
    }

    #[test]
    fn per_op_math() {
        let e = epoch(4, 1000, 200);
        assert_eq!(e.feed_gas_per_op(), 250.0);
        assert_eq!(e.total_gas_per_op(), 300.0);
        assert_eq!(epoch(0, 10, 0).feed_gas_per_op(), 0.0);
    }

    #[test]
    fn run_aggregates() {
        let run = RunReport {
            policy: "test".into(),
            epochs: vec![epoch(10, 1000, 0), epoch(10, 3000, 500)],
        };
        assert_eq!(run.total_ops(), 20);
        assert_eq!(run.feed_gas_total(), 4000);
        assert_eq!(run.app_gas_total(), 500);
        assert_eq!(run.feed_gas_per_op(), 200.0);
        assert_eq!(run.feed_series(), vec![100.0, 300.0]);
    }
}
