//! The data owner (DO): control plane and write path (paper §3.2, B.2.1).
//!
//! The DO is the trusted producer of all feed data. It:
//!
//! * batches writes within an epoch into one `update` transaction
//!   (the `gPuts` call of Listing 1);
//! * runs the replication policy over the federated operation stream — its
//!   own writes plus the reads it observes in the chain's contract-call
//!   history (see [`DataOwner::federate_reads`]);
//! * actuates decisions by staging R↔NR transitions into the next epoch's
//!   `update` transaction;
//! * maintains a *hash mirror* of the SP's Merkle tree so it can produce
//!   the new root digest without trusting the SP. (The paper's DO keeps only
//!   the root and re-derives updates from SP-supplied proofs; mirroring the
//!   hash tree — not the data — is an equivalent-trust engineering choice
//!   documented in DESIGN.md §3: in both designs the digest the DO signs is
//!   derived exclusively from its own verified view.)

use std::collections::HashMap;

use grub_chain::{Address, Blockchain};
use grub_merkle::{record_value_hash, MerkleKv, ProofKey, ReplState, TreeOp};

use crate::policy::ReplicationPolicy;
use crate::provider::SpSync;

/// The content of one epoch's `update` transaction(s) plus the off-chain
/// sync the SP must apply (the `gPuts` RPC). Structured so the harness can
/// split oversized epochs across several transactions (`Ctx` is defined for
/// payloads under 1000 words).
#[derive(Debug, Default)]
pub struct EpochFlush {
    /// New root digest after all of this epoch's mutations.
    pub digest: grub_crypto::Hash32,
    /// One element per write occurrence to an already-replicated record.
    pub r_updates: Vec<(Vec<u8>, Vec<u8>)>,
    /// NR→R transitions with the value to install.
    pub to_r: Vec<(Vec<u8>, Vec<u8>)>,
    /// R→NR transitions (replica evictions).
    pub to_nr: Vec<Vec<u8>>,
    /// Whether anything changed (an `update` must be sent).
    pub dirty: bool,
    /// Off-chain operations for the SP, in the exact order the DO applied
    /// them to its mirror.
    pub sp_sync: Vec<SpSync>,
    /// Number of NR→R transitions (for reports).
    pub replications: usize,
    /// Number of R→NR transitions (for reports).
    pub evictions: usize,
}

/// The data owner.
pub struct DataOwner {
    address: Address,
    policy: Box<dyn ReplicationPolicy>,
    mirror: MerkleKv,
    /// Committed on-chain replication state per key.
    states: HashMap<String, ReplState>,
    /// Desired state per key, per the policy's latest observation.
    desired: HashMap<String, ReplState>,
    /// Latest value per key (the DO produces every value).
    values: HashMap<String, Vec<u8>>,
    /// Writes staged for the current epoch, in order.
    staged: Vec<(String, Vec<u8>)>,
    /// Keys whose replicas were installed mid-epoch by `deliver` with the
    /// `replicate` flag; the next flush formalizes (NR→R in the tree) or
    /// evicts them. A BTree set so the flush walks them in key order —
    /// eviction order reaches the chain and must be deterministic.
    hinted: std::collections::BTreeSet<String>,
    /// Last block already folded into the read monitor.
    monitor_cursor: u64,
    /// Total Merkle nodes rehashed by mirror batches (observability).
    nodes_rehashed: u64,
}

impl DataOwner {
    /// Creates a DO with the given account and policy.
    pub fn new(address: Address, policy: Box<dyn ReplicationPolicy>) -> Self {
        DataOwner {
            address,
            policy,
            mirror: MerkleKv::new(),
            states: HashMap::new(),
            desired: HashMap::new(),
            values: HashMap::new(),
            staged: Vec::new(),
            hinted: std::collections::BTreeSet::new(),
            monitor_cursor: 0,
            nodes_rehashed: 0,
        }
    }

    /// The DO's account address (the only `update()` sender the contract
    /// accepts).
    pub fn address(&self) -> Address {
        self.address
    }

    /// The policy's display name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Forwards the chain's current gas-price multiplier (permille) to the
    /// policy, so fee-aware deciders can defer work into cheap windows.
    pub fn observe_fee_price(&mut self, price_permille: u64) {
        self.policy.observe_fee_price(price_permille);
    }

    /// Preloads records (no policy involvement, no staging): used for the
    /// initial dataset before metering starts.
    pub fn preload(&mut self, records: &[(String, Vec<u8>)], state: ReplState) -> Vec<SpSync> {
        let mut sync = Vec::with_capacity(records.len());
        let mut tree_ops = Vec::with_capacity(records.len());
        for (key, value) in records {
            let pkey = ProofKey::new(state, key.as_bytes().to_vec());
            tree_ops.push(TreeOp::Insert(pkey, record_value_hash(value)));
            self.states.insert(key.clone(), state);
            self.desired.insert(key.clone(), state);
            self.policy.seed_state(key, state);
            self.values.insert(key.clone(), value.clone());
            sync.push(SpSync::Write {
                key: key.clone(),
                value: value.clone(),
                state,
            });
        }
        self.nodes_rehashed += self.mirror.apply_batch(tree_ops) as u64;
        sync
    }

    /// Observes a local write: feeds the policy and stages the value for the
    /// next epoch flush.
    pub fn observe_write(&mut self, key: &str, value: Vec<u8>) {
        let want = self.policy.on_write(key);
        self.desired.insert(key.to_owned(), want);
        self.staged.push((key.to_owned(), value));
    }

    /// Observes a read (from the trace the monitor federates): feeds the
    /// policy and returns the resulting desired state.
    pub fn observe_read(&mut self, key: &str) -> ReplState {
        let want = self.policy.on_read(key);
        self.desired.insert(key.to_owned(), want);
        want
    }

    /// The policy's current desired state for `key`.
    pub fn desired_state(&self, key: &str) -> ReplState {
        *self.desired.get(key).unwrap_or(&ReplState::NotReplicated)
    }

    /// Notes that a `deliver` installed a replica for `key` ahead of the
    /// tree transition (the Listing 2 `replicate` flag). The next
    /// [`DataOwner::flush_epoch`] formalizes or evicts it.
    pub fn note_hinted_replica(&mut self, key: &str) {
        self.hinted.insert(key.to_owned());
    }

    /// Reconstructs the read keys from the chain's contract-call history
    /// since the last scan — the §3.2 monitor. The returned keys let tests
    /// validate that the trace-order observations match what the chain
    /// records; the decision state machine itself consumes
    /// [`DataOwner::observe_read`].
    pub fn federate_reads(&mut self, chain: &Blockchain, manager: Address) -> Vec<String> {
        let calls = chain.calls_since(self.monitor_cursor, manager);
        self.monitor_cursor = chain.height();
        let mut keys = Vec::new();
        for call in calls {
            // gGet's key and gScan's start key are both the first
            // byte-string field of the call input.
            if call.func == "gGet" || call.func == "gScan" {
                let mut dec = grub_chain::codec::Decoder::new(&call.input);
                if let Ok(key) = dec.bytes() {
                    keys.push(String::from_utf8_lossy(key).into_owned());
                }
            }
        }
        keys
    }

    /// The committed replication state of `key` (NR when unknown).
    pub fn state_of(&self, key: &str) -> ReplState {
        *self.states.get(key).unwrap_or(&ReplState::NotReplicated)
    }

    /// Current root digest of the DO's mirror.
    pub fn root(&self) -> grub_crypto::Hash32 {
        self.mirror.root()
    }

    /// Total Merkle nodes rehashed by the mirror's batched updates so far.
    pub fn nodes_rehashed(&self) -> u64 {
        self.nodes_rehashed
    }

    /// The authoritative record set, sorted by key: every key the DO has
    /// produced, with its committed replication state and latest value.
    /// This is the ground truth the scrubber audits the SP against.
    pub fn live_records(&self) -> Vec<(String, ReplState, Vec<u8>)> {
        let mut out: Vec<(String, ReplState, Vec<u8>)> = self
            // grub-lint: allow(determinism) — sorted by key two lines down
            .values
            .iter()
            .map(|(key, value)| (key.clone(), self.state_of(key), value.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Closes the epoch: applies staged writes and decided transitions to
    /// the mirror, and produces the `update()` payload plus the SP sync.
    ///
    /// Mutation order (writes in arrival order, then transitions in key
    /// order) is deterministic so the SP's tree converges to the same root.
    pub fn flush_epoch(&mut self) -> EpochFlush {
        let staged = std::mem::take(&mut self.staged);
        let mut sync = Vec::new();
        // Mirror mutations are collected across steps 1–2 and applied as one
        // batch just before the digest read: the root is only needed at the
        // end, so shared root-to-leaf paths are hashed once per epoch.
        let mut tree_ops: Vec<TreeOp> = Vec::with_capacity(staged.len());
        // 1. Apply writes under each key's *current* state. Every occurrence
        //    is kept: the paper's update() loops over the batched keys[] /
        //    values[] arrays and pays one storage write per element
        //    (Listing 2), which is what makes BL2 expensive under
        //    write-heavy workloads.
        let mut occurrences: Vec<(String, Vec<u8>)> = Vec::with_capacity(staged.len());
        for (key, value) in staged {
            let state = self.state_of(&key);
            self.states.entry(key.clone()).or_insert(state);
            let pkey = ProofKey::new(state, key.as_bytes().to_vec());
            tree_ops.push(TreeOp::Insert(pkey, record_value_hash(&value)));
            self.values.insert(key.clone(), value.clone());
            occurrences.push((key.clone(), value.clone()));
            sync.push(SpSync::Write { key, value, state });
        }
        // 2. Apply transitions (desired ≠ committed), in key order.
        let written_this_epoch: std::collections::HashSet<&String> =
            occurrences.iter().map(|(k, _)| k).collect();
        let mut hint_formalized = 0usize;
        let mut to_r: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut to_nr: Vec<Vec<u8>> = Vec::new();
        let mut changed: Vec<String> = self
            // grub-lint: allow(determinism) — sorted before use, below
            .desired
            .iter()
            .filter(|(key, want)| self.state_of(key) != **want)
            .map(|(key, _)| key.clone())
            .collect();
        changed.sort();
        for key in changed {
            let from = self.state_of(&key);
            let to = self.desired[&key];
            let value = match self.values.get(&key) {
                Some(v) => v.clone(),
                // A key the policy saw only through reads of a record that
                // does not exist; nothing to relocate.
                None => continue,
            };
            let vhash = record_value_hash(&value);
            tree_ops.push(TreeOp::Invalidate(ProofKey::new(
                from,
                key.as_bytes().to_vec(),
            )));
            tree_ops.push(TreeOp::Insert(
                ProofKey::new(to, key.as_bytes().to_vec()),
                vhash,
            ));
            self.states.insert(key.clone(), to);
            match to {
                ReplState::Replicated => {
                    // A replica installed mid-epoch by `deliver(replicate)`
                    // already holds the current value unless a later write
                    // superseded it — don't pay the payload and the storage
                    // write a second time (deliver-time replication leaves
                    // the epoch update carrying only the digest-side
                    // transition).
                    if self.hinted.contains(&key) && !written_this_epoch.contains(&key) {
                        hint_formalized += 1;
                    } else {
                        to_r.push((key.as_bytes().to_vec(), value.clone()));
                    }
                }
                ReplState::NotReplicated => to_nr.push(key.as_bytes().to_vec()),
            }
            sync.push(SpSync::Relocate {
                key: key.clone(),
                from,
                to,
            });
        }
        // 3. Updates to records that stay replicated — one array element per
        //    write occurrence, as in Listing 2.
        let r_updates: Vec<(Vec<u8>, Vec<u8>)> = occurrences
            .iter()
            .filter(|(key, _)| self.state_of(key) == ReplState::Replicated)
            .filter(|(key, _)| !to_r.iter().any(|(k, _)| k.as_slice() == key.as_bytes()))
            .map(|(key, value)| (key.as_bytes().to_vec(), value.clone()))
            .collect();

        // Reconcile mid-epoch deliver-installed replicas: keys that settled
        // back to NR must have the hinted replica evicted (no tree change —
        // the tree never left NR); keys now formally R were covered by the
        // transition loop above.
        for key in std::mem::take(&mut self.hinted) {
            if self.state_of(&key) == ReplState::NotReplicated
                && !to_nr.iter().any(|k| k.as_slice() == key.as_bytes())
            {
                to_nr.push(key.as_bytes().to_vec());
            }
        }
        let replications = to_r.len() + hint_formalized;
        let evictions = to_nr.len();
        let dirty = !sync.is_empty() || !to_nr.is_empty() || !to_r.is_empty();
        self.nodes_rehashed += self.mirror.apply_batch(tree_ops) as u64;
        EpochFlush {
            digest: self.mirror.root(),
            r_updates,
            to_r,
            to_nr,
            dirty,
            sp_sync: sync,
            replications,
            evictions,
        }
    }
}

impl std::fmt::Debug for DataOwner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataOwner")
            .field("address", &self.address)
            .field("policy", &self.policy.name())
            .field("keys", &self.states.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Bl2, Memoryless};

    fn owner_with_k(k: u64) -> DataOwner {
        DataOwner::new(Address::derive("DO"), Box::new(Memoryless::new(k)))
    }

    #[test]
    fn write_only_epoch_sends_digest_only() {
        let mut o = owner_with_k(2);
        o.observe_write("a", b"1".to_vec());
        o.observe_write("b", b"2".to_vec());
        let flush = o.flush_epoch();
        assert!(flush.dirty);
        assert!(
            flush.r_updates.is_empty(),
            "no values ride along for NR keys"
        );
        assert!(flush.to_r.is_empty() && flush.to_nr.is_empty());
        assert_eq!(flush.replications, 0);
        assert_eq!(flush.evictions, 0);
        assert_eq!(flush.sp_sync.len(), 2);
    }

    #[test]
    fn k_reads_trigger_replication_at_flush() {
        let mut o = owner_with_k(2);
        o.observe_write("a", b"1".to_vec());
        o.flush_epoch();
        o.observe_read("a");
        o.observe_read("a");
        let flush = o.flush_epoch();
        assert_eq!(flush.replications, 1);
        assert_eq!(o.state_of("a"), ReplState::Replicated);
    }

    #[test]
    fn write_after_replication_evicts() {
        let mut o = owner_with_k(1);
        o.observe_write("a", b"1".to_vec());
        o.flush_epoch();
        o.observe_read("a");
        o.flush_epoch();
        assert_eq!(o.state_of("a"), ReplState::Replicated);
        o.observe_write("a", b"2".to_vec());
        let flush = o.flush_epoch();
        assert_eq!(flush.evictions, 1);
        assert_eq!(o.state_of("a"), ReplState::NotReplicated);
    }

    #[test]
    fn replicated_write_carries_value() {
        let mut o = DataOwner::new(Address::derive("DO"), Box::new(Bl2));
        o.observe_write("a", b"1".to_vec());
        let f1 = o.flush_epoch();
        assert_eq!(f1.replications, 1, "BL2 replicates immediately");
        o.observe_write("a", b"2".to_vec());
        let f2 = o.flush_epoch();
        // Second write is an r_update (stays R) carrying the value.
        assert_eq!(f2.r_updates, vec![(b"a".to_vec(), b"2".to_vec())]);
        assert_eq!(f2.replications, 0);
    }

    #[test]
    fn empty_epoch_flushes_nothing() {
        let mut o = owner_with_k(2);
        let flush = o.flush_epoch();
        assert!(!flush.dirty);
        assert!(flush.sp_sync.is_empty());
    }

    #[test]
    fn mirror_root_changes_with_each_write() {
        let mut o = owner_with_k(2);
        o.observe_write("a", b"1".to_vec());
        o.flush_epoch();
        let r1 = o.root();
        o.observe_write("a", b"2".to_vec());
        o.flush_epoch();
        assert_ne!(o.root(), r1);
    }

    #[test]
    fn preload_sets_state_without_policy() {
        let mut o = owner_with_k(2);
        let records = vec![("x".to_owned(), b"1".to_vec())];
        let sync = o.preload(&records, ReplState::Replicated);
        assert_eq!(sync.len(), 1);
        assert_eq!(o.state_of("x"), ReplState::Replicated);
        // No staged writes: next flush is clean.
        assert!(!o.flush_epoch().dirty);
    }
}
