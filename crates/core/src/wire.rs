//! Wire encodings for proofs and protocol payloads.
//!
//! The paper's prototype marshals proofs through Solidity calldata; here the
//! same information is carried in the simulator's codec so that transaction
//! payload sizes — which drive the `Ctx(X)` Gas term — are realistic.

use grub_chain::codec::{Decoder, Encoder};
use grub_chain::VmError;
use grub_merkle::{MembershipProof, ProofKey, ProofNode, RangeProof, ReplState};

/// Hard cap on decoded proof sizes, guarding against hostile payloads.
const MAX_PROOF_NODES: u64 = 1 << 22;

/// Encodes a [`ProofKey`].
pub fn encode_proof_key(enc: &mut Encoder, pkey: &ProofKey) {
    enc.boolean(pkey.state == ReplState::Replicated);
    enc.bytes(&pkey.key);
}

/// Decodes a [`ProofKey`].
///
/// # Errors
///
/// [`VmError::Decode`] on truncated payloads.
pub fn decode_proof_key(dec: &mut Decoder<'_>) -> Result<ProofKey, VmError> {
    let replicated = dec.boolean()?;
    let key = dec.bytes()?.to_vec();
    Ok(ProofKey::new(
        if replicated {
            ReplState::Replicated
        } else {
            ReplState::NotReplicated
        },
        key,
    ))
}

/// Encodes a [`MembershipProof`].
pub fn encode_membership_proof(enc: &mut Encoder, proof: &MembershipProof) {
    enc.u64(proof.path.len() as u64);
    for step in &proof.path {
        enc.boolean(step.sibling_is_left);
        enc.hash(&step.sibling);
    }
    encode_proof_key(enc, &proof.leaf_pkey);
    enc.hash(&proof.leaf_vhash);
    enc.boolean(proof.leaf_valid);
}

/// Decodes a [`MembershipProof`].
///
/// # Errors
///
/// [`VmError::Decode`] on truncated or absurdly sized payloads.
pub fn decode_membership_proof(dec: &mut Decoder<'_>) -> Result<MembershipProof, VmError> {
    let steps = dec.u64()?;
    if steps > MAX_PROOF_NODES {
        return Err(VmError::Decode("absurd proof length".into()));
    }
    let mut path = Vec::with_capacity(steps as usize);
    for _ in 0..steps {
        let sibling_is_left = dec.boolean()?;
        let sibling = dec.hash()?;
        path.push(grub_merkle::PathStep {
            sibling,
            sibling_is_left,
        });
    }
    let leaf_pkey = decode_proof_key(dec)?;
    let leaf_vhash = dec.hash()?;
    let leaf_valid = dec.boolean()?;
    Ok(MembershipProof {
        path,
        leaf_pkey,
        leaf_vhash,
        leaf_valid,
    })
}

const NODE_OPAQUE: u64 = 0;
const NODE_LEAF: u64 = 1;
const NODE_INNER: u64 = 2;

fn encode_proof_node(enc: &mut Encoder, node: &ProofNode) {
    // Pre-order serialization; recursion depth is the (balanced) tree depth.
    match node {
        ProofNode::Opaque(h) => {
            enc.u64(NODE_OPAQUE);
            enc.hash(h);
        }
        ProofNode::Leaf { pkey, vhash, valid } => {
            enc.u64(NODE_LEAF);
            encode_proof_key(enc, pkey);
            enc.hash(vhash);
            enc.boolean(*valid);
        }
        ProofNode::Inner { left, right } => {
            enc.u64(NODE_INNER);
            encode_proof_node(enc, left);
            encode_proof_node(enc, right);
        }
    }
}

fn decode_proof_node(dec: &mut Decoder<'_>, depth: u32) -> Result<ProofNode, VmError> {
    if depth > 256 {
        return Err(VmError::Decode("proof tree too deep".into()));
    }
    match dec.u64()? {
        NODE_OPAQUE => Ok(ProofNode::Opaque(dec.hash()?)),
        NODE_LEAF => {
            let pkey = decode_proof_key(dec)?;
            let vhash = dec.hash()?;
            let valid = dec.boolean()?;
            Ok(ProofNode::Leaf { pkey, vhash, valid })
        }
        NODE_INNER => {
            let left = Box::new(decode_proof_node(dec, depth + 1)?);
            let right = Box::new(decode_proof_node(dec, depth + 1)?);
            Ok(ProofNode::Inner { left, right })
        }
        tag => Err(VmError::Decode(format!("bad proof node tag {tag}"))),
    }
}

/// Encodes a [`RangeProof`].
pub fn encode_range_proof(enc: &mut Encoder, proof: &RangeProof) {
    match &proof.tree {
        None => {
            enc.boolean(false);
        }
        Some(tree) => {
            enc.boolean(true);
            encode_proof_node(enc, tree);
        }
    }
}

/// Decodes a [`RangeProof`].
///
/// # Errors
///
/// [`VmError::Decode`] on truncated or malformed payloads.
pub fn decode_range_proof(dec: &mut Decoder<'_>) -> Result<RangeProof, VmError> {
    if !dec.boolean()? {
        return Ok(RangeProof::empty());
    }
    Ok(RangeProof {
        tree: Some(decode_proof_node(dec, 0)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_merkle::{record_value_hash, MerkleKv};

    fn nr(key: &str) -> ProofKey {
        ProofKey::new(ReplState::NotReplicated, key.as_bytes().to_vec())
    }

    #[test]
    fn proof_key_round_trip() {
        for pkey in [
            nr("alpha"),
            ProofKey::new(ReplState::Replicated, b"b".to_vec()),
        ] {
            let mut enc = Encoder::new();
            encode_proof_key(&mut enc, &pkey);
            let buf = enc.finish();
            let got = decode_proof_key(&mut Decoder::new(&buf)).unwrap();
            assert_eq!(got, pkey);
        }
    }

    #[test]
    fn membership_proof_round_trip() {
        let mut tree = MerkleKv::new();
        for k in ["a", "b", "c", "d", "e"] {
            tree.insert(nr(k), record_value_hash(k.as_bytes()));
        }
        let proof = tree.prove(&nr("c")).unwrap();
        let mut enc = Encoder::new();
        encode_membership_proof(&mut enc, &proof);
        let buf = enc.finish();
        let got = decode_membership_proof(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(got, proof);
        assert!(got.verify(&tree.root(), &nr("c"), &record_value_hash(b"c")));
    }

    #[test]
    fn range_proof_round_trip() {
        let mut tree = MerkleKv::new();
        for k in ["a", "b", "c", "d", "e", "f"] {
            tree.insert(nr(k), record_value_hash(k.as_bytes()));
        }
        let proof = tree.prove_range(&nr("b"), &nr("d"));
        let mut enc = Encoder::new();
        encode_range_proof(&mut enc, &proof);
        let buf = enc.finish();
        let got = decode_range_proof(&mut Decoder::new(&buf)).unwrap();
        assert_eq!(got, proof);
        let records = got.verify(&tree.root(), &nr("b"), &nr("d")).unwrap();
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn empty_range_proof_round_trip() {
        let proof = RangeProof::empty();
        let mut enc = Encoder::new();
        encode_range_proof(&mut enc, &proof);
        let buf = enc.finish();
        assert_eq!(decode_range_proof(&mut Decoder::new(&buf)).unwrap(), proof);
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut tree = MerkleKv::new();
        tree.insert(nr("a"), record_value_hash(b"a"));
        tree.insert(nr("b"), record_value_hash(b"b"));
        let proof = tree.prove(&nr("a")).unwrap();
        let mut enc = Encoder::new();
        encode_membership_proof(&mut enc, &proof);
        let buf = enc.finish();
        assert!(decode_membership_proof(&mut Decoder::new(&buf[..buf.len() - 2])).is_err());
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut enc = Encoder::new();
        enc.boolean(true);
        enc.u64(99);
        let buf = enc.finish();
        assert!(decode_range_proof(&mut Decoder::new(&buf)).is_err());
    }
}
