//! Online replication decision-making (paper §3.1, Appendix A and C.3).
//!
//! A policy observes the per-key read/write stream and outputs the *desired*
//! replication state after each operation. The data owner's actuator
//! compares desired against actual state and stages R↔NR transitions for the
//! next epoch's `update` transaction.
//!
//! Implemented policies:
//!
//! | Policy | Paper | Guarantee |
//! |--------|-------|-----------|
//! | [`Bl1`] (never replicate) | §2.3 | — |
//! | [`Bl2`] (always replicate) | §2.3 | — |
//! | [`Memoryless`] | Algorithm 1 | `1 + K·Cread_off/Cupdate`-competitive; 2-competitive at `K = Cupdate/Cread_off` (Eq. 1) |
//! | [`Memorizing`] | Algorithm 2 | `(4D+2)/K'`-competitive |
//! | [`AdaptiveK`] (K1/K2) | Appendix C.3 | heuristic |
//! | [`OfflineOptimal`] | Appendix A | cost-optimal reference (needs the future) |

use std::collections::HashMap;

use grub_gas::GasSchedule;
use grub_merkle::ReplState;
use grub_workload::{Op, OpSource, Trace};

/// A replication decision maker.
///
/// Implementations are deterministic state machines over the operation
/// stream; [`ReplicationPolicy::on_write`] / [`ReplicationPolicy::on_read`]
/// return the state the record *should* have after the operation.
///
/// The `Send` bound is what lets a parallel scheduler move a feed's whole
/// off-chain staging half (policy included) to a worker thread — see
/// `grub_core::system::EpochStage`.
pub trait ReplicationPolicy: Send {
    /// Observes a write of `key`, returning the desired state.
    fn on_write(&mut self, key: &str) -> ReplState;

    /// Observes a read of `key`, returning the desired state.
    fn on_read(&mut self, key: &str) -> ReplState;

    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// Seeds the policy's view of a preloaded record's initial state
    /// (warm-start deployments preload records already replicated; the
    /// policy must not treat the first read as a fresh NR record).
    fn seed_state(&mut self, _key: &str, _state: ReplState) {}

    /// Observes the chain's current gas-price multiplier (permille of the
    /// flat schedule, [`grub_gas::BASE_PRICE_PERMILLE`] = flat). The driver
    /// feeds this from the last mined block whenever a fee process is
    /// configured; fee-oblivious policies (the default) ignore it.
    fn observe_fee_price(&mut self, _price_permille: u64) {}
}

/// BL1: static non-replication — data only on the SP (§2.3).
#[derive(Debug, Default, Clone)]
pub struct Bl1;

impl ReplicationPolicy for Bl1 {
    fn on_write(&mut self, _key: &str) -> ReplState {
        ReplState::NotReplicated
    }
    fn on_read(&mut self, _key: &str) -> ReplState {
        ReplState::NotReplicated
    }
    fn name(&self) -> String {
        "BL1 (no replica)".into()
    }
}

/// BL2: static full replication — every record also on chain (§2.3).
#[derive(Debug, Default, Clone)]
pub struct Bl2;

impl ReplicationPolicy for Bl2 {
    fn on_write(&mut self, _key: &str) -> ReplState {
        ReplState::Replicated
    }
    fn on_read(&mut self, _key: &str) -> ReplState {
        ReplState::Replicated
    }
    fn name(&self) -> String {
        "BL2 (always replicate)".into()
    }
}

/// Algorithm 1: the memoryless online algorithm.
///
/// Keeps one counter per NR record counting consecutive reads since the last
/// write; at `K` reads the record flips to R. Every write resets the record
/// to NR. With `K = Cupdate/Cread_off` (Equation 1) the worst-case Gas is
/// within 2× of the offline optimum (Theorem A.1).
#[derive(Debug, Clone)]
pub struct Memoryless {
    k: u64,
    counters: HashMap<String, u64>,
    states: HashMap<String, ReplState>,
}

impl Memoryless {
    pub(crate) fn carry_states(&mut self, states: HashMap<String, ReplState>) {
        self.states = states;
    }

    pub(crate) fn take_states(&mut self) -> HashMap<String, ReplState> {
        std::mem::take(&mut self.states)
    }
}

impl Memoryless {
    /// Creates the algorithm with threshold `K`.
    pub fn new(k: u64) -> Self {
        Memoryless {
            k,
            counters: HashMap::new(),
            states: HashMap::new(),
        }
    }

    /// The 2-competitive `K` from the Gas schedule (Equation 1), rounded.
    pub fn two_competitive(schedule: &GasSchedule) -> Self {
        Self::new(schedule.two_competitive_k().round().max(1.0) as u64)
    }

    /// The configured threshold.
    pub fn k(&self) -> u64 {
        self.k
    }
}

impl ReplicationPolicy for Memoryless {
    fn seed_state(&mut self, key: &str, state: ReplState) {
        self.states.insert(key.to_owned(), state);
    }

    fn on_write(&mut self, key: &str) -> ReplState {
        self.counters.insert(key.to_owned(), 0);
        self.states.insert(key.to_owned(), ReplState::NotReplicated);
        ReplState::NotReplicated
    }

    fn on_read(&mut self, key: &str) -> ReplState {
        let state = self
            .states
            .entry(key.to_owned())
            .or_insert(ReplState::NotReplicated);
        if *state == ReplState::Replicated {
            return ReplState::Replicated;
        }
        let counter = self.counters.entry(key.to_owned()).or_insert(0);
        if *counter < self.k {
            *counter += 1;
        }
        if *counter >= self.k {
            *state = ReplState::Replicated;
            self.counters.remove(key);
            ReplState::Replicated
        } else {
            ReplState::NotReplicated
        }
    }

    fn name(&self) -> String {
        format!("GRuB-memoryless (K={})", self.k)
    }
}

/// Algorithm 2: the memorizing online algorithm.
///
/// Keeps cumulative read and write counters per record, exploiting temporal
/// locality. A record flips to R when `wCount·K' + D ≤ rCount` and back to
/// NR when `wCount·K' − D ≥ rCount`; each flip partially resets the counters
/// (per the paper's prose — its pseudocode has a typo, using an undefined
/// `Y`; we follow the prose and the analysis in Appendix A). The algorithm
/// is `(4D+2)/K'`-competitive (Theorem A.2).
#[derive(Debug, Clone)]
pub struct Memorizing {
    k_prime: f64,
    d: f64,
    reads: HashMap<String, f64>,
    writes: HashMap<String, f64>,
    states: HashMap<String, ReplState>,
}

impl Memorizing {
    /// Creates the algorithm with parameters `K'` and `D`.
    ///
    /// # Panics
    ///
    /// Panics unless `k_prime > 0` and `d >= 0`.
    pub fn new(k_prime: f64, d: f64) -> Self {
        assert!(k_prime > 0.0, "K' must be positive");
        assert!(d >= 0.0, "D must be non-negative");
        Memorizing {
            k_prime,
            d,
            reads: HashMap::new(),
            writes: HashMap::new(),
            states: HashMap::new(),
        }
    }

    fn check(&mut self, key: &str) -> ReplState {
        let r = *self.reads.get(key).unwrap_or(&0.0);
        let w = *self.writes.get(key).unwrap_or(&0.0);
        let state = self
            .states
            .entry(key.to_owned())
            .or_insert(ReplState::NotReplicated);
        if w * self.k_prime + self.d <= r {
            *state = ReplState::Replicated;
            // Reset per the paper: wCount ← 0, rCount ← D.
            self.writes.insert(key.to_owned(), 0.0);
            self.reads.insert(key.to_owned(), self.d);
        } else if w * self.k_prime - self.d >= r {
            *state = ReplState::NotReplicated;
            // Reset per the paper: rCount ← 0, wCount ← D/K'.
            self.reads.insert(key.to_owned(), 0.0);
            self.writes.insert(key.to_owned(), self.d / self.k_prime);
        }
        *state
    }
}

impl ReplicationPolicy for Memorizing {
    fn seed_state(&mut self, key: &str, state: ReplState) {
        self.states.insert(key.to_owned(), state);
        if state == ReplState::Replicated {
            // Start at the replication boundary so the next writes can
            // deprecate it (the paper's counter reset after a flip to R).
            self.reads.insert(key.to_owned(), self.d);
        }
    }

    fn on_write(&mut self, key: &str) -> ReplState {
        *self.writes.entry(key.to_owned()).or_insert(0.0) += 1.0;
        self.check(key)
    }

    fn on_read(&mut self, key: &str) -> ReplState {
        *self.reads.entry(key.to_owned()).or_insert(0.0) += 1.0;
        self.check(key)
    }

    fn name(&self) -> String {
        format!("GRuB-memorizing (K'={}, D={})", self.k_prime, self.d)
    }
}

/// The adaptive-K heuristics of Appendix C.3.
///
/// On each write the policy predicts the coming read burst as the average
/// reads-per-write over the last `window` writes of the same key, and
/// compares the prediction against the Equation-1 threshold:
///
/// * **K1** ("the future repeats the past"): replicate iff
///   `predicted ≥ threshold`;
/// * **K2** (the dual: "the future does not repeat the past"): replicate iff
///   `predicted < threshold`.
///
/// The paper finds K1 slightly *worse* (+0.8% Gas) and K2 better (−12.8%)
/// on the oracle trace — see Table 5 and the `fig15_table5` experiment.
#[derive(Debug, Clone)]
pub struct AdaptiveK {
    dual: bool,
    window: usize,
    threshold: f64,
    history: HashMap<String, Vec<u64>>,
    since_write: HashMap<String, u64>,
    states: HashMap<String, ReplState>,
}

impl AdaptiveK {
    /// The K1 policy (replicate when the predicted burst clears the
    /// threshold).
    pub fn k1(window: usize, schedule: &GasSchedule) -> Self {
        Self::with_threshold(false, window, schedule.two_competitive_k())
    }

    /// The K2 policy (the dual of K1).
    pub fn k2(window: usize, schedule: &GasSchedule) -> Self {
        Self::with_threshold(true, window, schedule.two_competitive_k())
    }

    /// Explicit-threshold constructor for ablations.
    pub fn with_threshold(dual: bool, window: usize, threshold: f64) -> Self {
        AdaptiveK {
            dual,
            window: window.max(1),
            threshold,
            history: HashMap::new(),
            since_write: HashMap::new(),
            states: HashMap::new(),
        }
    }
}

impl ReplicationPolicy for AdaptiveK {
    fn on_write(&mut self, key: &str) -> ReplState {
        // Close out the burst that followed the previous write.
        let burst = self.since_write.insert(key.to_owned(), 0).unwrap_or(0);
        let bursts = self.history.entry(key.to_owned()).or_default();
        bursts.push(burst);
        if bursts.len() > self.window {
            bursts.remove(0);
        }
        let predicted = bursts.iter().sum::<u64>() as f64 / bursts.len() as f64;
        let repeat_says_replicate = predicted >= self.threshold;
        let state = if repeat_says_replicate != self.dual {
            ReplState::Replicated
        } else {
            ReplState::NotReplicated
        };
        self.states.insert(key.to_owned(), state);
        state
    }

    fn on_read(&mut self, key: &str) -> ReplState {
        *self.since_write.entry(key.to_owned()).or_insert(0) += 1;
        *self.states.get(key).unwrap_or(&ReplState::NotReplicated)
    }

    fn name(&self) -> String {
        format!(
            "GRuB-memorizing (Adaptive {}, w={})",
            if self.dual { "K2" } else { "K1" },
            self.window
        )
    }
}

/// The offline-optimal reference of Appendix A: sees the whole trace in
/// advance and, at each write, replicates exactly when the number of reads
/// before the next write of that key is at least the Equation-1 threshold.
#[derive(Debug, Clone)]
pub struct OfflineOptimal {
    /// Per key: queue of decisions, one per write, in trace order. BTree
    /// maps keep the offline precomputation order-deterministic (this is a
    /// reference policy, never a hot path).
    decisions: std::collections::BTreeMap<String, std::collections::VecDeque<ReplState>>,
    states: HashMap<String, ReplState>,
}

impl OfflineOptimal {
    /// Precomputes decisions for `trace` with threshold `k` (use
    /// `schedule.two_competitive_k()` for the Gas-optimal setting), with an
    /// unbounded lookahead — every read up to the key's next write counts.
    pub fn from_trace(trace: &Trace, k: f64) -> Self {
        Self::from_trace_windowed(trace, k, usize::MAX)
    }

    /// Like [`OfflineOptimal::from_trace`] with the lookahead bounded to a
    /// sliding `window` of trace operations (clamped to ≥ 1): a write's
    /// decision counts only the reads arriving within the next `window`
    /// ops. A window at least as long as the trace reproduces the
    /// unbounded construction exactly (asserted per scenario in
    /// `tests/scenario_matrix.rs`).
    pub fn from_trace_windowed(trace: &Trace, k: f64, window: usize) -> Self {
        let mut source = trace.clone().into_source();
        Self::from_source(&mut source, k, window)
    }

    /// The streaming construction: pulls the trace through an [`OpSource`]
    /// one op at a time, so the precomputation's live state is bounded by
    /// the lookahead `window` (open write horizons), never the trace length
    /// — the whole-trace materialization the old construction required is
    /// gone.
    pub fn from_source(source: &mut dyn OpSource, k: f64, window: usize) -> Self {
        let window = window.max(1);
        // reads-following count per (key, write occurrence), closed out when
        // the next write of the same key arrives, the lookahead window ends,
        // or the trace does.
        let mut upcoming: std::collections::BTreeMap<
            String,
            std::collections::VecDeque<ReplState>,
        > = std::collections::BTreeMap::new();
        let mut open: std::collections::BTreeMap<String, (usize, u64)> =
            std::collections::BTreeMap::new();
        let mut horizon: std::collections::VecDeque<(usize, String)> =
            std::collections::VecDeque::new();
        let mut i = 0usize;
        while let Some(op) = source.next_op() {
            while let Some((opened_at, _)) = horizon.front() {
                if i - opened_at < window {
                    break;
                }
                let Some((opened_at, key)) = horizon.pop_front() else {
                    break;
                };
                // A newer write of the same key reuses the slot; only close
                // it if this horizon entry is still the live occurrence.
                if open.get(&key).is_some_and(|(at, _)| *at == opened_at) {
                    if let Some((_, reads)) = open.remove(&key) {
                        push_decision(&mut upcoming, &key, reads, k);
                    }
                }
            }
            match op {
                Op::Write { key, .. } => {
                    if let Some((_, reads)) = open.insert(key.clone(), (i, 0)) {
                        push_decision(&mut upcoming, &key, reads, k);
                    }
                    horizon.push_back((i, key));
                }
                Op::Read { key } => {
                    if let Some((_, c)) = open.get_mut(&key) {
                        *c += 1;
                    }
                }
                Op::Scan { start_key, .. } => {
                    if let Some((_, c)) = open.get_mut(&start_key) {
                        *c += 1;
                    }
                }
            }
            i += 1;
        }
        for (key, (_, reads)) in open {
            push_decision(&mut upcoming, &key, reads, k);
        }
        OfflineOptimal {
            decisions: upcoming,
            states: HashMap::new(),
        }
    }
}

fn push_decision(
    map: &mut std::collections::BTreeMap<String, std::collections::VecDeque<ReplState>>,
    key: &str,
    reads: u64,
    k: f64,
) {
    let state = if (reads as f64) >= k {
        ReplState::Replicated
    } else {
        ReplState::NotReplicated
    };
    map.entry(key.to_owned()).or_default().push_back(state);
}

impl ReplicationPolicy for OfflineOptimal {
    fn on_write(&mut self, key: &str) -> ReplState {
        let state = self
            .decisions
            .get_mut(key)
            .and_then(|q| q.pop_front())
            .unwrap_or(ReplState::NotReplicated);
        self.states.insert(key.to_owned(), state);
        state
    }

    fn on_read(&mut self, key: &str) -> ReplState {
        *self.states.get(key).unwrap_or(&ReplState::NotReplicated)
    }

    fn name(&self) -> String {
        "Optimal offline".into()
    }
}

/// A self-tuning variant of the memoryless algorithm — the extension the
/// paper leaves as future work ("using machine learning techniques to
/// automatically and adaptively find an optimal K", Appendix C.3).
///
/// The tuner keeps a sliding window of observed read bursts and, every
/// `retune_every` writes, replays the window *counterfactually* under each
/// candidate `K`, charging the Gas cost model for the decisions that `K`
/// would have made:
///
/// * a burst of `n` reads under threshold `K` pays `min(n, K)` deliveries;
/// * if `n ≥ K` it also pays one replica installation plus cheap on-chain
///   reads for the remaining `n − K` accesses, and one eviction at the next
///   write.
///
/// The candidate with the lowest counterfactual cost becomes the live `K`.
#[derive(Debug, Clone)]
pub struct SelfTuningK {
    inner: Memoryless,
    window: usize,
    retune_every: u64,
    bursts: std::collections::VecDeque<u64>,
    since_write: HashMap<String, u64>,
    writes_seen: u64,
    deliver_cost: f64,
    replica_cost: f64,
    onchain_read_cost: f64,
    candidates: Vec<u64>,
}

impl SelfTuningK {
    /// Creates the tuner with a burst window of `window` and the cost model
    /// from `schedule`.
    pub fn new(window: usize, schedule: &GasSchedule) -> Self {
        // A delivery moves the record + a short proof on chain; a replica
        // pays a fresh insert now and an update-priced eviction later.
        let deliver_cost = schedule.tx_cost_words(12) as f64;
        let replica_cost = (schedule.storage_insert(1) + schedule.storage_update(1)) as f64;
        let onchain_read_cost = schedule.storage_read(1) as f64;
        SelfTuningK {
            inner: Memoryless::new(schedule.two_competitive_k().round().max(1.0) as u64),
            window: window.max(4),
            retune_every: 8,
            bursts: std::collections::VecDeque::new(),
            since_write: HashMap::new(),
            writes_seen: 0,
            deliver_cost,
            replica_cost,
            onchain_read_cost,
            candidates: vec![1, 2, 4, 8, 16, 32],
        }
    }

    /// The currently selected threshold.
    pub fn current_k(&self) -> u64 {
        self.inner.k()
    }

    fn counterfactual_cost(&self, k: u64) -> f64 {
        self.bursts
            .iter()
            .map(|&n| {
                let delivered = n.min(k) as f64;
                let mut cost = delivered * self.deliver_cost;
                if n >= k {
                    cost += self.replica_cost + (n - k) as f64 * self.onchain_read_cost;
                }
                cost
            })
            .sum()
    }

    fn retune(&mut self) {
        let best = self
            .candidates
            .iter()
            .copied()
            .min_by(|a, b| {
                self.counterfactual_cost(*a)
                    .total_cmp(&self.counterfactual_cost(*b))
            })
            .unwrap_or(2);
        if best != self.inner.k() {
            // Carry the per-key states into a fresh threshold: keep current
            // decisions, reset only the counters (memoryless semantics).
            let mut next = Memoryless::new(best);
            next.carry_states(self.inner.take_states());
            self.inner = next;
        }
    }
}

impl ReplicationPolicy for SelfTuningK {
    fn seed_state(&mut self, key: &str, state: ReplState) {
        self.inner.seed_state(key, state);
    }

    fn on_write(&mut self, key: &str) -> ReplState {
        let burst = self.since_write.insert(key.to_owned(), 0).unwrap_or(0);
        self.bursts.push_back(burst);
        while self.bursts.len() > self.window {
            self.bursts.pop_front();
        }
        self.writes_seen += 1;
        if self.writes_seen.is_multiple_of(self.retune_every) && !self.bursts.is_empty() {
            self.retune();
        }
        self.inner.on_write(key)
    }

    fn on_read(&mut self, key: &str) -> ReplState {
        *self.since_write.entry(key.to_owned()).or_insert(0) += 1;
        self.inner.on_read(key)
    }

    fn name(&self) -> String {
        format!("GRuB-self-tuning (K={}, w={})", self.inner.k(), self.window)
    }
}

/// A fee-aware deferral wrapper: delegates every decision to an inner
/// policy, but while the observed gas price (see
/// [`ReplicationPolicy::observe_fee_price`]) is above `threshold_permille`
/// it suppresses *fresh* NR→R replications — installing a replica costs
/// `Cinsert`-scale gas that is strictly cheaper in the next low-fee window.
///
/// Only installs are deferred: records already replicated keep following the
/// inner policy (evicting and re-installing around a spike would cost more,
/// not less), and data writes are never delayed (freshness is part of the
/// feed's contract). The wrapper tracks the state it last *granted* per key,
/// which — because the actuator realizes every granted transition at the
/// epoch boundary — mirrors the record's actual on-chain state.
pub struct FeeAware {
    inner: Box<dyn ReplicationPolicy>,
    threshold_permille: u64,
    price_permille: u64,
    granted: HashMap<String, ReplState>,
}

impl FeeAware {
    /// Wraps `inner`, deferring replications while the price exceeds
    /// `threshold_permille`.
    pub fn new(inner: Box<dyn ReplicationPolicy>, threshold_permille: u64) -> Self {
        FeeAware {
            inner,
            threshold_permille,
            price_permille: grub_gas::BASE_PRICE_PERMILLE,
            granted: HashMap::new(),
        }
    }

    fn decide(&mut self, key: &str, want: ReplState) -> ReplState {
        let have = self
            .granted
            .get(key)
            .copied()
            .unwrap_or(ReplState::NotReplicated);
        let out = if want == ReplState::Replicated
            && have == ReplState::NotReplicated
            && self.price_permille > self.threshold_permille
        {
            ReplState::NotReplicated
        } else {
            want
        };
        self.granted.insert(key.to_owned(), out);
        out
    }
}

impl ReplicationPolicy for FeeAware {
    fn on_write(&mut self, key: &str) -> ReplState {
        let want = self.inner.on_write(key);
        self.decide(key, want)
    }

    fn on_read(&mut self, key: &str) -> ReplState {
        let want = self.inner.on_read(key);
        self.decide(key, want)
    }

    fn name(&self) -> String {
        format!(
            "fee-aware[>{}‰]({})",
            self.threshold_permille,
            self.inner.name()
        )
    }

    fn seed_state(&mut self, key: &str, state: ReplState) {
        self.granted.insert(key.to_owned(), state);
        self.inner.seed_state(key, state);
    }

    fn observe_fee_price(&mut self, price_permille: u64) {
        self.price_permille = price_permille;
        self.inner.observe_fee_price(price_permille);
    }
}

/// Declarative policy selection for experiment configs.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Never replicate.
    Bl1,
    /// Always replicate.
    Bl2,
    /// Algorithm 1 with threshold `k`.
    Memoryless {
        /// Consecutive-read threshold.
        k: u64,
    },
    /// Algorithm 2 with parameters `k_prime` and `d`.
    Memorizing {
        /// The K' cost ratio.
        k_prime: f64,
        /// The D sensitivity window.
        d: f64,
    },
    /// Appendix C.3 heuristic, `dual = false` for K1, `true` for K2.
    Adaptive {
        /// Whether to invert the prediction (K2).
        dual: bool,
        /// Number of past writes averaged.
        window: usize,
    },
    /// The future-work extension: counterfactual self-tuning of `K` over a
    /// sliding burst window.
    SelfTuning {
        /// Burst-window length.
        window: usize,
    },
    /// [`FeeAware`] deferral around any inner policy: replications are
    /// postponed while the gas price exceeds the threshold.
    FeeAware {
        /// Prices above this (permille of the flat schedule) defer NR→R.
        threshold_permille: u64,
        /// The wrapped decision maker.
        inner: Box<PolicyKind>,
    },
}

impl PolicyKind {
    /// Instantiates the policy against a Gas schedule.
    pub fn build(&self, schedule: &GasSchedule) -> Box<dyn ReplicationPolicy> {
        match *self {
            PolicyKind::Bl1 => Box::new(Bl1),
            PolicyKind::Bl2 => Box::new(Bl2),
            PolicyKind::Memoryless { k } => Box::new(Memoryless::new(k)),
            PolicyKind::Memorizing { k_prime, d } => Box::new(Memorizing::new(k_prime, d)),
            PolicyKind::Adaptive { dual, window } => Box::new(AdaptiveK::with_threshold(
                dual,
                window,
                schedule.two_competitive_k(),
            )),
            PolicyKind::SelfTuning { window } => Box::new(SelfTuningK::new(window, schedule)),
            PolicyKind::FeeAware {
                threshold_permille,
                ref inner,
            } => Box::new(FeeAware::new(inner.build(schedule), threshold_permille)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grub_workload::ValueSpec;

    const NR: ReplState = ReplState::NotReplicated;
    const R: ReplState = ReplState::Replicated;

    #[test]
    fn bl1_never_replicates() {
        let mut p = Bl1;
        assert_eq!(p.on_write("k"), NR);
        for _ in 0..100 {
            assert_eq!(p.on_read("k"), NR);
        }
    }

    #[test]
    fn bl2_always_replicates() {
        let mut p = Bl2;
        assert_eq!(p.on_write("k"), R);
        assert_eq!(p.on_read("other"), R);
    }

    #[test]
    fn memoryless_flips_after_k_consecutive_reads() {
        let mut p = Memoryless::new(3);
        p.on_write("k");
        assert_eq!(p.on_read("k"), NR);
        assert_eq!(p.on_read("k"), NR);
        assert_eq!(p.on_read("k"), R, "third read reaches K=3");
        assert_eq!(p.on_read("k"), R, "stays replicated");
    }

    #[test]
    fn memoryless_write_resets_to_nr() {
        let mut p = Memoryless::new(2);
        p.on_write("k");
        p.on_read("k");
        p.on_read("k");
        assert_eq!(p.on_read("k"), R);
        assert_eq!(p.on_write("k"), NR, "write evicts");
        assert_eq!(p.on_read("k"), NR, "counter restarted");
        assert_eq!(p.on_read("k"), R);
    }

    #[test]
    fn memoryless_counters_are_per_key() {
        let mut p = Memoryless::new(2);
        p.on_write("a");
        p.on_write("b");
        p.on_read("a");
        assert_eq!(p.on_read("a"), R);
        assert_eq!(p.on_read("b"), NR, "b has its own counter");
    }

    #[test]
    fn equation1_k_defaults_to_two() {
        let p = Memoryless::two_competitive(&GasSchedule::default());
        assert_eq!(p.k(), 2);
    }

    #[test]
    fn memorizing_replicates_under_sustained_reads() {
        let mut p = Memorizing::new(2.0, 4.0);
        p.on_write("k"); // w=1: 1·2 − 4 ≥ 0? −2 ≥ 0 no; stays NR
        let mut state = NR;
        for _ in 0..6 {
            state = p.on_read("k");
        }
        // r=6, w=1 ⇒ 1·2 + 4 ≤ 6 ⇒ flip to R.
        assert_eq!(state, R);
    }

    #[test]
    fn memorizing_deprecates_under_sustained_writes() {
        let mut p = Memorizing::new(2.0, 2.0);
        for _ in 0..4 {
            p.on_read("k");
        }
        assert_eq!(p.on_read("k"), R, "5 reads, 0 writes: replicate");
        // Now hammer writes: r stays, w grows until w·2 − 2 ≥ r.
        let mut state = R;
        for _ in 0..10 {
            state = p.on_write("k");
        }
        assert_eq!(state, NR);
    }

    #[test]
    fn memorizing_remembers_across_writes_unlike_memoryless() {
        // Alternating r r w r r w …: memoryless with K=3 never replicates;
        // memorizing accumulates reads and eventually does.
        let mut ml = Memoryless::new(3);
        let mut mz = Memorizing::new(3.0, 1.0);
        let mut ml_final = NR;
        let mut mz_final = NR;
        for _ in 0..30 {
            ml.on_read("k");
            ml.on_read("k");
            ml_final = ml.on_write("k");
            mz.on_read("k");
            mz.on_read("k");
            mz_final = mz.on_write("k");
        }
        assert_eq!(ml_final, NR);
        // Memorizing sees r:w ratio 2 per cycle < K'=3 ⇒ also NR... so use a
        // read-richer cycle for the locality claim.
        let mut mz2 = Memorizing::new(3.0, 1.0);
        let mut state = NR;
        for _ in 0..30 {
            for _ in 0..4 {
                state = mz2.on_read("k");
            }
            mz2.on_write("k");
        }
        assert_eq!(state, R, "ratio 4 > K'=3 accumulates to R");
        let _ = mz_final;
    }

    #[test]
    #[should_panic(expected = "K' must be positive")]
    fn memorizing_rejects_bad_params() {
        Memorizing::new(0.0, 1.0);
    }

    #[test]
    fn adaptive_k1_follows_history() {
        let schedule = GasSchedule::default();
        let mut p = AdaptiveK::k1(3, &schedule);
        // Three writes each followed by 5 reads ⇒ prediction 5 ≥ 2.3 ⇒ R.
        for _ in 0..3 {
            p.on_write("k");
            for _ in 0..5 {
                p.on_read("k");
            }
        }
        assert_eq!(p.on_write("k"), R);
    }

    #[test]
    fn adaptive_k2_is_dual_of_k1() {
        let schedule = GasSchedule::default();
        let mut k1 = AdaptiveK::k1(3, &schedule);
        let mut k2 = AdaptiveK::k2(3, &schedule);
        for _ in 0..3 {
            k1.on_write("k");
            k2.on_write("k");
            for _ in 0..5 {
                k1.on_read("k");
                k2.on_read("k");
            }
        }
        assert_eq!(k1.on_write("k"), R);
        assert_eq!(k2.on_write("k"), NR);
    }

    #[test]
    fn offline_optimal_replicates_exactly_long_bursts() {
        let w = |key: &str| Op::Write {
            key: key.into(),
            value: ValueSpec::new(8, 0),
        };
        let r = |key: &str| Op::Read { key: key.into() };
        // write, 1 read, write, 5 reads.
        let trace: Trace = vec![
            w("k"),
            r("k"),
            w("k"),
            r("k"),
            r("k"),
            r("k"),
            r("k"),
            r("k"),
        ]
        .into_iter()
        .collect();
        let mut p = OfflineOptimal::from_trace(&trace, 2.3);
        assert_eq!(p.on_write("k"), NR, "only 1 read follows: not worth it");
        assert_eq!(p.on_read("k"), NR);
        assert_eq!(p.on_write("k"), R, "5 reads follow: replicate at write");
    }

    #[test]
    fn offline_optimal_handles_unseen_keys() {
        let trace = Trace::new();
        let mut p = OfflineOptimal::from_trace(&trace, 2.0);
        assert_eq!(p.on_write("ghost"), NR);
        assert_eq!(p.on_read("ghost"), NR);
    }

    #[test]
    fn policy_kind_builds_all_variants() {
        let s = GasSchedule::default();
        for kind in [
            PolicyKind::Bl1,
            PolicyKind::Bl2,
            PolicyKind::Memoryless { k: 2 },
            PolicyKind::Memorizing {
                k_prime: 2.0,
                d: 1.0,
            },
            PolicyKind::Adaptive {
                dual: false,
                window: 3,
            },
            PolicyKind::Adaptive {
                dual: true,
                window: 3,
            },
        ] {
            let mut p = kind.build(&s);
            let _ = p.on_write("k");
            let _ = p.on_read("k");
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn self_tuner_raises_k_for_single_read_bursts() {
        // Bursts of exactly one read: K=1 pays a wasted replica every cycle
        // (the deliver happens anyway, then the write evicts), so any K ≥ 2
        // is strictly cheaper and the tuner must move off K=1.
        let schedule = GasSchedule::default();
        let mut p = SelfTuningK::new(16, &schedule);
        for _ in 0..64 {
            p.on_write("k");
            p.on_read("k");
        }
        assert!(p.current_k() >= 2, "K=1 wastes a replica per 1-read burst");
    }

    #[test]
    fn self_tuner_lowers_k_under_long_bursts() {
        let schedule = GasSchedule::default();
        let mut p = SelfTuningK::new(16, &schedule);
        for _ in 0..64 {
            p.on_write("k");
            for _ in 0..24 {
                p.on_read("k");
            }
        }
        assert_eq!(
            p.current_k(),
            1,
            "long bursts: replicate on the first read (K=1) is optimal"
        );
    }

    #[test]
    fn self_tuner_never_replicates_write_only_streams() {
        // With zero-read bursts every candidate K costs the same (nothing),
        // and whatever K is selected must keep the record off chain.
        let schedule = GasSchedule::default();
        let mut p = SelfTuningK::new(16, &schedule);
        for _ in 0..64 {
            assert_eq!(p.on_write("k"), NR);
        }
    }

    /// Theorem A.1's worst case: every write followed by exactly K reads
    /// means the memoryless algorithm replicates right when it stops paying
    /// off. The decision sequence must be: flip to R on the K-th read, back
    /// to NR on the write — every cycle.
    #[test]
    fn memoryless_worst_case_oscillates() {
        let k = 4u64;
        let mut p = Memoryless::new(k);
        for cycle in 0..10 {
            assert_eq!(p.on_write("k"), NR, "cycle {cycle}");
            for i in 1..k {
                assert_eq!(p.on_read("k"), NR, "cycle {cycle} read {i}");
            }
            assert_eq!(p.on_read("k"), R, "cycle {cycle} K-th read");
        }
    }
}
