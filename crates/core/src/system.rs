//! The system harness: wires chain + DO + SP + consumer contracts and
//! drives workloads epoch by epoch (paper Figure 4a, §5 methodology) —
//! either from a materialized [`Trace`] or, at O(1) trace-side memory,
//! pulled lazily from any [`OpSource`] (the ingestion layer's streaming
//! contract; see `grub_workload::source`).
//!
//! Epoch mechanics follow the paper's experiments: trace operations are
//! processed in order; reads are submitted as consumer transactions (batched
//! per the §5.1 note "each transaction encoding 32 operations"); writes are
//! batched by the DO into one `update` transaction per epoch; the SP's
//! watchdog answers replica misses with proof-carrying `deliver`
//! transactions in the following block. Gas is read off the chain's meter
//! per epoch and attributed to feed and application layers.
//!
//! The machinery comes in three layers:
//!
//! * [`EpochStage`] — the `Send`-safe off-chain half of one feed: the DO,
//!   the SP, and the open epoch's buffered operations. Trace ingestion
//!   ([`EpochStage::push_op`]) and epoch closing
//!   ([`EpochStage::stage_update`]) never borrow the chain, so a parallel
//!   scheduler can move them to worker threads;
//! * [`EpochDriver`] — one feed's full deployment (an `EpochStage` plus
//!   storage-manager and consumer contracts) *without* a chain of its own:
//!   every chain-facing method borrows a [`Blockchain`], so any number of
//!   drivers can share one chain. The epoch decomposes into the staged
//!   lifecycles documented on [`EpochDriver`] —
//!   [`EpochDriver::stage_update`] / [`EpochDriver::submit_update`] /
//!   [`EpochDriver::run_read_phase`] for the write path, and
//!   [`EpochDriver::stage_reads`] / [`EpochDriver::finish_staged_epoch`]
//!   for the read path — so external schedulers (the multi-tenant
//!   `grub-engine`) can reroute both the staged `update()` payloads and the
//!   watchdog's `deliver()` payloads through shard-level batch
//!   transactions;
//! * [`GrubSystem`] — the classic single-feed harness: owns one chain and
//!   one driver and exposes the one-call `run_trace` entry points.

use std::rc::Rc;

use grub_chain::codec::Encoder;
use grub_chain::{Address, Blockchain, ChainConfig, Transaction};
use grub_gas::Layer;
use grub_merkle::ReplState;
use grub_workload::{Op, OpSource, Trace};

use crate::contract::{NullConsumer, OnChainTrace, StorageManager};
use crate::metrics::{EpochReport, RunReport};
use crate::owner::DataOwner;
use crate::policy::{PolicyKind, ReplicationPolicy};
use crate::provider::{AdversaryMode, StorageProvider};
use crate::{GrubError, Result};

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Replication policy under test.
    pub policy: PolicyKind,
    /// Trace operations per epoch (the paper's experiments use 32, or 4 for
    /// the BtcRelay study).
    pub epoch_ops: usize,
    /// Reads batched per consumer transaction (§5.1: 32).
    pub reads_per_tx: usize,
    /// Records preloaded before metering starts.
    pub preload: Vec<(String, Vec<u8>)>,
    /// Where monitoring counters live (BL3 baselines store them on-chain).
    pub on_chain_trace: OnChainTrace,
    /// Overrides the preload placement: `None` derives it from the policy
    /// (BL2 preloads replicated, everything else not); `Some(true)` warm-
    /// starts an adaptive policy with the dataset already replicated — the
    /// slot capex lands in the unmetered provisioning phase and steady-state
    /// re-replication costs `Cupdate` via slot reuse.
    pub preload_replicated: Option<bool>,
    /// Whether an epoch's reads are batched into shared blocks (the §5.1
    /// methodology, 32 ops per transaction) or arrive one per block as a
    /// live trace replay does (§4's oracle and BtcRelay experiments). When
    /// reads share a block, same-key requests coalesce into one `deliver`.
    pub coalesce_reads: bool,
    /// A *streaming* preload: write operations pulled one at a time from an
    /// [`OpSource`] and applied incrementally (DO mirror, SP sync, chunked
    /// on-chain seeding), so the preload never materializes a second copy of
    /// the dataset. Non-write operations in the stream are ignored. Used in
    /// addition to (after) the materialized `preload` records.
    pub preload_source: Option<Box<dyn OpSource>>,
    /// Where the SP's LSM store lives. `None` (the default) uses a fresh
    /// temp directory that is deleted when the provider drops; `Some(dir)`
    /// opens a *persistent* store at `dir` that survives drops and simulated
    /// process deaths — the crash-recovery tests point each feed here.
    pub store_dir: Option<std::path::PathBuf>,
    /// SP store tuning knobs (`None` = [`grub_store::Options::default`]).
    /// Crash tests shrink `memtable_bytes` so SSTable flushes — and the
    /// mid-flush crash point — actually occur on small workloads.
    pub store_options: Option<grub_store::Options>,
    /// Chain timing parameters.
    pub chain: ChainConfig,
}

impl SystemConfig {
    /// A config with the paper's defaults for the given policy.
    pub fn new(policy: PolicyKind) -> Self {
        SystemConfig {
            policy,
            epoch_ops: 32,
            reads_per_tx: 32,
            preload: Vec::new(),
            on_chain_trace: OnChainTrace::None,
            preload_replicated: None,
            coalesce_reads: true,
            preload_source: None,
            store_dir: None,
            store_options: None,
            chain: ChainConfig::default(),
        }
    }

    /// Warm-starts the deployment with the preload already replicated.
    pub fn warm_start(mut self) -> Self {
        self.preload_replicated = Some(true);
        self
    }

    /// Replays reads one per block instead of batching them (the §4 case
    /// studies' tempo).
    pub fn live_reads(mut self) -> Self {
        self.coalesce_reads = false;
        self.reads_per_tx = 1;
        self
    }

    /// Sets the epoch size in operations.
    pub fn epoch_ops(mut self, ops: usize) -> Self {
        self.epoch_ops = ops.max(1);
        self
    }

    /// Sets the preload dataset.
    pub fn preload(mut self, records: Vec<(String, Vec<u8>)>) -> Self {
        self.preload = records;
        self
    }

    /// Streams the preload from an [`OpSource`] instead of a materialized
    /// record vector: each `Write` op is applied (and its on-chain seeding
    /// chunk flushed) as it is pulled, so preload-side memory stays constant
    /// in the dataset size.
    pub fn preload_stream(mut self, source: Box<dyn OpSource>) -> Self {
        self.preload_source = Some(source);
        self
    }

    /// Points the SP's store at a persistent directory (surviving drops and
    /// simulated crashes) instead of an ephemeral temp dir.
    pub fn store_at(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Overrides the SP store's tuning knobs.
    pub fn store_options(mut self, options: grub_store::Options) -> Self {
        self.store_options = Some(options);
        self
    }

    /// Enables a BL3 on-chain-trace baseline.
    pub fn on_chain_trace(mut self, mode: OnChainTrace) -> Self {
        self.on_chain_trace = mode;
        self
    }
}

/// Builds the consumer transactions for an epoch's pending read keys —
/// harnesses override this to route reads through application contracts
/// (e.g. SCoinIssuer's `issue`/`redeem`, §4.1). `Send` so a driver carrying
/// a custom builder can still cross threads with its engine.
pub type ReadTxBuilder = Box<dyn Fn(&[String]) -> Vec<Transaction> + Send>;

/// On-chain identity of one feed deployment: how its contract and account
/// addresses are derived, and who besides the DO may call `update()`.
#[derive(Clone, Debug, Default)]
pub struct DriverIdentity {
    /// Distinguishes this feed's addresses from other feeds sharing the
    /// chain. The empty namespace yields the classic singleton layout
    /// (`grub-storage-manager` etc.); a multi-tenant engine passes the
    /// tenant name.
    pub namespace: String,
    /// An additional account/contract authorized to call `update()` on this
    /// feed's storage manager — the shard router that batches many feeds'
    /// epoch updates into one transaction.
    pub update_delegate: Option<Address>,
}

impl DriverIdentity {
    /// Identity for a namespaced tenant feed.
    pub fn tenant(namespace: impl Into<String>) -> Self {
        DriverIdentity {
            namespace: namespace.into(),
            update_delegate: None,
        }
    }

    /// Adds a delegated `update()` caller (the shard router).
    pub fn with_update_delegate(mut self, delegate: Address) -> Self {
        self.update_delegate = Some(delegate);
        self
    }

    fn derive(&self, base: &str) -> Address {
        if self.namespace.is_empty() {
            Address::derive(base)
        } else {
            Address::derive(&format!("{base}/{}", self.namespace))
        }
    }
}

/// One epoch's staged `update()` transaction payloads, produced by
/// [`EpochDriver::stage_update`] and consumed either by
/// [`EpochDriver::submit_update`] (the single-feed path) or by an external
/// batcher that routes the chunks through a shard-level transaction.
#[derive(Clone, Debug, Default)]
pub struct StagedUpdate {
    /// Encoded `update()` inputs, each under the `Ctx` 1000-word bound.
    /// Empty when the epoch had nothing to flush.
    pub chunks: Vec<Vec<u8>>,
    /// Trace operations closed out by this epoch.
    pub ops: usize,
    /// NR→R transitions actuated at this flush.
    pub replications: usize,
    /// R→NR transitions actuated at this flush.
    pub evictions: usize,
}

impl StagedUpdate {
    /// Total payload bytes across all chunks.
    pub fn payload_bytes(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }
}

/// Cumulative hot-path counters for one feed's off-chain halves: the SP
/// store's read fast path plus the Merkle work both tree holders performed.
/// Observability only — none of these numbers may reach a digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StagePerf {
    /// SP store block-cache hits.
    pub cache_hits: u64,
    /// SP store block-cache misses.
    pub cache_misses: u64,
    /// SP store table probes answered by a bloom true negative.
    pub bloom_skips: u64,
    /// Merkle nodes rehashed by batched updates (SP tree + DO mirror).
    pub merkle_nodes_rehashed: u64,
}

/// One epoch's staged read phase, produced by [`EpochDriver::stage_reads`]
/// and consumed by [`EpochDriver::finish_staged_epoch`].
///
/// `stage_reads` runs everything up to — but not including — the SP's
/// `deliver` transactions: the consumer read block is sealed and the
/// watchdog's deliver payloads are collected instead of mined, so an
/// external scheduler (the multi-tenant `grub-engine`) can coalesce many
/// feeds' deliveries into one shard-level `batchDeliver` transaction. The
/// Gas the feed burned on its own read block is snapshot-differenced here,
/// keeping per-feed attribution exact; the batched deliver transaction's
/// Gas is attributed by the scheduler.
#[derive(Clone, Debug, Default)]
pub struct StagedReads {
    /// Encoded `deliver()` inputs for this feed's storage manager, one per
    /// watchdog delivery (same-key point requests are already coalesced).
    /// Empty when every read hit an on-chain replica or the epoch had no
    /// reads.
    pub delivers: Vec<Vec<u8>>,
    /// Feed-layer Gas metered across the feed's own staged read work.
    feed_gas: u64,
    /// Application-layer Gas metered across the feed's own staged read work.
    app_gas: u64,
}

impl StagedReads {
    /// Total deliver payload bytes staged for batching.
    pub fn payload_bytes(&self) -> usize {
        self.delivers.iter().map(Vec::len).sum()
    }
}

/// The `Send`-safe off-chain half of one feed deployment: the data owner
/// (policy state machine + hash mirror), the storage provider (store +
/// Merkle tree), and the open epoch's staged operations.
///
/// Everything a feed does *between* chain interactions lives here — trace
/// ingestion ([`EpochStage::push_op`]: policy decisions, write staging) and
/// epoch closing ([`EpochStage::stage_update`]: mirror mutation, SP sync
/// with Merkle-tree recomputation, `update()` section encoding). None of it
/// borrows the [`Blockchain`], which is what lets a parallel scheduler
/// (the `grub-engine` `ParallelExecutor`) move a shard's stages to a worker
/// thread while the chain stays on the merge thread; the compile-time
/// `Send` assertion is in this module's tests.
///
/// The chain-facing half — read transactions, block sealing, watchdog
/// delivery, Gas booking — stays on [`EpochDriver`], which owns an
/// `EpochStage` and hands it out via [`EpochDriver::stage_mut`].
pub struct EpochStage {
    owner: DataOwner,
    provider: StorageProvider,
    epoch_ops: usize,
    coalesce_reads: bool,
    pending_reads: Vec<String>,
    pending_scans: Vec<(String, String)>,
    ops_in_epoch: usize,
}

impl EpochStage {
    /// Stages a trace operation into the current epoch without chain
    /// interaction; the caller closes the epoch when
    /// [`EpochStage::epoch_is_full`] (or at end of trace).
    pub fn push_op(&mut self, op: &Op) {
        match op {
            Op::Write { key, value } => {
                self.owner.observe_write(key, value.materialize());
            }
            Op::Read { key } => {
                // In batched mode the whole epoch's reads share a block, so
                // the monitor legitimately sees them all before the SP
                // delivers; in live mode each read is observed at its own
                // block (see EpochDriver::run_read_phase).
                if self.coalesce_reads {
                    self.owner.observe_read(key);
                }
                self.pending_reads.push(key.clone());
            }
            Op::Scan { start_key, len } => {
                if self.coalesce_reads {
                    self.owner.observe_read(start_key);
                }
                self.pending_scans
                    .push((start_key.clone(), scan_end_key(start_key, *len)));
            }
        }
        self.ops_in_epoch += 1;
    }

    /// Whether the current epoch has reached its operation budget.
    pub fn epoch_is_full(&self) -> bool {
        self.ops_in_epoch >= self.epoch_ops
    }

    /// Operations staged in the still-open epoch.
    pub fn pending_ops(&self) -> usize {
        self.ops_in_epoch
    }

    /// Cumulative hot-path counters for this feed (see [`StagePerf`]).
    pub fn perf(&self) -> StagePerf {
        let reads = self.provider.read_stats();
        StagePerf {
            cache_hits: reads.cache_hits,
            cache_misses: reads.cache_misses,
            bloom_skips: reads.bloom_skips,
            merkle_nodes_rehashed: self.provider.nodes_rehashed() + self.owner.nodes_rehashed(),
        }
    }

    /// Pulls operations from `source` until the epoch is full or the
    /// stream ends — the one ingestion loop every scheduler mode shares, so
    /// sequential and parallel staging cannot drift apart. The source
    /// advances exactly as far as the epoch consumed: a scheduler that
    /// parks this feed next round simply doesn't pull, and the stream
    /// position is the only cursor.
    pub fn ingest(&mut self, source: &mut dyn OpSource) {
        while !self.epoch_is_full() {
            let Some(op) = source.next_op() else { break };
            self.push_op(&op);
        }
    }

    /// Closes the epoch's write path off-chain: flushes the DO, syncs the
    /// SP, and returns the encoded `update()` payload chunks for the caller
    /// to submit (directly, or batched through a shard router).
    ///
    /// # Errors
    ///
    /// Propagates store failures.
    pub fn stage_update(&mut self) -> Result<StagedUpdate> {
        let ops = std::mem::replace(&mut self.ops_in_epoch, 0);
        // The DO's epoch update (gPuts write path). Oversized epochs are
        // split across payload chunks: Ctx(X) is defined for X < 1000 words
        // and every chunk carries the same final digest.
        let mut flush = self.owner.flush_epoch();
        // The encoded chunks only need digest/r_updates/to_r/to_nr, so the
        // sync ops move to the SP without a clone.
        self.provider
            .apply_sync_batch(std::mem::take(&mut flush.sp_sync))?;
        let chunks = if flush.dirty {
            encode_update_chunked(&flush)
        } else {
            Vec::new()
        };
        Ok(StagedUpdate {
            chunks,
            ops,
            replications: flush.replications,
            evictions: flush.evictions,
        })
    }

    /// Pushes the DO's current decision for `key` to the SP and records a
    /// hinted replica when a deliver-time installation is expected.
    fn push_hint(&mut self, key: &str) {
        let want = self.owner.desired_state(key);
        self.provider.set_decision_hint(key, want);
        if want == ReplState::Replicated && self.owner.state_of(key) == ReplState::NotReplicated {
            self.owner.note_hinted_replica(key);
        }
    }
}

impl std::fmt::Debug for EpochStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochStage")
            .field("policy", &self.owner.policy_name())
            .field("pending_ops", &self.ops_in_epoch)
            .finish_non_exhaustive()
    }
}

/// One feed's deployment, driving epochs against a *borrowed* chain.
///
/// All per-feed state lives here; the chain (and its Gas meter) is shared,
/// which is what lets the multi-tenant engine run many drivers against one
/// blockchain. Per-epoch Gas is attributed by snapshot-differencing around
/// this feed's own read phase, so attribution stays exact as long as a
/// scheduler completes one driver's epoch work before starting the next.
///
/// # Epoch lifecycles
///
/// The classic single-feed lifecycle is one call,
/// [`EpochDriver::close_epoch`]. External schedulers decompose it into two
/// staged lifecycles so payloads can be rerouted through shard batches:
///
/// * **Staged update (write path)** — [`EpochDriver::stage_update`] closes
///   the epoch off-chain (policy flush, SP sync, section encoding) and
///   returns the `update()` chunks; the caller either submits them as this
///   feed's own transactions ([`EpochDriver::submit_update`]) or coalesces
///   them into a shard `batchUpdate`. The off-chain half lives on
///   [`EpochStage`] and may run on a worker thread.
/// * **Staged reads (read path)** — [`EpochDriver::stage_reads`] runs the
///   consumer read block and collects the watchdog's `deliver()` payloads
///   *unsubmitted* for shard-level `batchDeliver` coalescing; the epoch is
///   then booked with [`EpochDriver::finish_staged_epoch`] once the batch
///   has been mined. Only valid in coalesced-read mode — live-tempo feeds
///   interleave reads and deliveries block by block and cannot defer.
pub struct EpochDriver {
    stage: EpochStage,
    manager: Address,
    consumer: Address,
    reads_per_tx: usize,
    reports: Vec<EpochReport>,
    completed_ops: usize,
    read_tx_builder: Option<ReadTxBuilder>,
}

impl EpochDriver {
    /// Deploys one feed (contracts, DO, SP) onto `chain` and preloads its
    /// dataset. The Gas meter is *not* reset — the caller decides when
    /// provisioning ends (a multi-feed engine resets once after all feeds
    /// deploy).
    ///
    /// # Errors
    ///
    /// Propagates store failures and failed preload transactions.
    pub fn deploy(
        chain: &mut Blockchain,
        config: &SystemConfig,
        identity: &DriverIdentity,
    ) -> Result<Self> {
        let policy = config.policy.build(&grub_gas::GasSchedule::default());
        Self::deploy_with_policy(chain, config, policy, identity)
    }

    /// Like [`EpochDriver::deploy`] with an explicit policy object (offline
    /// optimal).
    ///
    /// # Errors
    ///
    /// Propagates store failures and failed preload transactions.
    pub fn deploy_with_policy(
        chain: &mut Blockchain,
        config: &SystemConfig,
        policy: Box<dyn ReplicationPolicy>,
        identity: &DriverIdentity,
    ) -> Result<Self> {
        let do_addr = identity.derive("grub-data-owner");
        let sp_addr = identity.derive("grub-storage-provider");
        let manager = identity.derive("grub-storage-manager");
        let consumer = identity.derive("grub-null-consumer");
        let manager_code = match identity.update_delegate {
            Some(delegate) => {
                StorageManager::with_delegate(do_addr, delegate, config.on_chain_trace)
            }
            None => StorageManager::new(do_addr, config.on_chain_trace),
        };
        chain.deploy(manager, Rc::new(manager_code), Layer::Feed);
        chain.deploy(
            consumer,
            Rc::new(NullConsumer::new(manager)),
            Layer::Application,
        );
        let mut owner = DataOwner::new(do_addr, policy);
        let store_options = config.store_options.unwrap_or_default();
        let mut provider = match &config.store_dir {
            Some(dir) => StorageProvider::open_at(sp_addr, dir.clone(), store_options)?,
            None => StorageProvider::new_with_options(sp_addr, store_options)?,
        };

        // Preload: BL2-style policies want the dataset replicated up front;
        // warm-started adaptive deployments may too.
        let replicated = config
            .preload_replicated
            .unwrap_or(matches!(config.policy, PolicyKind::Bl2));
        let preload_state = if replicated {
            ReplState::Replicated
        } else {
            ReplState::NotReplicated
        };
        if !config.preload.is_empty() {
            let sync = owner.preload(&config.preload, preload_state);
            provider.apply_sync_batch(sync)?;
            // Seed the on-chain state: root digest, plus replicas when
            // preloading replicated. Chunk to stay under Ctx's X < 1000.
            let digest = owner.root();
            match preload_state {
                ReplState::NotReplicated => {
                    let input = crate::contract::encode_update(&digest, &[], &[], &[]);
                    submit_checked(chain, do_addr, manager, "update", input)?;
                }
                ReplState::Replicated => {
                    let mut batch: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
                    let mut batch_bytes = 0usize;
                    for (key, value) in &config.preload {
                        batch.push((key.as_bytes().to_vec(), value.clone()));
                        batch_bytes += key.len() + value.len() + 16;
                        if batch_bytes > 20_000 {
                            let input = crate::contract::encode_update(
                                &digest,
                                &[],
                                &std::mem::take(&mut batch),
                                &[],
                            );
                            submit_checked(chain, do_addr, manager, "update", input)?;
                            batch_bytes = 0;
                        }
                    }
                    if !batch.is_empty() {
                        let input = crate::contract::encode_update(&digest, &[], &batch, &[]);
                        submit_checked(chain, do_addr, manager, "update", input)?;
                    }
                }
            }
        }
        if let Some(stream) = &config.preload_source {
            // Streaming preload: pull one write at a time, apply it to the
            // DO mirror and SP store immediately, and flush on-chain seeding
            // chunks as they fill — no second materialized copy of the
            // dataset ever exists. Intermediate chunks carry intermediate
            // digests; the final (possibly empty) chunk pins the final root.
            let mut stream = stream.clone_box();
            let mut batch: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            let mut batch_bytes = 0usize;
            while let Some(op) = stream.next_op() {
                let Op::Write { key, value } = op else {
                    continue;
                };
                let value = value.materialize();
                let sync = owner.preload(&[(key.clone(), value.clone())], preload_state);
                provider.apply_sync_batch(sync)?;
                if preload_state == ReplState::Replicated {
                    batch_bytes += key.len() + value.len() + 16;
                    batch.push((key.into_bytes(), value));
                    if batch_bytes > 20_000 {
                        let input = crate::contract::encode_update(
                            &owner.root(),
                            &[],
                            &std::mem::take(&mut batch),
                            &[],
                        );
                        submit_checked(chain, do_addr, manager, "update", input)?;
                        batch_bytes = 0;
                    }
                }
            }
            let input = crate::contract::encode_update(&owner.root(), &[], &batch, &[]);
            submit_checked(chain, do_addr, manager, "update", input)?;
        }
        if config.preload.is_empty() && config.preload_source.is_none() {
            // Even an empty feed pins its (empty-tree) digest on chain.
            let input = crate::contract::encode_update(&owner.root(), &[], &[], &[]);
            submit_checked(chain, do_addr, manager, "update", input)?;
        }
        Ok(EpochDriver {
            stage: EpochStage {
                owner,
                provider,
                // Clamped even though the builder clamps too: the field is
                // pub, and a zero here would make external epoch-granular
                // schedulers spin on empty epochs without ever consuming the
                // trace.
                epoch_ops: config.epoch_ops.max(1),
                coalesce_reads: config.coalesce_reads,
                pending_reads: Vec::new(),
                pending_scans: Vec::new(),
                ops_in_epoch: 0,
            },
            manager,
            consumer,
            reads_per_tx: config.reads_per_tx.max(1),
            reports: Vec::new(),
            completed_ops: 0,
            read_tx_builder: None,
        })
    }

    /// The feed's `Send`-safe off-chain staging half — what a parallel
    /// scheduler moves to a worker thread while the chain-facing half stays
    /// behind. See [`EpochStage`].
    pub fn stage_mut(&mut self) -> &mut EpochStage {
        &mut self.stage
    }

    /// Replaces the default `batchRead` driver: the builder receives each
    /// epoch's pending read keys and returns the consumer transactions to
    /// submit (the §4.1 experiment maps reads onto SCoinIssuer calls).
    pub fn set_read_tx_builder(&mut self, builder: ReadTxBuilder) {
        self.read_tx_builder = Some(builder);
    }

    /// Stages a trace operation into the current epoch without chain
    /// interaction; the caller closes the epoch when
    /// [`EpochDriver::epoch_is_full`] (or at end of trace). Delegates to
    /// [`EpochStage::push_op`].
    pub fn push_op(&mut self, op: &Op) {
        self.stage.push_op(op);
    }

    /// Whether the current epoch has reached its operation budget.
    pub fn epoch_is_full(&self) -> bool {
        self.stage.epoch_is_full()
    }

    /// Operations staged in the still-open epoch.
    pub fn pending_ops(&self) -> usize {
        self.stage.pending_ops()
    }

    /// Cumulative hot-path counters for this feed. Delegates to
    /// [`EpochStage::perf`].
    pub fn perf(&self) -> StagePerf {
        self.stage.perf()
    }

    /// Closes the epoch's write path off-chain: flushes the DO, syncs the
    /// SP, and returns the encoded `update()` payload chunks for the caller
    /// to submit (directly, or batched through a shard router). Delegates to
    /// [`EpochStage::stage_update`].
    ///
    /// # Errors
    ///
    /// Propagates store failures.
    pub fn stage_update(&mut self) -> Result<StagedUpdate> {
        self.stage.stage_update()
    }

    /// Submits the staged update chunks as this feed's own transactions
    /// (one per chunk, unbatched). They are mined by the next block seal —
    /// in coalesced-read mode that is the epoch's shared block.
    pub fn submit_update(&self, chain: &mut Blockchain, staged: &StagedUpdate) {
        for input in &staged.chunks {
            let tx = Transaction::new(
                self.stage.owner.address(),
                self.manager,
                "update",
                input.clone(),
                Layer::Feed,
            );
            chain.submit(tx);
        }
    }

    /// Runs the epoch's read path — consumer transactions, SP watchdog
    /// deliveries — and books the epoch's Gas (everything mined between the
    /// start and end of this call, which includes any update transactions
    /// still in the mempool).
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn run_read_phase(&mut self, chain: &mut Blockchain, staged: &StagedUpdate) -> Result<()> {
        let before = chain.gas_snapshot();
        let reads = std::mem::take(&mut self.stage.pending_reads);
        let scans = std::mem::take(&mut self.stage.pending_scans);
        let mut failed_delivers = 0usize;
        if self.stage.coalesce_reads {
            // Consumer read transactions batched into shared blocks (§5.1
            // methodology), then the SP watchdog answers outstanding
            // requests.
            for key in &reads {
                self.stage.push_hint(key);
            }
            for tx in self.build_read_txs(&reads) {
                chain.submit(tx);
            }
            for (start, end) in scans {
                self.submit_scan(chain, &start, &end);
            }
            self.seal_block(chain)?;
            failed_delivers += self.run_watchdog(chain)?;
        } else {
            self.seal_block(chain)?; // the update lands in its own block
            for key in reads {
                // Live tempo: the monitor observes this read when its block
                // lands, and the SP learns the (possibly flipped) decision
                // before delivering.
                self.stage.owner.observe_read(&key);
                self.stage.push_hint(&key);
                for tx in self.build_read_txs(std::slice::from_ref(&key)) {
                    chain.submit(tx);
                }
                self.seal_block(chain)?;
                failed_delivers += self.run_watchdog(chain)?;
            }
            for (start, end) in scans {
                self.stage.owner.observe_read(&start);
                self.submit_scan(chain, &start, &end);
                self.seal_block(chain)?;
                failed_delivers += self.run_watchdog(chain)?;
            }
        }
        // Depth-N acknowledgment: the epoch does not close until every block
        // it mined is `confirm_depth` blocks deep, so the policy state the
        // DO observes below is confirmed, not tip, state (a no-op at depth
        // 0, where the tip is the confirmation frontier).
        chain.await_confirmations().map_err(GrubError::from)?;
        // The epoch boundary is where the DO reads the fee tape: the
        // confirmation frontier's price steers the next epoch's fee-aware
        // decisions (at depth 0 this is the last mined block's price).
        self.stage
            .owner
            .observe_fee_price(chain.fee_price_permille(chain.confirmed_height()));
        // Account the epoch.
        let (feed, app) = chain.gas_snapshot().since(before);
        self.completed_ops += staged.ops;
        self.reports.push(EpochReport {
            epoch: self.reports.len(),
            ops: staged.ops,
            feed_gas: feed.amount(),
            app_gas: app.amount(),
            replications: staged.replications,
            evictions: staged.evictions,
            failed_delivers,
        });
        Ok(())
    }

    /// Runs the epoch's read phase up to the deliver step: pushes decision
    /// hints, submits the consumer read transactions, seals their block, and
    /// returns the watchdog's `deliver()` payloads *unsubmitted* so an
    /// external scheduler can batch them across feeds (the read-path mirror
    /// of [`EpochDriver::stage_update`]). The feed's own Gas (consumer block
    /// plus `gGet` execution) is snapshot-differenced into the result; the
    /// caller books the epoch with [`EpochDriver::finish_staged_epoch`] once
    /// the batched delivers have been mined.
    ///
    /// Only valid in coalesced-read mode (see
    /// [`SystemConfig::coalesce_reads`]); live-tempo feeds interleave reads
    /// and deliveries block by block and cannot defer their delivers.
    ///
    /// # Errors
    ///
    /// Returns an error in live-read mode; propagates store failures and
    /// protocol-violating transaction failures.
    pub fn stage_reads(&mut self, chain: &mut Blockchain) -> Result<StagedReads> {
        if !self.stage.coalesce_reads {
            return Err(GrubError::Chain(
                "staged reads require coalesced-read mode (live-tempo feeds \
                 cannot defer delivers)"
                    .into(),
            ));
        }
        let before = chain.gas_snapshot();
        let reads = std::mem::take(&mut self.stage.pending_reads);
        let scans = std::mem::take(&mut self.stage.pending_scans);
        for key in &reads {
            self.stage.push_hint(key);
        }
        for tx in self.build_read_txs(&reads) {
            chain.submit(tx);
        }
        for (start, end) in scans {
            self.submit_scan(chain, &start, &end);
        }
        self.seal_block(chain)?;
        // Same depth-N acknowledgment as the unstaged path: the staged
        // epoch's own blocks must confirm before the DO observes the fee
        // tape and the watchdog's delivers are handed to the scheduler.
        chain.await_confirmations().map_err(GrubError::from)?;
        self.stage
            .owner
            .observe_fee_price(chain.fee_price_permille(chain.confirmed_height()));
        let delivers = self
            .stage
            .provider
            .watchdog(chain, self.manager)?
            .into_iter()
            .map(|tx| tx.input)
            .collect();
        let (feed, app) = chain.gas_snapshot().since(before);
        Ok(StagedReads {
            delivers,
            feed_gas: feed.amount(),
            app_gas: app.amount(),
        })
    }

    /// Books the epoch whose write path was staged by
    /// [`EpochDriver::stage_update`] and whose read path was staged by
    /// [`EpochDriver::stage_reads`]. The report carries the feed's own
    /// snapshot-differenced Gas; the shard-level `batchUpdate`/`batchDeliver`
    /// transactions that carried this epoch's payloads are attributed
    /// separately by the scheduler (they are shared, so their Gas cannot be
    /// booked per-epoch without a split policy).
    pub fn finish_staged_epoch(&mut self, update: &StagedUpdate, reads: &StagedReads) {
        self.completed_ops += update.ops;
        self.reports.push(EpochReport {
            epoch: self.reports.len(),
            ops: update.ops,
            feed_gas: reads.feed_gas,
            app_gas: reads.app_gas,
            replications: update.replications,
            evictions: update.evictions,
            // Staged delivers are mined by the scheduler's batch
            // transaction; a rejected batch aborts the run there, so a
            // booked staged epoch had no failed delivers.
            failed_delivers: 0,
        });
    }

    /// Whether this feed batches an epoch's reads into shared blocks
    /// (coalesced mode) — the mode required by [`EpochDriver::stage_reads`].
    pub fn coalesces_reads(&self) -> bool {
        self.stage.coalesce_reads
    }

    /// Closes the current epoch end to end: stage, submit own update
    /// transactions, run the read phase.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn close_epoch(&mut self, chain: &mut Blockchain) -> Result<()> {
        let staged = self.stage_update()?;
        self.submit_update(chain, &staged);
        self.run_read_phase(chain, &staged)
    }

    /// Feeds a single trace operation, closing an epoch when due.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn feed_op(&mut self, chain: &mut Blockchain, op: &Op) -> Result<()> {
        self.push_op(op);
        if self.epoch_is_full() {
            self.close_epoch(chain)?;
        }
        Ok(())
    }

    /// Drives a full trace, closing the trailing partial epoch.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn drive(&mut self, chain: &mut Blockchain, trace: &Trace) -> Result<()> {
        for op in &trace.ops {
            self.feed_op(chain, op)?;
        }
        self.finish(chain)
    }

    /// Drives an operation stream to exhaustion, closing epochs as they
    /// fill and the trailing partial epoch at the end — the streaming
    /// mirror of [`EpochDriver::drive`], at O(1) trace-side memory: only
    /// the open epoch's staged operations are ever resident.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn drive_source(
        &mut self,
        chain: &mut Blockchain,
        source: &mut dyn OpSource,
    ) -> Result<()> {
        while let Some(op) = source.next_op() {
            self.feed_op(chain, &op)?;
        }
        self.finish(chain)
    }

    /// Closes a trailing partial epoch, if any operations are staged.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn finish(&mut self, chain: &mut Blockchain) -> Result<()> {
        if self.stage.pending_ops() > 0 {
            self.close_epoch(chain)?;
        }
        Ok(())
    }

    fn build_read_txs(&self, reads: &[String]) -> Vec<Transaction> {
        if reads.is_empty() {
            return Vec::new();
        }
        if let Some(builder) = &self.read_tx_builder {
            return builder(reads);
        }
        reads
            .chunks(self.reads_per_tx)
            .map(|chunk| {
                let mut enc = Encoder::new();
                enc.u64(chunk.len() as u64);
                for key in chunk {
                    enc.bytes(key.as_bytes());
                }
                Transaction::new(
                    Address::derive("end-user"),
                    self.consumer,
                    "batchRead",
                    enc.finish(),
                    Layer::User,
                )
            })
            .collect()
    }

    fn submit_scan(&self, chain: &mut Blockchain, start: &str, end: &str) {
        let mut enc = Encoder::new();
        enc.bytes(start.as_bytes()).bytes(end.as_bytes());
        chain.submit(Transaction::new(
            Address::derive("end-user"),
            self.consumer,
            "scan",
            enc.finish(),
            Layer::User,
        ));
    }

    /// Mines pending transactions — across as many blocks as mempool
    /// congestion requires — erroring on any protocol failure.
    fn seal_block(&self, chain: &mut Blockchain) -> Result<()> {
        while chain.mempool_len() > 0 {
            let block = chain.try_produce_block().map_err(GrubError::from)?;
            for receipt in &block.receipts {
                if !receipt.success {
                    return Err(GrubError::Chain(format!(
                        "epoch transaction failed: {}",
                        receipt.error.as_deref().unwrap_or("unknown")
                    )));
                }
            }
        }
        Ok(())
    }

    /// Runs the SP watchdog and mines its deliveries (across as many blocks
    /// as congestion requires), returning how many the contract rejected.
    fn run_watchdog(&mut self, chain: &mut Blockchain) -> Result<usize> {
        let delivers = self.stage.provider.watchdog(chain, self.manager)?;
        if delivers.is_empty() {
            return Ok(0);
        }
        for tx in delivers {
            chain.submit(tx);
        }
        let mut rejected = 0;
        while chain.mempool_len() > 0 {
            let block = chain.try_produce_block().map_err(GrubError::from)?;
            rejected += block.receipts.iter().filter(|r| !r.success).count();
        }
        Ok(rejected)
    }

    /// Puts the SP into an adversarial mode (security experiments).
    pub fn set_adversary(&mut self, mode: AdversaryMode) {
        self.stage.provider.set_mode(mode);
    }

    /// The storage-manager contract address.
    pub fn manager(&self) -> Address {
        self.manager
    }

    /// The consumer contract address used for batched reads.
    pub fn consumer(&self) -> Address {
        self.consumer
    }

    /// The data owner's account address (the authorized `update()` sender —
    /// external batchers use it to submit a lone update directly when
    /// routing through a one-section batch would only add framing cost).
    pub fn data_owner(&self) -> Address {
        self.stage.owner.address()
    }

    /// The storage provider's account address (the `deliver()` sender).
    pub fn provider_address(&self) -> Address {
        self.stage.provider.address()
    }

    /// The data owner, for assertions.
    pub fn owner(&self) -> &DataOwner {
        &self.stage.owner
    }

    /// Mutable DO access (used by application harnesses that interleave
    /// their own monitoring).
    pub fn owner_mut(&mut self) -> &mut DataOwner {
        &mut self.stage.owner
    }

    /// The storage provider, for assertions.
    pub fn provider(&self) -> &StorageProvider {
        &self.stage.provider
    }

    /// Mutable SP access — the scrubber's repair path and the fault tests'
    /// tamper hooks.
    pub fn provider_mut(&mut self) -> &mut StorageProvider {
        &mut self.stage.provider
    }

    /// Runs one scrub pass of this feed's SP against its DO and on-chain
    /// root (see [`crate::scrub::Scrubber`]).
    ///
    /// # Errors
    ///
    /// Store I/O failures, or a failed `root()` view call.
    pub fn scrub(
        &mut self,
        chain: &Blockchain,
        scrubber: crate::scrub::Scrubber,
    ) -> Result<crate::scrub::ScrubReport> {
        scrubber.scrub(
            chain,
            self.manager,
            &self.stage.owner,
            &mut self.stage.provider,
        )
    }

    /// Epoch reports accumulated so far.
    pub fn reports(&self) -> &[EpochReport] {
        &self.reports
    }

    /// Trace operations completed across all booked epochs — a running
    /// counter, so per-round schedulers don't re-sum the whole report
    /// history (which grows with run length).
    pub fn completed_ops(&self) -> usize {
        self.completed_ops
    }

    /// Finishes the driver and returns its run report.
    pub fn into_report(self) -> RunReport {
        RunReport {
            policy: self.stage.owner.policy_name(),
            epochs: self.reports,
        }
    }
}

impl std::fmt::Debug for EpochDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochDriver")
            .field("policy", &self.stage.owner.policy_name())
            .field("manager", &self.manager)
            .field("epochs", &self.reports.len())
            .finish_non_exhaustive()
    }
}

/// The assembled single-feed GRuB deployment: one chain, one
/// [`EpochDriver`].
pub struct GrubSystem {
    chain: Blockchain,
    driver: EpochDriver,
}

impl GrubSystem {
    /// Builds the full deployment (contracts, DO, SP), preloads the dataset,
    /// and resets the Gas meter so setup costs are excluded — the paper
    /// meters steady-state operation, not provisioning.
    ///
    /// # Errors
    ///
    /// Propagates store failures and failed preload transactions.
    pub fn new(config: &SystemConfig) -> Result<Self> {
        let policy = config.policy.build(&grub_gas::GasSchedule::default());
        Self::with_policy(config, policy)
    }

    /// Like [`GrubSystem::new`] but with an explicit policy object — used
    /// for the offline-optimal reference, which must be precomputed from the
    /// trace.
    ///
    /// # Errors
    ///
    /// Propagates store failures and failed preload transactions.
    pub fn with_policy(config: &SystemConfig, policy: Box<dyn ReplicationPolicy>) -> Result<Self> {
        let mut chain = Blockchain::with_config(config.chain);
        let driver = EpochDriver::deploy_with_policy(
            &mut chain,
            config,
            policy,
            &DriverIdentity::default(),
        )?;
        chain.meter_reset();
        Ok(GrubSystem { chain, driver })
    }

    /// Deploys an application contract into the running system (after the
    /// meter reset, so its provisioning is not metered either).
    ///
    /// # Panics
    ///
    /// Panics if the address is already taken.
    pub fn deploy_contract(
        &mut self,
        address: Address,
        code: Rc<dyn grub_chain::Contract>,
        layer: Layer,
    ) {
        self.chain.deploy(address, code, layer);
    }

    /// Replaces the default `batchRead` driver: the builder receives each
    /// epoch's pending read keys and returns the consumer transactions to
    /// submit (the §4.1 experiment maps reads onto SCoinIssuer calls).
    pub fn set_read_tx_builder(&mut self, builder: ReadTxBuilder) {
        self.driver.set_read_tx_builder(builder);
    }

    /// One-call convenience: build the system and drive the whole trace.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn run_trace(trace: &Trace, config: &SystemConfig) -> Result<RunReport> {
        let mut system = GrubSystem::new(config)?;
        system.drive(trace)?;
        Ok(system.into_report())
    }

    /// One-call convenience for a streamed workload: build the system and
    /// pull the source to exhaustion, never materializing the trace.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn run_source(source: &mut dyn OpSource, config: &SystemConfig) -> Result<RunReport> {
        let mut system = GrubSystem::new(config)?;
        system.drive_source(source)?;
        Ok(system.into_report())
    }

    /// Like [`GrubSystem::run_trace`] with an explicit policy (offline
    /// optimal).
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn run_trace_with_policy(
        trace: &Trace,
        config: &SystemConfig,
        policy: Box<dyn ReplicationPolicy>,
    ) -> Result<RunReport> {
        let mut system = GrubSystem::with_policy(config, policy)?;
        system.drive(trace)?;
        Ok(system.into_report())
    }

    /// Drives a full trace, closing the trailing partial epoch.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn drive(&mut self, trace: &Trace) -> Result<()> {
        self.driver.drive(&mut self.chain, trace)
    }

    /// Drives an operation stream to exhaustion (the streaming mirror of
    /// [`GrubSystem::drive`]).
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn drive_source(&mut self, source: &mut dyn OpSource) -> Result<()> {
        self.driver.drive_source(&mut self.chain, source)
    }

    /// Feeds a single trace operation, closing an epoch when due.
    ///
    /// # Errors
    ///
    /// Propagates store failures and protocol-violating transaction
    /// failures.
    pub fn feed_op(&mut self, op: &Op) -> Result<()> {
        self.driver.feed_op(&mut self.chain, op)
    }

    /// Puts the SP into an adversarial mode (security experiments).
    pub fn set_adversary(&mut self, mode: AdversaryMode) {
        self.driver.set_adversary(mode);
    }

    /// The §3.2 monitor: read keys reconstructed from the chain's
    /// contract-call history since the last call.
    pub fn federated_read_keys(&mut self) -> Vec<String> {
        let manager = self.driver.manager();
        self.driver.owner_mut().federate_reads(&self.chain, manager)
    }

    /// The chain, for assertions.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The storage-manager contract address.
    pub fn manager(&self) -> Address {
        self.driver.manager()
    }

    /// The consumer contract address used for batched reads.
    pub fn consumer(&self) -> Address {
        self.driver.consumer()
    }

    /// The data owner, for assertions.
    pub fn owner(&self) -> &DataOwner {
        self.driver.owner()
    }

    /// Mutable DO access (used by application harnesses that interleave
    /// their own monitoring).
    pub fn owner_mut(&mut self) -> &mut DataOwner {
        self.driver.owner_mut()
    }

    /// The storage provider, for assertions.
    pub fn provider(&self) -> &StorageProvider {
        self.driver.provider()
    }

    /// Epoch reports accumulated so far.
    pub fn reports(&self) -> &[EpochReport] {
        self.driver.reports()
    }

    /// Finishes the run and returns the report.
    pub fn into_report(self) -> RunReport {
        self.driver.into_report()
    }
}

impl std::fmt::Debug for GrubSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrubSystem")
            .field("policy", &self.driver.owner().policy_name())
            .field("epochs", &self.driver.reports().len())
            .finish_non_exhaustive()
    }
}

fn submit_checked(
    chain: &mut Blockchain,
    from: Address,
    to: Address,
    func: &str,
    input: Vec<u8>,
) -> Result<()> {
    let id = chain.submit(Transaction::new(from, to, func, input, Layer::Feed));
    let mut outcome = None;
    // Under mempool congestion the transaction may miss the first block;
    // drain until its receipt lands.
    while chain.mempool_len() > 0 {
        let block = chain.try_produce_block().map_err(GrubError::from)?;
        if let Some(r) = block.receipts.iter().find(|r| r.tx_id == id) {
            outcome = Some((r.success, r.error.clone()));
        }
    }
    match outcome {
        Some((true, _)) => Ok(()),
        Some((false, error)) => Err(GrubError::Chain(format!(
            "setup transaction failed: {}",
            error.as_deref().unwrap_or("unknown")
        ))),
        None => Err(GrubError::Chain("no receipt".into())),
    }
}

/// Byte budget for one `update()` transaction payload, kept under the `Ctx`
/// 1000-word bound with headroom for framing. Shared by the single-feed
/// epoch chunking and the multi-tenant engine's shard batches so both stay
/// within the same calldata envelope.
pub const UPDATE_CHUNK_BYTES: usize = 24_000;

/// Splits an epoch flush into one or more `update()` payloads, each under
/// the `Ctx` 1000-word bound. Every chunk carries the epoch's final digest;
/// the contract overwrites the root slot idempotently.
fn encode_update_chunked(flush: &crate::owner::EpochFlush) -> Vec<Vec<u8>> {
    const CHUNK_BYTES: usize = UPDATE_CHUNK_BYTES;
    #[derive(Clone, Copy)]
    enum Item<'a> {
        RUpdate(&'a (Vec<u8>, Vec<u8>)),
        ToR(&'a (Vec<u8>, Vec<u8>)),
        ToNr(&'a Vec<u8>),
    }
    let items: Vec<Item<'_>> = flush
        .r_updates
        .iter()
        .map(Item::RUpdate)
        .chain(flush.to_r.iter().map(Item::ToR))
        .chain(flush.to_nr.iter().map(Item::ToNr))
        .collect();
    let mut out = Vec::new();
    let mut r_updates: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut to_r: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut to_nr: Vec<Vec<u8>> = Vec::new();
    let mut bytes = 0usize;
    let flush_chunk = |r: &mut Vec<(Vec<u8>, Vec<u8>)>,
                       tr: &mut Vec<(Vec<u8>, Vec<u8>)>,
                       tn: &mut Vec<Vec<u8>>| {
        crate::contract::encode_update(
            &flush.digest,
            &std::mem::take(r),
            &std::mem::take(tr),
            &std::mem::take(tn),
        )
    };
    for item in items {
        let size = match item {
            Item::RUpdate((k, v)) | Item::ToR((k, v)) => k.len() + v.len() + 16,
            Item::ToNr(k) => k.len() + 8,
        };
        if bytes + size > CHUNK_BYTES && bytes > 0 {
            out.push(flush_chunk(&mut r_updates, &mut to_r, &mut to_nr));
            bytes = 0;
        }
        bytes += size;
        match item {
            Item::RUpdate(kv) => r_updates.push(kv.clone()),
            Item::ToR(kv) => to_r.push(kv.clone()),
            Item::ToNr(k) => to_nr.push(k.clone()),
        }
    }
    out.push(flush_chunk(&mut r_updates, &mut to_r, &mut to_nr));
    out
}

/// Computes the inclusive end key of a scan of `len` records.
///
/// YCSB-style keys with a numeric suffix (`user000000000042`) are advanced
/// arithmetically; other key schemes fall back to a prefix-covering bound.
pub fn scan_end_key(start: &str, len: usize) -> String {
    let digits_at = start
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_digit())
        .map(|(i, _)| i)
        .last();
    if let Some(idx) = digits_at {
        let (prefix, digits) = start.split_at(idx);
        if let Ok(n) = digits.parse::<u64>() {
            // Checked, not saturating: if the advanced suffix overflows u64
            // or needs more digits than the start key has, the formatted end
            // would sort *before* the start lexicographically (e.g. advancing
            // "user999" by 5 gives "user1003" < "user999"), silently
            // shrinking the scan — fall back to the prefix bound instead.
            let advanced = n.checked_add((len as u64).saturating_sub(1));
            if let Some(end) = advanced {
                let formatted = format!("{end:0width$}", width = digits.len());
                if formatted.len() == digits.len() {
                    return format!("{prefix}{formatted}");
                }
            }
        }
    }
    // Fallback: cover everything sharing the start key as a prefix.
    format!("{start}\u{10FFFF}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use grub_workload::ratio::RatioWorkload;
    use grub_workload::ValueSpec;

    fn config(policy: PolicyKind) -> SystemConfig {
        SystemConfig::new(policy)
    }

    #[test]
    fn staging_half_is_send() {
        // The parallel engine moves a feed's EpochStage (and, when a custom
        // read-tx builder is installed, the whole driver) across threads;
        // losing Send here would break it at a distance.
        fn assert_send<T: Send>() {}
        assert_send::<EpochStage>();
        assert_send::<EpochDriver>();
        assert_send::<StagedUpdate>();
        assert_send::<StagedReads>();
    }

    #[test]
    fn scan_end_key_numeric_and_fallback() {
        assert_eq!(scan_end_key("user000000000010", 5), "user000000000014");
        assert_eq!(scan_end_key("user000000000010", 1), "user000000000010");
        assert!(scan_end_key("opaque-key", 5).starts_with("opaque-key"));
    }

    #[test]
    fn scan_end_key_never_sorts_before_start() {
        // A digit suffix that would grow in width (999 + 5 = 1004) must not
        // produce an end key that sorts before the start; the prefix bound
        // takes over.
        let end = scan_end_key("user999", 5);
        assert!(end.as_str() >= "user999", "end {end:?} sorts before start");
        assert!(end.starts_with("user999"));
        // Likewise for a suffix at the top of the u64 range (checked, not
        // saturating, addition).
        let start = format!("k{}", u64::MAX);
        let end = scan_end_key(&start, 2);
        assert!(end >= start, "end {end:?} sorts before start");
        assert!(end.starts_with(&start));
        // Maximum-width suffixes that stay in range still advance exactly.
        assert_eq!(scan_end_key("user995", 5), "user999");
    }

    #[test]
    fn streamed_preload_matches_materialized_preload() {
        // The BL2 preload path must produce byte-identical state whether the
        // dataset arrives as a materialized Vec or is pulled through an
        // OpSource one op at a time (constant-memory seeding).
        let specs = grub_workload::ycsb::preload(48, 600, 7);
        let records: Vec<(String, Vec<u8>)> = specs
            .iter()
            .map(|(key, value)| (key.clone(), value.materialize()))
            .collect();
        let mut trace = grub_workload::Trace::new();
        for (key, value) in &specs {
            trace.ops.push(grub_workload::Op::Write {
                key: key.clone(),
                value: value.clone(),
            });
        }
        for policy in [PolicyKind::Bl2, PolicyKind::Memoryless { k: 2 }] {
            let mut chain_vec = grub_chain::Blockchain::new();
            let vec_driver = EpochDriver::deploy(
                &mut chain_vec,
                &config(policy.clone()).preload(records.clone()),
                &DriverIdentity::default(),
            )
            .unwrap();
            let mut chain_stream = grub_chain::Blockchain::new();
            let stream_driver = EpochDriver::deploy(
                &mut chain_stream,
                &config(policy.clone()).preload_stream(Box::new(trace.clone().into_source())),
                &DriverIdentity::default(),
            )
            .unwrap();
            assert_eq!(
                vec_driver.owner().root(),
                stream_driver.owner().root(),
                "{policy:?}: owner roots diverge"
            );
            assert_eq!(
                vec_driver.provider().state_digest().unwrap(),
                stream_driver.provider().state_digest().unwrap(),
                "{policy:?}: SP stores diverge"
            );
            // Both paths must have pinned the same final digest on chain.
            let root_of = |chain: &grub_chain::Blockchain, driver: &EpochDriver| {
                chain
                    .static_call(driver.owner().address(), driver.manager(), "root", &[])
                    .unwrap()
            };
            assert_eq!(
                root_of(&chain_vec, &vec_driver),
                root_of(&chain_stream, &stream_driver),
                "{policy:?}: on-chain roots diverge"
            );
        }
    }

    #[test]
    fn write_only_trace_runs_cheaply_on_bl1() {
        let trace = RatioWorkload::new("k", 0.0).generate(64);
        let bl1 = GrubSystem::run_trace(&trace, &config(PolicyKind::Bl1)).unwrap();
        let bl2 = GrubSystem::run_trace(&trace, &config(PolicyKind::Bl2)).unwrap();
        assert!(
            bl1.feed_gas_per_op() * 3.0 < bl2.feed_gas_per_op(),
            "BL1 {} vs BL2 {}",
            bl1.feed_gas_per_op(),
            bl2.feed_gas_per_op()
        );
    }

    #[test]
    fn read_heavy_trace_favors_bl2() {
        let trace = RatioWorkload::new("k", 64.0).generate(8);
        let bl1 = GrubSystem::run_trace(&trace, &config(PolicyKind::Bl1)).unwrap();
        let bl2 = GrubSystem::run_trace(&trace, &config(PolicyKind::Bl2)).unwrap();
        assert!(
            bl2.feed_gas_per_op() * 2.0 < bl1.feed_gas_per_op(),
            "BL2 {} vs BL1 {}",
            bl2.feed_gas_per_op(),
            bl1.feed_gas_per_op()
        );
    }

    #[test]
    fn grub_tracks_the_better_baseline_on_both_extremes() {
        let cfg = config(PolicyKind::Memoryless { k: 2 });
        let write_only = RatioWorkload::new("k", 0.0).generate(64);
        let read_heavy = RatioWorkload::new("k", 64.0).generate(8);
        for (trace, better) in [(write_only, PolicyKind::Bl1), (read_heavy, PolicyKind::Bl2)] {
            let grub = GrubSystem::run_trace(&trace, &cfg).unwrap();
            let best = GrubSystem::run_trace(&trace, &config(better.clone())).unwrap();
            let worse = GrubSystem::run_trace(
                &trace,
                &config(if better == PolicyKind::Bl1 {
                    PolicyKind::Bl2
                } else {
                    PolicyKind::Bl1
                }),
            )
            .unwrap();
            assert!(
                grub.feed_gas_per_op() < worse.feed_gas_per_op(),
                "GRuB {} must beat the worse baseline {} ({:?})",
                grub.feed_gas_per_op(),
                worse.feed_gas_per_op(),
                better
            );
            // Within 2.5x of the better baseline (converges after warmup).
            assert!(
                grub.feed_gas_per_op() < best.feed_gas_per_op() * 2.5,
                "GRuB {} vs best {}",
                grub.feed_gas_per_op(),
                best.feed_gas_per_op()
            );
        }
    }

    #[test]
    fn replica_state_converges_on_chain() {
        // Read-heavy single key: after warmup the record must be replicated
        // and requests must stop.
        let trace = RatioWorkload::new("hot", 32.0).generate(6);
        let cfg = config(PolicyKind::Memoryless { k: 2 });
        let mut system = GrubSystem::new(&cfg).unwrap();
        system.drive(&trace).unwrap();
        assert_eq!(system.owner().state_of("hot"), ReplState::Replicated);
        // The last epochs serve reads from the replica: no Request events.
        let height = system.chain().height();
        let recent_requests =
            system
                .chain()
                .events_since(height.saturating_sub(2), system.manager(), "Request");
        assert!(recent_requests.is_empty());
    }

    #[test]
    fn federated_reads_match_trace() {
        // The monitor's chain-derived read sequence must agree with the
        // trace the consumers actually issued (§3.2 federation).
        let trace = RatioWorkload::new("k", 4.0).generate(4);
        let cfg = config(PolicyKind::Memoryless { k: 2 });
        let mut system = GrubSystem::new(&cfg).unwrap();
        system.drive(&trace).unwrap();
        let chain_reads = system.federated_read_keys();
        assert_eq!(chain_reads.len(), trace.read_count());
        assert!(chain_reads.iter().all(|k| k == "k"));
    }

    #[test]
    fn adversarial_sp_is_rejected_and_leaves_metrics_flagged() {
        let cfg = config(PolicyKind::Bl1);
        let mut system = GrubSystem::new(&cfg).unwrap();
        // Seed one record.
        system
            .feed_op(&Op::Write {
                key: "k".into(),
                value: ValueSpec::new(32, 1),
            })
            .unwrap();
        // Finish the epoch so the record lands.
        let mut warm = Trace::new();
        warm.ops
            .extend(std::iter::repeat_n(Op::Read { key: "k".into() }, 31));
        system.drive(&warm).unwrap();
        assert_eq!(
            system
                .reports()
                .iter()
                .map(|e| e.failed_delivers)
                .sum::<usize>(),
            0
        );
        // Now turn the SP hostile and read again.
        system.set_adversary(AdversaryMode::ForgeValue);
        let mut reads = Trace::new();
        reads
            .ops
            .extend(std::iter::repeat_n(Op::Read { key: "k".into() }, 32));
        system.drive(&reads).unwrap();
        let failed: usize = system.reports().iter().map(|e| e.failed_delivers).sum();
        assert!(failed > 0, "forged deliver must be rejected");
    }

    #[test]
    fn scans_flow_end_to_end() {
        let preload = grub_workload::ycsb::preload(64, 32, 7)
            .into_iter()
            .map(|(k, v)| (k, v.materialize()))
            .collect();
        let cfg = config(PolicyKind::Memoryless { k: 2 }).preload(preload);
        let mut system = GrubSystem::new(&cfg).unwrap();
        let mut trace = Trace::new();
        trace.ops.push(Op::Scan {
            start_key: grub_workload::ycsb::ycsb_key(10),
            len: 5,
        });
        system.drive(&trace).unwrap();
        let report = system.into_report();
        assert_eq!(report.failed_delivers(), 0);
        assert!(report.feed_gas_total() > 0);
    }

    #[test]
    fn source_driven_run_is_byte_identical_to_trace_driven() {
        // The ingestion refactor's ground truth at the single-feed layer:
        // pulling the ops from a stream must mine the same chain — block
        // for block, receipt for receipt — as replaying the materialized
        // vector, partial trailing epoch included.
        let workload = RatioWorkload::new("k", 2.0).seed(3);
        let cfg = config(PolicyKind::Memoryless { k: 2 });
        let mut from_trace = GrubSystem::new(&cfg).unwrap();
        from_trace.drive(&workload.generate(11)).unwrap();
        let mut from_source = GrubSystem::new(&cfg).unwrap();
        from_source.drive_source(&mut workload.source(11)).unwrap();
        assert_eq!(
            from_trace.chain().chain_digest(),
            from_source.chain().chain_digest()
        );
        let (a, b) = (from_trace.into_report(), from_source.into_report());
        assert_eq!(a.feed_gas_total(), b.feed_gas_total());
        assert_eq!(a.epochs.len(), b.epochs.len());
    }

    #[test]
    fn namespaced_drivers_coexist_on_one_chain() {
        // Two independent feeds on one chain must not collide and must
        // produce the same per-feed gas as two single-feed systems.
        let trace = RatioWorkload::new("k", 4.0).generate(8);
        let cfg = config(PolicyKind::Memoryless { k: 2 });
        let mut chain = Blockchain::with_config(cfg.chain);
        let mut a = EpochDriver::deploy(&mut chain, &cfg, &DriverIdentity::tenant("a")).unwrap();
        let mut b = EpochDriver::deploy(&mut chain, &cfg, &DriverIdentity::tenant("b")).unwrap();
        chain.meter_reset();
        a.drive(&mut chain, &trace).unwrap();
        b.drive(&mut chain, &trace).unwrap();
        let single = GrubSystem::run_trace(&trace, &cfg).unwrap();
        for driver in [a, b] {
            let report = driver.into_report();
            assert_eq!(report.feed_gas_total(), single.feed_gas_total());
            assert_eq!(report.failed_delivers(), 0);
        }
    }
}
