//! GRuB: workload-adaptive data replication for cost-effective blockchain
//! data feeds — the paper's primary contribution.
//!
//! GRuB is a key-value store on *hybrid* storage: records live on an
//! untrusted off-chain storage provider (SP) authenticated by a Merkle ADS,
//! and are selectively replicated into smart-contract storage. An online
//! algorithm watches the workload and decides, per record, whether a replica
//! on chain saves Gas:
//!
//! * under read-heavy workloads a replica avoids expensive `deliver`
//!   transactions (`Ctx = 21000 + 2176·X`);
//! * under write-heavy workloads *not* replicating avoids expensive storage
//!   writes (`Cupdate = 5000·X`, `Cinsert = 20000·X`).
//!
//! # Architecture (paper Figure 4)
//!
//! * [`policy`] — the control plane's decision makers: the memoryless
//!   algorithm (Alg. 1, 2-competitive with `K = Cupdate/Cread_off`), the
//!   memorizing algorithm (Alg. 2, `(4D+2)/K'`-competitive), the adaptive-K
//!   heuristics of Appendix C.3, the static baselines BL1/BL2 and the
//!   offline-optimal reference;
//! * [`contract`] — the on-chain storage-manager smart contract
//!   (`update` / `gGet` / `request` / `deliver`, Listing 2);
//! * [`owner`] — the data owner (DO): epoch batching of `gPuts`, the
//!   workload monitor federating local writes with the chain's
//!   contract-call history, and the decision actuator;
//! * [`provider`] — the storage provider (SP): a [`grub_store::Db`] plus the
//!   Merkle ADS, the watchdog that answers `request` events with
//!   proof-carrying `deliver` transactions, and adversarial modes (forge /
//!   omit / replay) for security testing;
//! * [`system`] — the harness wiring DO + SP + chain + consumer contracts
//!   and driving workload traces epoch by epoch, with per-epoch Gas
//!   reporting at feed and application layers. Its
//!   [`system::EpochDriver`] building block borrows the chain instead of
//!   owning it, so external schedulers (the multi-tenant `grub-engine`)
//!   can interleave many feeds on one blockchain.
//!
//! # Examples
//!
//! ```
//! use grub_core::system::{GrubSystem, SystemConfig};
//! use grub_core::policy::PolicyKind;
//! use grub_workload::ratio::RatioWorkload;
//!
//! // A read-heavy feed: GRuB should converge to keeping a replica.
//! let trace = RatioWorkload::new("price", 16.0).generate(20);
//! let config = SystemConfig::new(PolicyKind::Memoryless { k: 2 });
//! let report = GrubSystem::run_trace(&trace, &config).expect("run succeeds");
//! assert!(report.total_ops() > 0);
//! assert!(report.feed_gas_total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consistency;
pub mod contract;
pub mod metrics;
pub mod owner;
pub mod policy;
pub mod provider;
pub mod scrub;
pub mod system;
pub mod wire;

use std::error::Error;
use std::fmt;

pub use grub_merkle::ReplState;

/// Errors surfaced by the GRuB runtime.
#[derive(Debug)]
pub enum GrubError {
    /// The off-chain store failed.
    Store(grub_store::StoreError),
    /// A transaction reverted unexpectedly.
    Chain(String),
    /// A proof failed verification where it must not.
    Verify(String),
}

impl fmt::Display for GrubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrubError::Store(e) => write!(f, "store error: {e}"),
            GrubError::Chain(what) => write!(f, "chain error: {what}"),
            GrubError::Verify(what) => write!(f, "verification failed: {what}"),
        }
    }
}

impl Error for GrubError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GrubError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<grub_store::StoreError> for GrubError {
    fn from(e: grub_store::StoreError) -> Self {
        GrubError::Store(e)
    }
}

impl From<grub_chain::BlockError> for GrubError {
    fn from(e: grub_chain::BlockError) -> Self {
        match e {
            // An injected chain crash wears the same error the store and
            // engine crash points use, so recovery harnesses see one shape.
            grub_chain::BlockError::Injected(point) => {
                GrubError::Store(grub_store::StoreError::Injected(point))
            }
            other => GrubError::Chain(other.to_string()),
        }
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, GrubError>;
