//! Protocol-consistency model (paper §3.4, Appendix E).
//!
//! GRuB inherits the blockchain's propagation/finality behaviour and adds
//! its own epoch batching delay `E` on the write path. The two theorems:
//!
//! * **Theorem 3.1 / E.1** — a `gPut` and a `gGet` issued within the
//!   concurrency window order non-deterministically, but identically across
//!   all nodes once finalized (validated against
//!   [`grub_chain::network::NetworkSim`] in the integration tests);
//! * **Theorem 3.2 / E.2** — a `gGet` issued at least
//!   `E + Pt + F·B` after a `gPut` observes it (epoch-bounded freshness).
//!
//! This module computes those bounds from concrete parameters so harnesses
//! and applications can reason about staleness (e.g. the stablecoin's
//! "price is at most N minutes old" guarantee).

use grub_chain::ChainConfig;

/// Freshness/ordering bounds for a GRuB deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreshnessModel {
    /// Epoch length `E` in milliseconds (DO batching delay).
    pub epoch_ms: u64,
    /// Chain timing parameters (`B`, `F`, `Pt`).
    pub chain: ChainConfig,
}

impl FreshnessModel {
    /// Builds the model.
    pub fn new(epoch_ms: u64, chain: ChainConfig) -> Self {
        FreshnessModel { epoch_ms, chain }
    }

    /// The worst-case delay after which a `gPut` is visible to every
    /// `gGet`: `E + Pt + F·B` (Theorem 3.2).
    pub fn freshness_bound_ms(&self) -> u64 {
        self.epoch_ms
            + self.chain.propagation_ms
            + self.chain.finality_depth * self.chain.block_period_ms
    }

    /// The concurrency window (Theorem 3.1): a `gGet` issued within this
    /// window of a `gPut` may serialize on either side of it.
    pub fn concurrency_window_ms(&self) -> u64 {
        self.freshness_bound_ms()
    }

    /// Whether a read at `read_ms` is guaranteed to observe a write at
    /// `write_ms`.
    pub fn read_observes_write(&self, write_ms: u64, read_ms: u64) -> bool {
        read_ms >= write_ms + self.freshness_bound_ms()
    }

    /// The paper's Ethereum instantiation: `B ≈ 13 s`, `F = 250` — the
    /// freshness bound is dominated by finality (~54 minutes), with the
    /// epoch `E` adding its batching interval.
    pub fn ethereum_default(epoch_ms: u64) -> Self {
        Self::new(epoch_ms, ChainConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FreshnessModel {
        FreshnessModel::new(
            60_000, // 1-minute epoch, the paper's example
            ChainConfig {
                block_period_ms: 13_000,
                finality_depth: 250,
                propagation_ms: 500,
                ..ChainConfig::default()
            },
        )
    }

    #[test]
    fn bound_is_e_plus_pt_plus_fb() {
        let m = model();
        assert_eq!(m.freshness_bound_ms(), 60_000 + 500 + 250 * 13_000);
    }

    #[test]
    fn observe_predicate_matches_bound() {
        let m = model();
        let bound = m.freshness_bound_ms();
        assert!(!m.read_observes_write(1_000, 1_000 + bound - 1));
        assert!(m.read_observes_write(1_000, 1_000 + bound));
    }

    #[test]
    fn ethereum_default_is_dominated_by_finality() {
        let m = FreshnessModel::ethereum_default(60_000);
        let finality = 250 * 13_000;
        assert!(m.freshness_bound_ms() > finality);
        assert!(m.freshness_bound_ms() < finality + 2 * 60_000);
    }
}
